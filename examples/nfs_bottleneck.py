#!/usr/bin/env python
"""Case study 1 (paper §3.2): find the bottleneck in a virtual storage service.

Two clients run an Iozone-like write/re-write workload against a
user-level NFS proxy backed by two storage servers.  SysProf monitors
the proxy and the backends; the analysis answers, per node, whether time
goes to user level, kernel level, or I/O — and names the bottleneck.

Run:  python examples/nfs_bottleneck.py [threads_per_client]
"""

import sys

from repro.analysis import find_bottleneck
from repro.apps.nfs.service import VirtualStorageService
from repro.cluster import synchronize
from repro.core import SysProf, SysProfConfig
from repro.experiments.common import format_table, mean_field
from repro.experiments.nfs_storage import NfsExperimentConfig, build_cluster
from repro.workloads.iozone import IozoneConfig, IozoneResults, spawn_iozone


def main(threads_per_client=4):
    config = NfsExperimentConfig()
    cluster = build_cluster(config)
    backends = ["backend1", "backend2"]

    # The nodes' clocks are skewed; NTP-sync so the GPA can correlate.
    clock_table = synchronize(cluster, "mgmt")

    VirtualStorageService(
        cluster, "proxy", backends,
        proxy_parse_cost=config.proxy_parse_cost,
        proxy_reply_cost=config.proxy_reply_cost,
    ).start()

    sysprof = SysProf(
        cluster, SysProfConfig(eviction_interval=0.2), clock_table=clock_table
    )
    sysprof.install(monitored=["proxy"] + backends, gpa_node="mgmt")
    sysprof.start()

    iozone = IozoneConfig(
        threads=threads_per_client, ops_per_thread=config.ops_per_thread,
        pipeline=config.pipeline, commit_every=config.commit_every,
    )
    results = IozoneResults()
    for name in ("client1", "client2"):
        spawn_iozone(cluster.node(name), "proxy", iozone, results)
    cluster.run(until=cluster.sim.now + config.sim_limit)
    sysprof.flush()

    print("workload: {} RPCs from {} threads, mean client latency {:.2f} ms\n".format(
        results.count, 2 * threads_per_client, results.mean_latency * 1e3,
    ))

    rows = []
    proxy_ip = cluster.node("proxy").ip
    for node in ["proxy"] + backends:
        records = sysprof.gpa.query_interactions(node=node)
        if node == "proxy":
            records = [r for r in records if r["server_ip"] == proxy_ip]
        rows.append((
            node,
            len(records),
            mean_field(records, "user_time") * 1e3,
            mean_field(records, "kernel_wait") * 1e3,
            mean_field(records, "kernel_cpu") * 1e3,
            mean_field(records, "io_blocked") * 1e3,
            mean_field(records, "total_latency") * 1e3,
        ))
    print(format_table(
        ("node", "interactions", "user ms", "kwait ms", "kcpu ms",
         "io-blocked ms", "total ms"),
        rows,
        title="per-node interaction residency (SysProf, Figures 4/5 view)",
    ))

    print()
    report = find_bottleneck(sysprof.gpa, ["proxy"] + backends)
    print(report.describe())

    paths = sysprof.gpa.correlate_paths("proxy", backends)
    nested = [path for path in paths if path.downstream]
    if nested:
        # Under pipelined concurrency several backend interactions overlap
        # one proxy window; black-box time-containment cannot tell them
        # apart (the interleaving limitation the paper acknowledges), so
        # show the cleanest path.
        example = min(nested, key=lambda path: len(path.downstream))
        print("\nexample end-to-end breakdown (GPA causal path):")
        breakdown = example.breakdown()
        print("  at proxy: total {:.2f} ms (user {:.3f}, kernel {:.3f})".format(
            breakdown["total"] * 1e3,
            breakdown["upstream_user"] * 1e3,
            breakdown["upstream_kernel"] * 1e3,
        ))
        for hop in breakdown["downstream"]:
            print("  at {}: {:.2f} ms in kernel".format(
                hop["node"], hop["kernel"] * 1e3
            ))
        print("  network + proxy forward-wait residual: {:.2f} ms".format(
            breakdown["residual"] * 1e3
        ))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
