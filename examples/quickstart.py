#!/usr/bin/env python
"""Quickstart: monitor a client/server application with SysProf.

Builds a three-node simulated cluster (client, server, management), runs
a small request/response workload, and uses SysProf to answer the
paper's motivating question: *where does each request spend its time?* —
without touching the application's code.

Run:  python examples/quickstart.py
"""

from repro import Cluster, SysProf, SysProfConfig


def server(ctx):
    """A black-box server: parse (user CPU), then reply.  SysProf never
    sees this code — it watches the kernel."""
    lsock = yield from ctx.listen(8080)
    sock = yield from ctx.accept(lsock)
    while True:
        request = yield from ctx.recv_message(sock)
        if request is None:
            break
        yield from ctx.compute(0.0025)  # 2.5 ms of application work
        yield from ctx.send_message(sock, 4000, kind="reply")


def client(ctx):
    sock = yield from ctx.connect("server", 8080)
    for index in range(20):
        yield from ctx.send_message(sock, 16000, kind="api-call")
        yield from ctx.recv_message(sock)
        yield from ctx.sleep(0.01)
    yield from ctx.close(sock)


def main():
    cluster = Cluster(seed=1)
    cluster.add_node("client")
    cluster.add_node("server")
    cluster.add_node("mgmt")

    sysprof = SysProf(cluster, SysProfConfig(eviction_interval=0.1))
    sysprof.install(monitored=["server"], gpa_node="mgmt")
    sysprof.start()

    cluster.node("server").spawn("api-server", server)
    cluster.node("client").spawn("load", client)
    cluster.run(until=2.0)
    sysprof.flush()

    print("== per-interaction view (last 5, from the server's LPA window) ==")
    for record in sysprof.local_window("server")[-5:]:
        print(
            "  #{id}: total {total:.3f} ms | kernel-wait {wait:.3f} ms | "
            "user {user:.3f} ms | server={name}".format(
                id=record["interaction_id"],
                total=record["total_latency"] * 1e3,
                wait=record["kernel_wait"] * 1e3,
                user=record["user_time"] * 1e3,
                name=record["server_name"],
            )
        )

    print("\n== aggregate view (GPA on the management node) ==")
    summary = sysprof.gpa.node_summary("server")
    for key, value in sorted(summary.items()):
        if isinstance(value, float):
            print("  {:>18}: {:.4f} ms".format(key, value * 1e3))
        else:
            print("  {:>18}: {}".format(key, value))

    print("\n== /proc export on the server node ==")
    print(cluster.node("server").kernel.procfs.read("/proc/sysprof/interaction-lpa"))


if __name__ == "__main__":
    main()
