#!/usr/bin/env python
"""Download a Custom Performance Analyzer (E-Code) into a running kernel.

The paper's CPAs are "specified in the form of E-Code (a language subset
of C), compiled through run-time code generation".  This example installs
two analyzers while an application runs:

* a packet-size profiler on the network receive path;
* a syscall-rate counter pruned to one process via a pid predicate.

Their metrics flow through the same buffers/daemon/channels as the
built-in LPAs and arrive at the GPA as `sysprof.cpa` records.

Run:  python examples/custom_analyzer.py
"""

from repro import Cluster, SysProf, SysProfConfig
from repro.core.kprof import pid_predicate
from repro.ossim import tracepoints as tp

PACKET_PROFILER = """
// Receive-path packet-size profile: count, mean, and an in-kernel
// histogram (E-Code arrays).
int packets = 0;
double bytes = 0.0;
int hist[4];   // <256B, <1KB, <1400B, jumbo

void handle(event e) {
    packets += 1;
    bytes += e.size;
    int bucket = 0;
    if (e.size >= 256) { bucket = 1; }
    if (e.size >= 1024) { bucket = 2; }
    if (e.size >= 1400) { bucket = 3; }
    hist[bucket] += 1;
}

double metric_packets() { return packets; }
double metric_mean_bytes() {
    if (packets == 0) { return 0.0; }
    return bytes / packets;
}
double metric_jumbo_pct() {
    if (packets == 0) { return 0.0; }
    return 100.0 * hist[3] / packets;
}
double metric_small_pct() {
    if (packets == 0) { return 0.0; }
    return 100.0 * hist[0] / packets;
}
"""

SYSCALL_COUNTER = """
int calls = 0;
int recvs = 0;
void handle(event e) {
    calls += 1;
    if (e.call == "recv") { recvs += 1; }
}
double metric_calls() { return calls; }
double metric_recvs() { return recvs; }
"""


def server(ctx):
    lsock = yield from ctx.listen(8080)
    sock = yield from ctx.accept(lsock)
    while True:
        request = yield from ctx.recv_message(sock)
        if request is None:
            break
        yield from ctx.compute(0.001)
        yield from ctx.send_message(sock, 2000, kind="reply")


def client(ctx):
    sock = yield from ctx.connect("server", 8080)
    for index in range(30):
        yield from ctx.send_message(sock, 8000 if index % 3 else 600)
        yield from ctx.recv_message(sock)
        yield from ctx.sleep(0.005)
    yield from ctx.close(sock)


def main():
    cluster = Cluster(seed=2)
    cluster.add_node("client")
    cluster.add_node("server")
    cluster.add_node("mgmt")
    sysprof = SysProf(cluster, SysProfConfig(eviction_interval=0.1))
    sysprof.install(monitored=["server"], gpa_node="mgmt")
    sysprof.start()

    server_task = cluster.node("server").spawn("api-server", server)
    cluster.node("client").spawn("load", client)

    # Let the app run a little, then hot-load the analyzers (no restart).
    cluster.run(until=0.05)
    profiler = sysprof.controller.install_cpa(
        "server", PACKET_PROFILER,
        [tp.NET_RX_TRANSPORT], name="pkt-profile",
    )
    counter = sysprof.controller.install_cpa(
        "server", SYSCALL_COUNTER, [tp.SYSCALL_ENTRY],
        predicate=pid_predicate([server_task.pid]), name="srv-syscalls",
    )
    cluster.run(until=2.0)
    sysprof.flush()

    print("== pkt-profile (E-Code, compiled at runtime) ==")
    for key, value in sorted(profiler.metrics().items()):
        print("  {:>12}: {:.2f}".format(key, value))
    print("  events handled: {}, errors: {}".format(
        profiler.events_handled, profiler.errors))

    print("\n== srv-syscalls (pruned to pid {}) ==".format(server_task.pid))
    for key, value in sorted(counter.metrics().items()):
        print("  {:>12}: {:.0f}".format(key, value))

    print("\n== the same metrics, as received by the GPA over channels ==")
    latest = {}
    for record in sysprof.gpa.cpa_metrics:
        latest[(record["analyzer"], record["key"])] = record["value"]
    for (analyzer, key), value in sorted(latest.items()):
        print("  {:>14}/{:<12} = {:.2f}".format(analyzer, key, value))

    print("\n== unloading the profiler ==")
    sysprof.controller.uninstall_cpa("server", "pkt-profile")
    print("  installed CPAs:", sorted(sysprof.monitor("server").cpas))


if __name__ == "__main__":
    main()
