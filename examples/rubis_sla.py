#!/usr/bin/env python
"""Case study 2 (paper §3.3): SLA enforcement in the RUBiS auction site.

Two request classes — high-priority *bidding* (CPU-heavy, tight
deadlines) and low-priority *comment* (network-heavy) — are scheduled by
DWCS across two servlet servers.  Halfway through, background load lands
on servlet1.  Plain DWCS dispatches blindly and degrades; resource-aware
DWCS consumes SysProf's node statistics and routes around the hot server.

Run:  python examples/rubis_sla.py
"""

from repro.analysis import ascii_plot
from repro.experiments.rubis_qos import (
    RubisExperimentConfig,
    run_rubis_experiment,
)


def describe(result, config):
    print("  scheduler: {}".format(result.scheduler))
    for name in ("bidding", "comment"):
        print(
        "    {:8s} pre-load {:6.1f} resp/s   post-load {:6.1f} resp/s   "
        "dropped {}".format(
                name, result.pre_throughput[name],
                result.post_throughput[name], result.dropped[name],
            )
        )
    print("    window-constraint violations: {}".format(result.violations))
    print("    servlet split: {}".format(result.servlet_split))


def main():
    config = RubisExperimentConfig(duration=20.0, load_at=10.0)
    print("offered load: 2 x {} req/s across {} sessions/class; background "
          "load hits servlet1 at t={}s\n".format(
              config.rate_per_class, config.sessions_per_class, config.load_at))

    print("== plain DWCS (Figure 6) ==")
    dwcs = run_rubis_experiment("dwcs", config)
    describe(dwcs, config)

    print("\n== resource-aware DWCS using SysProf telemetry (Figure 7) ==")
    radwcs = run_rubis_experiment("radwcs", config)
    describe(radwcs, config)

    gain = 100.0 * (radwcs.post_total - dwcs.post_total) / dwcs.post_total
    print("\npost-load total throughput: DWCS {:.1f} vs RA-DWCS {:.1f} resp/s "
          "(+{:.1f}%; paper reports >14%)".format(
              dwcs.post_total, radwcs.post_total, gain))

    print("\nthroughput over time (x=s, y=resp/s):")
    print(ascii_plot(
        {
            "dwcs-bidding": dwcs.series["bidding"],
            "radwcs-bidding": radwcs.series["bidding"],
        },
        title="bidding class: DWCS vs RA-DWCS",
    ))


if __name__ == "__main__":
    main()
