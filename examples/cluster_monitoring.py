#!/usr/bin/env python
"""Enterprise-wide monitoring: skewed clocks, NTP, cross-node correlation.

A three-tier request path (client -> frontend -> backend) where every
node's clock is wrong by hundreds of milliseconds.  The GPA can only
assemble end-to-end causal paths after NTP-style synchronization — this
example shows the correlation failing without the clock table and
working with it, plus the per-tier latency breakdown.

Run:  python examples/cluster_monitoring.py
"""

from repro import Cluster, NodeClock, SysProf, SysProfConfig, synchronize


def backend(ctx):
    lsock = yield from ctx.listen(9000)
    sock = yield from ctx.accept(lsock)
    while True:
        request = yield from ctx.recv_message(sock)
        if request is None:
            break
        yield from ctx.compute(0.006)  # the slow tier
        yield from ctx.send_message(sock, 800, kind="be-reply")


def frontend(ctx):
    lsock = yield from ctx.listen(8000)
    sock = yield from ctx.accept(lsock)
    upstream = yield from ctx.connect("backend", 9000)
    while True:
        request = yield from ctx.recv_message(sock)
        if request is None:
            break
        yield from ctx.compute(0.0008)
        yield from ctx.send_message(upstream, request.size, kind="fwd")
        reply = yield from ctx.recv_message(upstream)
        yield from ctx.send_message(sock, reply.size, kind="fe-reply")


def client(ctx):
    sock = yield from ctx.connect("frontend", 8000)
    for _ in range(15):
        yield from ctx.send_message(sock, 3000, kind="req")
        yield from ctx.recv_message(sock)
        yield from ctx.sleep(0.015)
    yield from ctx.close(sock)


def main():
    cluster = Cluster(seed=3)
    cluster.add_node("client")
    cluster.add_node("frontend", clock=NodeClock(offset=0.310, drift=2e-6))
    cluster.add_node("backend", clock=NodeClock(offset=-0.470, drift=-1e-6))
    cluster.add_node("mgmt")

    print("true clock offsets: frontend +310 ms, backend -470 ms")
    clock_table = synchronize(cluster, "mgmt")
    print("NTP-estimated offsets: frontend {:+.1f} ms, backend {:+.1f} ms\n".format(
        clock_table.offset("frontend") * 1e3, clock_table.offset("backend") * 1e3,
    ))

    sysprof = SysProf(
        cluster, SysProfConfig(eviction_interval=0.1), clock_table=clock_table
    )
    sysprof.install(monitored=["frontend", "backend"], gpa_node="mgmt")
    sysprof.start()

    cluster.node("backend").spawn("be", backend)
    cluster.node("frontend").spawn("fe", frontend)
    cluster.node("client").spawn("cli", client)
    cluster.run(until=3.0)
    sysprof.flush()

    gpa = sysprof.gpa
    paths = [
        path for path in gpa.correlate_paths("frontend", ["backend"])
        if path.upstream["request_class"] == "req"
    ]
    correlated = sum(1 for path in paths if path.downstream)
    print("with NTP correction: {}/{} frontend interactions matched to their "
          "backend work".format(correlated, len(paths)))

    # Show what raw (uncorrected) timestamps would do: 780 ms of relative
    # skew pushes the backend records far outside the frontend windows.
    without = 0
    for path in paths:
        raw_start = path.upstream["start_ts"]
        raw_end = path.upstream["end_ts"]
        nested = [
            record for record in gpa.query_interactions(node="backend")
            if raw_start - 2e-3 <= record["start_ts"]
            and record["end_ts"] <= raw_end + 2e-3
        ]
        without += 1 if nested else 0
    print("without correction:  {}/{} would match\n".format(without, len(paths)))

    sample = next(path for path in paths if path.downstream)
    breakdown = sample.breakdown()
    print("per-tier breakdown of one request (reference timescale):")
    print("  frontend residency: {:.2f} ms (user {:.2f}, kernel {:.2f})".format(
        breakdown["total"] * 1e3, breakdown["upstream_user"] * 1e3,
        breakdown["upstream_kernel"] * 1e3))
    for hop in breakdown["downstream"]:
        print("  {} residency: {:.2f} ms (user {:.2f}, kernel {:.2f})".format(
            hop["node"], hop["total"] * 1e3, hop["user"] * 1e3, hop["kernel"] * 1e3))
    print("  network + queueing residual: {:.2f} ms".format(
        breakdown["residual"] * 1e3))


if __name__ == "__main__":
    main()
