#!/usr/bin/env python
"""Workload prediction from GPA dumps (paper §2: the GPA "periodically
dumps its information onto local disk, which can be used later for
purposes of auditing, workload prediction, and system modeling").

Monitors a running service, dumps the GPA state to disk, then — fully
offline — fits arrival/service models per request class and answers:
how much headroom does the server have, and at what request rate does
the latency SLA break?

Run:  python examples/workload_forecast.py
"""

import os
import tempfile

from repro import Cluster, SysProf, SysProfConfig
from repro.analysis import (
    capacity_at_latency,
    fit_class_models,
    load_dump,
    mg1_response_time,
    utilization_forecast,
)


def server(ctx):
    lsock = yield from ctx.listen(8080)
    sock = yield from ctx.accept(lsock)
    while True:
        request = yield from ctx.recv_message(sock)
        if request is None:
            break
        meta = request.meta or {}
        yield from ctx.compute(meta.get("cpu", 0.002))
        yield from ctx.send_message(sock, 1500, kind=request.kind)


def client(ctx, rng):
    sock = yield from ctx.connect("server", 8080)
    end = ctx.now + 5.0
    while ctx.now < end:
        yield from ctx.sleep(rng.expovariate(60.0))
        if rng.random() < 0.7:
            kind, cpu, size = "lookup", 0.0015, 900
        else:
            kind, cpu, size = "update", 0.0045, 2500
        yield from ctx.send_message(sock, size, kind=kind, meta={"cpu": cpu})
        yield from ctx.recv_message(sock)
    yield from ctx.close(sock)


def main():
    cluster = Cluster(seed=8)
    cluster.add_node("client")
    cluster.add_node("server")
    cluster.add_node("mgmt")
    sysprof = SysProf(cluster, SysProfConfig(eviction_interval=0.1))
    sysprof.install(monitored=["server"], gpa_node="mgmt")
    sysprof.start()

    cluster.node("server").spawn("svc", server)
    cluster.node("client").spawn(
        "load", client, cluster.streams.stream("forecast-client")
    )
    cluster.run(until=6.0)
    sysprof.flush()

    dump_path = os.path.join(tempfile.gettempdir(), "sysprof-gpa-dump.jsonl")
    if os.path.exists(dump_path):
        os.remove(dump_path)
    sysprof.gpa.dump(dump_path)
    print("GPA state dumped to {}\n".format(dump_path))

    # ---- everything below is offline: only the dump file is used ----
    records = load_dump(dump_path)
    models = fit_class_models(records["interaction"])
    print("fitted per-class models (from {} interaction records):".format(
        len(records["interaction"])))
    for name, (arrival, service) in sorted(models.items()):
        poisson = ", Poisson-like" if arrival.looks_poisson else ""
        print("  {:8s} arrivals: {:6.1f}/s (cv {:.2f}{})".format(
            name, arrival.rate, arrival.cv, poisson))
        print("           service: mean {:.2f} ms, p95 {:.2f} ms, cv {:.2f}".format(
            service.mean * 1e3, service.p95 * 1e3, service.cv))

    demand, utilization = utilization_forecast(models)
    print("\naggregate CPU demand: {:.3f} cores -> utilization {:.0%}".format(
        demand, utilization))

    for name, (arrival, service) in sorted(models.items()):
        sla = 0.02
        now_latency = mg1_response_time(arrival.rate, service)
        max_rate = capacity_at_latency(service, sla)
        print(
            "  {:8s} current M/G/1 latency ~{:.2f} ms; rate sustaining a "
            "{:.0f} ms SLA: ~{:.0f}/s (headroom {:+.0f}%)".format(
                name, now_latency * 1e3, sla * 1e3, max_rate,
                100.0 * (max_rate - arrival.rate) / arrival.rate,
            )
        )


if __name__ == "__main__":
    main()
