#!/usr/bin/env python
"""Interleaved requests: where black-box extraction breaks, and ARM.

Paper §2: "Multiple requests may interleave, in which case
domain-specific knowledge and/or ARM support would be necessary."

A client pipelines five tagged requests down ONE connection before any
response returns.  Black-box direction-flip extraction collapses them
into a single bogus interaction; with ARM correlation
(`SysProfConfig(arm_correlation=True)`), applications stamp
``meta["arm_id"]`` and the monitor pairs each request with its own
response even out of order.

Run:  python examples/interleaved_arm.py
"""

from repro import Cluster, SysProf, SysProfConfig


def server(ctx):
    """Receives all requests first, then answers them in reverse order —
    the worst case for direction-flip pairing."""
    lsock = yield from ctx.listen(8080)
    sock = yield from ctx.accept(lsock)
    batch = []
    for _ in range(5):
        message = yield from ctx.recv_message(sock)
        batch.append(message)
    for message in reversed(batch):
        yield from ctx.compute(0.002)
        yield from ctx.send_message(
            sock, 900, kind="reply", meta={"arm_id": message.meta["arm_id"]}
        )


def client(ctx):
    sock = yield from ctx.connect("server", 8080)
    for index in range(5):
        yield from ctx.send_message(
            sock, 2500, kind="rpc", meta={"arm_id": 1000 + index}
        )
    for _ in range(5):
        yield from ctx.recv_message(sock)
    yield from ctx.close(sock)


def run(arm_correlation):
    cluster = Cluster(seed=4)
    cluster.add_node("client")
    cluster.add_node("server")
    cluster.add_node("mgmt")
    sysprof = SysProf(
        cluster,
        SysProfConfig(eviction_interval=0.05, arm_correlation=arm_correlation),
    )
    sysprof.install(monitored=["server"], gpa_node="mgmt")
    sysprof.start()
    cluster.node("server").spawn("srv", server)
    cluster.node("client").spawn("cli", client)
    cluster.run(until=2.0)
    sysprof.flush()
    return sysprof.gpa.query_interactions(node="server")


def main():
    print("5 pipelined requests on one connection, answered in reverse:\n")

    records = run(arm_correlation=False)
    print("black-box direction flips -> {} interaction(s) observed".format(
        len(records)))
    for record in records:
        print("   request {} B in {} packets (five requests fused together)".format(
            record["req_bytes"], record["req_packets"]))

    records = run(arm_correlation=True)
    print("\nARM-token correlation -> {} interactions observed".format(
        len(records)))
    for record in records:
        print("   request {} B -> reply {} B, user {:.2f} ms".format(
            record["req_bytes"], record["resp_bytes"],
            record["user_time"] * 1e3))


if __name__ == "__main__":
    main()
