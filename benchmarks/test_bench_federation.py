"""Federation tree scaling: bounded root load as the cluster grows.

ROADMAP item 1's acceptance bench: root ingress bytes/s and root
simulated-CPU share must grow *sublinearly* in node count when the
federation tree is on, while the flat install (same spine/leaf topology,
same synthetic telemetry) grows linearly.  Staleness p95 at the root
must stay under the stale threshold at the largest scale — condensation
must not make the root's failure detector blind.

A second micro-section pins the O(1) switch forwarding claim: per-hop
host cost through one switch must stay flat as the port count grows
16 → 1024 (dict routing, no linear scans).

Results append to the ``trajectory`` list in ``BENCH_federation.json``
at the repo root; see docs/federation.md for how to read it.
"""

import time
from pathlib import Path

from repro.cluster import Cluster
from repro.experiments.federation import (
    FederationConfig,
    run_federation_sweep,
    sweep_payload,
)
from repro.netsim.packet import Address, Packet

from benchmarks.conftest import SMOKE, record_run, report

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_federation.json"

#: Monitored node counts per mode; the sublinearity assertion compares
#: the first and last federated points.
NODE_COUNTS = (16,) if SMOKE else (16, 64, 256)
#: Simulated seconds per point.
DURATION = 3.0 if SMOKE else 5.0
#: Federated growth must stay under this fraction of the node growth.
SUBLINEAR_FRACTION = 0.75
#: At the largest scale, federation must cut root ingress at least this much.
CUT_FLOOR = 2.0
#: Switch micro-bench: forwards timed per port count, and the allowed
#: per-hop cost ratio between the largest and smallest port counts.
FORWARDS = 5000 if SMOKE else 20000
PORT_COUNTS = (16, 1024)
PER_HOP_RATIO_CEILING = 3.0


def _per_hop_seconds(ports):
    """Host seconds per switch _forward with ``ports`` attached NICs."""
    cluster = Cluster(seed=3)
    cluster.add_nodes(["h{}".format(i) for i in range(ports)])
    switch = cluster.fabric.switch
    ips = sorted(switch._downlinks)
    packets = [
        Packet(Address(ips[0], 1), Address(ips[i % len(ips)], 2), 64)
        for i in range(64)
    ]
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        for i in range(FORWARDS):
            switch._forward(packets[i % 64])
        best = min(best, time.perf_counter() - started)
    assert switch.forwarded >= FORWARDS
    return best / FORWARDS


def test_federation_bounds_root_load():
    base = FederationConfig(duration=DURATION)
    sweep = run_federation_sweep(node_counts=NODE_COUNTS, base_config=base)
    points = sweep["points"]
    flat = {p.nodes: p for p in points if not p.federated}
    fed = {p.nodes: p for p in points if p.federated}

    # Switch O(1) forwarding: per-hop cost flat 16 -> 1024 ports.
    per_hop = {ports: _per_hop_seconds(ports) for ports in PORT_COUNTS}
    hop_ratio = per_hop[PORT_COUNTS[-1]] / per_hop[PORT_COUNTS[0]]

    if not SMOKE:  # smoke runs never append to the recorded trajectory
        payload = sweep_payload(sweep)
        payload["switch_per_hop_ns"] = {
            str(ports): round(seconds * 1e9, 1)
            for ports, seconds in per_hop.items()
        }
        record_run(BENCH_PATH, "sysprof-repro/bench-federation/v1", payload)

    report(
        "federation scaling (written to BENCH_federation.json)",
        ("nodes", "mode", "zones", "root B/s", "root CPU share", "stale p95"),
        [p.row() for p in points],
        notes=(
            "switch per-hop: {:.0f}ns @{} ports vs {:.0f}ns @{} ports "
            "(ratio {:.2f}, ceiling {:.1f})".format(
                per_hop[PORT_COUNTS[0]] * 1e9, PORT_COUNTS[0],
                per_hop[PORT_COUNTS[-1]] * 1e9, PORT_COUNTS[-1],
                hop_ratio, PER_HOP_RATIO_CEILING,
            ),
        ),
    )

    assert hop_ratio < PER_HOP_RATIO_CEILING, (
        "per-hop cost grew {:.2f}x from {} to {} ports".format(
            hop_ratio, PORT_COUNTS[0], PORT_COUNTS[-1]
        )
    )

    largest = max(NODE_COUNTS)
    # Federation must beat flat at every scale, decisively at the largest.
    for nodes in NODE_COUNTS:
        assert fed[nodes].root_ingress_bytes < flat[nodes].root_ingress_bytes
    cut = flat[largest].root_bytes_per_s / max(fed[largest].root_bytes_per_s, 1e-9)
    assert cut >= CUT_FLOOR, (
        "federation only cut root ingress {:.1f}x at {} nodes".format(
            cut, largest
        )
    )
    # Root staleness stays under the SLO with condensed forwarding.
    assert fed[largest].staleness_samples > 0
    assert fed[largest].staleness_p95 < base.stale_threshold, (
        "root staleness p95 {:.3f}s >= threshold {:.1f}s".format(
            fed[largest].staleness_p95, base.stale_threshold
        )
    )
    # Every child zone reported and forwarded condensed rows.
    assert fed[largest].root_children == fed[largest].zones
    assert fed[largest].zone_rows_forwarded > 0

    if len(NODE_COUNTS) >= 2:
        smallest = min(NODE_COUNTS)
        node_growth = largest / smallest
        byte_growth = (
            fed[largest].root_bytes_per_s / max(fed[smallest].root_bytes_per_s, 1e-9)
        )
        cpu_growth = (
            fed[largest].root_cpu_share / max(fed[smallest].root_cpu_share, 1e-9)
        )
        assert byte_growth <= SUBLINEAR_FRACTION * node_growth, (
            "federated root bytes grew {:.1f}x over a {:.0f}x node increase".format(
                byte_growth, node_growth
            )
        )
        assert cpu_growth <= SUBLINEAR_FRACTION * node_growth, (
            "federated root CPU grew {:.1f}x over a {:.0f}x node increase".format(
                cpu_growth, node_growth
            )
        )
        # The flat baseline is the contrast: it tracks node count.
        flat_growth = (
            flat[largest].root_bytes_per_s / max(flat[smallest].root_bytes_per_s, 1e-9)
        )
        assert flat_growth > byte_growth
