"""Benchmark helpers: paper-vs-measured reporting.

Every benchmark regenerates one table or figure from the paper's
evaluation (§3) and prints the series it produces next to the paper's
anchor numbers.  Absolute values come from a simulator, not the authors'
2006 testbed — the assertions check the *shape* claims (who wins, what
grows, rough factors), per DESIGN.md.

Run:  pytest benchmarks/ --benchmark-only

Setting ``BENCH_SMOKE=1`` runs the throughput benchmarks in *smoke
mode* — small iteration counts, relaxed speedup floors, and no
``BENCH_*.json`` rewrite — so CI can exercise the benchmark code paths
without the noise-sensitive perf assertions on shared runners.
"""

import json
import os
import subprocess
import time

import pytest

#: Smoke mode: scaled-down runs for CI (see module docstring).
SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")


def _git_commit():
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            capture_output=True, text=True, timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def record_run(path, schema, payload):
    """Append one run's numbers to a ``BENCH_*.json`` perf trajectory.

    The file keeps a ``trajectory`` list (oldest first); each run entry
    is the benchmark's numbers stamped with the git commit and date, so
    later PRs extend the history instead of erasing it.  The newest
    entry is mirrored under ``latest`` for easy reading.  A flat
    pre-trajectory snapshot (the v1 layout) is migrated into the first
    trajectory entry, never clobbered.  Callers skip this in smoke mode.
    """
    doc = {}
    if path.exists():
        try:
            doc = json.loads(path.read_text())
        except ValueError:
            doc = {}
    trajectory = doc.get("trajectory")
    if not isinstance(trajectory, list):
        trajectory = []
        legacy = {
            key: value for key, value in doc.items() if key != "schema"
        }
        if legacy:
            legacy["note"] = "migrated pre-trajectory snapshot"
            trajectory.append(legacy)
    entry = dict(payload)
    entry["commit"] = _git_commit()
    entry["date"] = time.strftime("%Y-%m-%d")
    trajectory.append(entry)
    path.write_text(json.dumps({
        "schema": schema,
        "latest": entry,
        "trajectory": trajectory,
    }, indent=2) + "\n")
    return entry


def report(title, headers, rows, notes=()):
    """Print one paper-vs-measured block (shown with pytest -s / summary)."""
    from repro.experiments.common import format_table

    print()
    print("=" * 72)
    print(format_table(headers, rows, title=title))
    for note in notes:
        print("  note: {}".format(note))
    print("=" * 72)


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (experiments are long)."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return run
