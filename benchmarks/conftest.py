"""Benchmark helpers: paper-vs-measured reporting.

Every benchmark regenerates one table or figure from the paper's
evaluation (§3) and prints the series it produces next to the paper's
anchor numbers.  Absolute values come from a simulator, not the authors'
2006 testbed — the assertions check the *shape* claims (who wins, what
grows, rough factors), per DESIGN.md.

Run:  pytest benchmarks/ --benchmark-only

Setting ``BENCH_SMOKE=1`` runs the throughput benchmarks in *smoke
mode* — small iteration counts, relaxed speedup floors, and no
``BENCH_*.json`` rewrite — so CI can exercise the benchmark code paths
without the noise-sensitive perf assertions on shared runners.
"""

import os

import pytest

#: Smoke mode: scaled-down runs for CI (see module docstring).
SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")


def report(title, headers, rows, notes=()):
    """Print one paper-vs-measured block (shown with pytest -s / summary)."""
    from repro.experiments.common import format_table

    print()
    print("=" * 72)
    print(format_table(headers, rows, title=title))
    for note in notes:
        print("  note: {}".format(note))
    print("=" * 72)


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (experiments are long)."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return run
