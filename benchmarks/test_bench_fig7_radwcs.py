"""Figure 7: RUBiS throughput under resource-aware DWCS.

Paper anchors: "The degradation in throughput is far less as compared to
our earlier experiment ... the higher priority bidding request has very
insignificant drop in performance"; headline: >14% throughput gain for
<2% monitoring cost.
"""

from repro.experiments import (
    RubisExperimentConfig,
    monitoring_cost_experiment,
    run_comparison,
)
from benchmarks.conftest import report

CONFIG = RubisExperimentConfig(duration=20.0, load_at=10.0)


def test_fig7_radwcs_throughput(once):
    dwcs, radwcs, gain = once(run_comparison, CONFIG)
    rows = []
    for name in ("bidding", "comment"):
        rows.append((
            name,
            dwcs.pre_throughput[name], dwcs.post_throughput[name],
            radwcs.pre_throughput[name], radwcs.post_throughput[name],
        ))
    report(
        "Figure 7: RA-DWCS vs DWCS throughput (resp/s) around the load event",
        ("class", "dwcs pre", "dwcs post", "radwcs pre", "radwcs post"),
        rows,
        notes=(
            "post-load total gain: {:.1f}% (paper: '> 14%')".format(gain),
            "RA-DWCS whole-run bidding split (shifts to the light servlet "
            "after the load event): {}".format(radwcs.servlet_split["bidding"]),
        ),
    )
    # "very insignificant drop" for bidding under RA-DWCS.
    assert radwcs.post_throughput["bidding"] > 0.92 * radwcs.pre_throughput["bidding"]
    # degradation far less than plain DWCS.
    dwcs_loss = dwcs.pre_total - dwcs.post_total
    radwcs_loss = radwcs.pre_total - radwcs.post_total
    assert radwcs_loss < 0.5 * dwcs_loss
    # headline gain.
    assert gain > 14.0


def test_headline_monitoring_cost(once):
    """Paper: 'application performance ... decreased by less than 2%
    because of SysProf'."""
    config = RubisExperimentConfig(duration=12.0, load_at=6.0)
    baseline, monitored, overhead_pct = once(
        monitoring_cost_experiment, config
    )
    report(
        "Monitoring cost on the application (paper: '< 2%')",
        ("metric", "paper", "measured"),
        [
            ("throughput, monitor off (resp/s)", "-", baseline),
            ("throughput, monitor on (resp/s)", "-", monitored),
            ("decrease %", "< 2", overhead_pct),
        ],
    )
    assert overhead_pct < 2.0
