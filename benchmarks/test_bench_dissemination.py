"""Dissemination-path throughput: encode, decode, and publish rates.

Like the engine benchmark, this one measures the *toolkit itself* — the
PBIO encode/decode hot path every monitored node pushes its records
through.  The batched frame path (cached multi-record packers, one
header per frame, preordered rows) must beat the seed's per-record
dict-packing baseline by at least 2x on encode, and the streaming frame
decoder must beat per-record decoding by at least 1.5x.  Both paths stay
runtime-selectable (``SysProfConfig(frame_dissemination=...)``), so the
end-to-end section times a real monitored client/server run per mode.

Results append to the ``trajectory`` list in ``BENCH_dissemination.json``
at the repo root; see docs/performance.md ("Dissemination path") for how
to read it.
"""

import time
from pathlib import Path

from repro.core import encoding
from repro.core.lpa import INTERACTION_FORMAT

from benchmarks.conftest import SMOKE, record_run, report

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_dissemination.json"

#: Records per encoded batch (a few coalesced eviction cycles' worth).
N_RECORDS = 500 if SMOKE else 4000
#: Timed repetitions per round; rates are computed over the whole loop.
REPEAT = 2 if SMOKE else 5
ROUNDS = 2 if SMOKE else 5
#: Requests driven through the end-to-end monitored pair.
N_REQUESTS = 10 if SMOKE else 40
#: Smoke floors are sanity checks, not calibrated bounds — CI runners
#: are too noisy for tight perf assertions on short runs.
ENCODE_FLOOR = 1.3 if SMOKE else 2.0
DECODE_FLOOR = 1.1 if SMOKE else 1.5


def _registry():
    registry = encoding.FormatRegistry()
    fmt = registry.register(*INTERACTION_FORMAT)
    return registry, fmt


def _make_records(n):
    """Synthesize realistic interaction dicts (varying ids, ips, classes)."""
    records = []
    for i in range(n):
        records.append({
            "interaction_id": i,
            "node": "server{}".format(i % 4),
            "client_ip": "10.0.0.{}".format(i % 250),
            "client_port": 40000 + (i % 1000),
            "server_ip": "10.0.1.7",
            "server_port": 8080,
            "start_ts": 0.5 + i * 1e-4,
            "end_ts": 0.5 + i * 1e-4 + 3.2e-3,
            "req_packets": 4,
            "req_bytes": 10000 + i,
            "resp_packets": 3,
            "resp_bytes": 3000,
            "kernel_wait": 1.5e-4,
            "kernel_cpu": 2.0e-4,
            "kernel_time": 3.5e-4,
            "user_time": 2.0e-3,
            "io_blocked": 0.0,
            "ctx_switches": 6,
            "disk_ops": i % 3,
            "server_pid": 1200 + (i % 16),
            "server_name": "echo-srv",
            "request_class": ("query", "update", "commit")[i % 3],
            "total_latency": 3.2e-3,
        })
    return records


def _rate(fn):
    """Best-of-N records/sec for ``fn`` run over one synthesized batch."""
    best = 0.0
    for _ in range(ROUNDS):
        started = time.perf_counter()
        for _ in range(REPEAT):
            fn()
        elapsed = time.perf_counter() - started
        best = max(best, N_RECORDS * REPEAT / elapsed)
    return best


def _publish_rate(frame_mode):
    """End-to-end records/sec of wall clock through a monitored pair."""
    from repro.core import SysProfConfig
    from tests.core.helpers import build_monitored_pair, drive_traffic

    config = SysProfConfig(
        eviction_interval=0.05, frame_dissemination=frame_mode
    )
    started = time.perf_counter()
    cluster, sysprof = build_monitored_pair(config=config)
    drive_traffic(cluster, sysprof, count=N_REQUESTS)
    elapsed = time.perf_counter() - started
    daemon = sysprof.monitor("server").daemon
    published = daemon.records_published
    assert published > 0
    assert len(sysprof.gpa.interactions) > 0
    return published / elapsed


def test_dissemination_frame_speedup():
    registry, fmt = _registry()
    dicts = _make_records(N_RECORDS)
    rows = [tuple(record[name] for name in fmt.names) for record in dicts]
    blob_records = encoding.encode_records(fmt, dicts)
    blob_frame = encoding.encode_frame(fmt, rows)
    # Same record images either way; only the 8-byte header differs.
    assert len(blob_records) == len(blob_frame)

    # Encode: the seed's path packed dicts one struct.pack at a time.
    encode_dict_rate = _rate(lambda: encoding.encode_records(fmt, dicts))
    encode_row_rate = _rate(lambda: encoding.encode_records(fmt, rows))
    encode_frame_rate = _rate(lambda: encoding.encode_frame(fmt, rows))

    # Decode: per-record header walk vs whole-frame chunked unpack.
    decode_record_rate = _rate(lambda: encoding.decode_records(registry, blob_records))
    decode_frame_rate = _rate(lambda: encoding.decode_frame(registry, blob_frame))

    publish_record_rate = _publish_rate(frame_mode=False)
    publish_frame_rate = _publish_rate(frame_mode=True)

    encode_speedup = encode_frame_rate / encode_dict_rate
    decode_speedup = decode_frame_rate / decode_record_rate

    if not SMOKE:  # smoke runs never append to the recorded trajectory
        record_run(BENCH_PATH, "sysprof-repro/bench-dissemination/v2", {
            "format": fmt.name,
            "record_size_bytes": fmt.record_size,
            "records_per_batch": N_RECORDS,
            "encode": {
                "records_per_sec_per_record_dicts": round(encode_dict_rate),
                "records_per_sec_per_record_rows": round(encode_row_rate),
                "records_per_sec_frame_rows": round(encode_frame_rate),
                "speedup_frame_vs_per_record_dicts": round(encode_speedup, 3),
            },
            "decode": {
                "records_per_sec_per_record": round(decode_record_rate),
                "records_per_sec_frame": round(decode_frame_rate),
                "speedup_frame_vs_per_record": round(decode_speedup, 3),
            },
            "end_to_end": {
                "workload": "monitored echo pair, {} requests".format(N_REQUESTS),
                "published_per_wall_sec_per_record_mode": round(publish_record_rate),
                "published_per_wall_sec_frame_mode": round(publish_frame_rate),
            },
        })

    report(
        "dissemination throughput (written to BENCH_dissemination.json)",
        ("metric", "records per second"),
        [
            ("encode: per-record blobs, dict records (seed)", encode_dict_rate),
            ("encode: per-record blobs, preordered rows", encode_row_rate),
            ("encode: frames, preordered rows", encode_frame_rate),
            ("decode: per-record blobs", decode_record_rate),
            ("decode: frames", decode_frame_rate),
            ("end-to-end publish: per-record mode", publish_record_rate),
            ("end-to-end publish: frame mode", publish_frame_rate),
        ],
        notes=(
            "frame encode speedup: {:.2f}x (required >= {:.2f}x)".format(
                encode_speedup, ENCODE_FLOOR
            ),
            "frame decode speedup: {:.2f}x (required >= {:.2f}x)".format(
                decode_speedup, DECODE_FLOOR
            ),
        ),
    )
    assert encode_frame_rate >= ENCODE_FLOOR * encode_dict_rate, (
        "frame encode {:.0f} rec/s vs per-record {:.0f} rec/s".format(
            encode_frame_rate, encode_dict_rate
        )
    )
    assert decode_frame_rate >= DECODE_FLOOR * decode_record_rate, (
        "frame decode {:.0f} rec/s vs per-record {:.0f} rec/s".format(
            decode_frame_rate, decode_record_rate
        )
    )
    # Rows alone (no frame) must already beat dict packing.
    assert encode_row_rate > encode_dict_rate


def test_frame_roundtrip_matches_per_record():
    """Both wire layouts decode to identical record contents."""
    registry, fmt = _registry()
    dicts = _make_records(64)
    rows = [tuple(record[name] for name in fmt.names) for record in dicts]
    _, from_records = encoding.decode_records(
        registry, encoding.encode_records(fmt, dicts)
    )
    _, from_frame = encoding.decode_frame(
        registry, encoding.encode_frame(fmt, rows)
    )
    assert [fmt.row_to_dict(row) for row in from_frame] == from_records
