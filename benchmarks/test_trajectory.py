"""``record_run`` appends to BENCH trajectories, never clobbers them.

The BENCH_*.json files are the repo's perf history: every recorded run
must extend the ``trajectory`` list.  These tests run in smoke mode too
(they use a temp path, not the real BENCH files) so CI catches a writer
regressing to overwrite-the-snapshot behavior.
"""

import json

from benchmarks.conftest import record_run


def test_record_run_appends_not_clobbers(tmp_path):
    path = tmp_path / "BENCH_x.json"
    record_run(path, "sysprof-repro/bench-x/v2", {"rate": 100})
    record_run(path, "sysprof-repro/bench-x/v2", {"rate": 200})
    doc = json.loads(path.read_text())
    assert doc["schema"] == "sysprof-repro/bench-x/v2"
    assert [entry["rate"] for entry in doc["trajectory"]] == [100, 200]
    assert doc["latest"]["rate"] == 200
    for entry in doc["trajectory"]:
        assert entry["commit"]
        assert len(entry["date"]) == 10  # YYYY-MM-DD


def test_record_run_migrates_flat_v1_snapshot(tmp_path):
    path = tmp_path / "BENCH_x.json"
    path.write_text(json.dumps({
        "schema": "sysprof-repro/bench-x/v1",
        "engine": {"events_per_sec": 42},
    }))
    record_run(path, "sysprof-repro/bench-x/v2", {"engine": {"events_per_sec": 99}})
    doc = json.loads(path.read_text())
    assert len(doc["trajectory"]) == 2
    first, second = doc["trajectory"]
    assert first["engine"]["events_per_sec"] == 42  # old snapshot preserved
    assert first["note"] == "migrated pre-trajectory snapshot"
    assert second["engine"]["events_per_sec"] == 99
    assert doc["latest"] is not first


def test_record_run_survives_corrupt_file(tmp_path):
    path = tmp_path / "BENCH_x.json"
    path.write_text("{not json")
    record_run(path, "sysprof-repro/bench-x/v2", {"rate": 7})
    doc = json.loads(path.read_text())
    assert [entry["rate"] for entry in doc["trajectory"]] == [7]


def test_federation_cli_writer_appends_same_layout(tmp_path):
    """The federation CLI writes BENCH_federation.json through its own
    writer (src/ cannot import benchmarks/); it must append with the
    exact trajectory layout record_run produces."""
    from repro.experiments.federation import BENCH_SCHEMA, record_trajectory

    path = tmp_path / "BENCH_federation.json"
    record_trajectory(path, BENCH_SCHEMA, {"points": [1]})
    record_trajectory(path, BENCH_SCHEMA, {"points": [2]})
    doc = json.loads(path.read_text())
    assert doc["schema"] == BENCH_SCHEMA
    assert [entry["points"] for entry in doc["trajectory"]] == [[1], [2]]
    assert doc["latest"]["points"] == [2]
    for entry in doc["trajectory"]:
        assert entry["commit"]
        assert len(entry["date"]) == 10
    # Corrupt files are survivable, like record_run.
    path.write_text("{not json")
    record_trajectory(path, BENCH_SCHEMA, {"points": [3]})
    doc = json.loads(path.read_text())
    assert [entry["points"] for entry in doc["trajectory"]] == [[3]]


def test_shared_cli_writer_matches_record_run_layout(tmp_path):
    """Every CLI BENCH writer (calibrate, microbench, federation) goes
    through experiments.common.record_trajectory; its documents must be
    field-for-field compatible with the harness's record_run so readers
    (gen_docs, check_docs, trend tooling) never care which side wrote
    the file."""
    from repro.experiments.common import record_trajectory

    shared = tmp_path / "BENCH_shared.json"
    harness = tmp_path / "BENCH_harness.json"
    record_trajectory(shared, "sysprof-repro/bench-x/v2", {"rate": 100})
    record_run(harness, "sysprof-repro/bench-x/v2", {"rate": 100})
    a = json.loads(shared.read_text())
    b = json.loads(harness.read_text())
    assert set(a) == set(b) == {"schema", "latest", "trajectory"}
    assert set(a["latest"]) == set(b["latest"]) == {"rate", "commit", "date"}
    # And appending through one writer then the other extends, never clobbers.
    record_run(shared, "sysprof-repro/bench-x/v2", {"rate": 200})
    record_trajectory(shared, "sysprof-repro/bench-x/v2", {"rate": 300})
    doc = json.loads(shared.read_text())
    assert [entry["rate"] for entry in doc["trajectory"]] == [100, 200, 300]
