"""§3.1 microbenchmarks: linpack, iperf, and the overhead range.

Paper anchors:
* linpack MFLOPS unchanged with SysProf on;
* iperf 1 Gbps: ~930 -> ~810 Mbps (~13% overhead);
* iperf 100 Mbps: ~3% overhead (we measure ~0-1%: our model has no
  interrupt-pressure term when the link, not the CPU, is the limit);
* overhead configurable from <1% to >10%.
"""

from repro.experiments import (
    iperf_experiment,
    linpack_experiment,
    overhead_range_experiment,
)
from benchmarks.conftest import report


def test_linpack_overhead(once):
    result = once(linpack_experiment, 1.0)
    report(
        "Linpack with SysProf (paper §3.1: 'no change in the mflops')",
        ("metric", "paper", "measured"),
        [
            ("baseline MFLOPS", "(2.8 GHz class)", result.baseline),
            ("monitored MFLOPS", "unchanged", result.monitored),
            ("overhead %", "~0", result.overhead_pct),
        ],
    )
    assert result.overhead_pct < 1.0


def test_iperf_1gbps(once):
    result = once(iperf_experiment, 1_000_000_000, 0.3)
    report(
        "iperf on 1 Gbps Ethernet (paper §3.1: ~930 -> ~810 Mbps, ~13%)",
        ("metric", "paper", "measured"),
        [
            ("baseline Mbps", 930, result.baseline),
            ("monitored Mbps", 810, result.monitored),
            ("overhead %", 13, result.overhead_pct),
        ],
    )
    assert 880 <= result.baseline <= 980
    assert 8.0 <= result.overhead_pct <= 18.0


def test_iperf_100mbps(once):
    result = once(iperf_experiment, 100_000_000, 0.3)
    report(
        "iperf on 100 Mbps LAN (paper §3.1: 'overhead came down to 3%')",
        ("metric", "paper", "measured"),
        [
            ("baseline Mbps", "~95", result.baseline),
            ("monitored Mbps", "~92", result.monitored),
            ("overhead %", 3, result.overhead_pct),
        ],
        notes=(
            "link-bound regime: measured overhead is ~0-1% (< the 1 Gbps "
            "case, preserving the paper's shape claim)",
        ),
    )
    assert result.baseline > 85
    assert result.overhead_pct < 3.5  # far below the CPU-bound 13%


def test_overhead_configuration_range(once):
    results = once(overhead_range_experiment, 0.25)
    rows = [
        (entry.label, entry.monitored, entry.overhead_pct) for entry in results
    ]
    report(
        "overhead vs configuration (paper §3.1: '<1% ... more than 10%')",
        ("configuration", "Mbps", "overhead %"),
        rows,
    )
    by_label = {entry.label: entry.overhead_pct for entry in results}
    assert by_label["attached, all events masked"] < 1.0
    assert by_label["default (per-interaction)"] > 10.0
    # The knobs produce a monotone-ish cost ladder.
    assert (
        by_label["attached, all events masked"]
        < by_label["class granularity"] + 2.0
        <= by_label["text encoding (no PBIO)"] + 4.0
    )
