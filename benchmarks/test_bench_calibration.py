"""Resource-geometry calibration: the simulator agrees with itself.

Acceptance bench for the self-calibration suite: every modeled
resource's sweep must produce a detectable knee, and at least four of
the six inferred geometry values must match the configured constants in
``ossim/costs.py`` / ``SysProfConfig`` within each resource's stated
tolerance (all six pass at the time of writing; the floor leaves room
for honest drift in the two CPU-bound sweeps without going red on
noise-free refactors).

Results append to the ``trajectory`` list in ``BENCH_calibration.json``
at the repo root; ``tools/gen_docs.py`` renders the latest entry into
``docs/calibration.md``.
"""

from pathlib import Path

from repro.experiments.calibrate import BENCH_SCHEMA, run_calibration

from benchmarks.conftest import SMOKE, record_run, report

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_calibration.json"

#: Minimum resources whose inferred geometry must match the configured
#: value within tolerance.
PASS_FLOOR = 4

#: These sweeps are analytic (flow-control byte counting, raw
#: serialization) — they must recover the configured value almost
#: exactly, not just within the documented tolerance.
EXACT_RESOURCES = {"socket_buffer": 0.01, "link_serialization": 0.01}


def test_calibration_recovers_modeled_geometry():
    result = run_calibration(smoke=SMOKE)

    rows = []
    for r in result.resources:
        rows.append((
            r.name,
            "-" if r.inferred is None else "{:.4g}".format(r.inferred),
            "{:.4g}".format(r.configured),
            "-" if r.rel_error is None else "{:.1%}".format(r.rel_error),
            "{:.0%}".format(r.tolerance),
            "ok" if r.passed else "FAIL",
        ))
    report(
        "resource geometry: knee-inferred vs configured",
        ("resource", "inferred", "configured", "error", "tolerance", "status"),
        rows,
        notes=(
            "each value is inferred from the knee of an offered-load sweep, "
            "never read from the config",
            "digest {} (serial == --jobs N)".format(result.digest[:16]),
        ),
    )

    assert result.total == 6
    for r in result.resources:
        assert r.knee is not None, "no knee found for {}".format(r.name)
    assert result.passes >= PASS_FLOOR, (
        "only {}/{} resources within tolerance".format(
            result.passes, result.total
        )
    )
    for name, ceiling in EXACT_RESOURCES.items():
        r = result.resource(name)
        assert r.rel_error <= ceiling, (name, r.rel_error)

    if not SMOKE:
        record_run(BENCH_PATH, BENCH_SCHEMA, result.payload())
