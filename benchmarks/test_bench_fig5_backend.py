"""Figure 5: avg time spent by interactions at the back-end NFS server.

Paper claims: "Since the NFS server ran as kernel daemon, no time was
spent by the request at the user level ... This time is more than an
order [of] magnitude than the time spent in the proxy", and the network
round-trip is insignificant (< 0.3 ms).
"""

from repro.experiments import NfsExperimentConfig, run_nfs_experiment
from benchmarks.conftest import report

CONFIG = NfsExperimentConfig(thread_counts=(1, 2, 4, 8, 16), ops_per_thread=20)


def _sweep():
    return [
        run_nfs_experiment(threads, CONFIG) for threads in CONFIG.thread_counts
    ]


def test_fig5_backend_kernel_time(once):
    results = once(_sweep)
    rows = [
        (r.threads_per_client, r.backend_user_ms, r.backend_kernel_ms,
         r.backend_to_proxy_ratio, r.network_rtt_ms)
        for r in results
    ]
    report(
        "Figure 5: per-interaction time at the back-end server vs threads",
        ("threads", "user ms (paper: 0)", "kernel ms (paper: grows, >>proxy)",
         "backend/proxy ratio", "net RTT ms (paper: <0.3)"),
        rows,
        notes=(
            "paper: backend 'more than an order [of] magnitude' above the "
            "proxy — our ratio crosses 10x at higher thread counts",
        ),
    )
    for r in results:
        assert r.backend_user_ms < 1e-3  # kernel daemon: zero user time
        assert r.network_rtt_ms < 0.3
        assert r.backend_kernel_ms > r.proxy_kernel_ms
    kernels = [r.backend_kernel_ms for r in results]
    assert kernels[-1] > 5.0 * kernels[0]  # strong growth with load
    assert results[-1].backend_to_proxy_ratio > 8.0
    assert all(r.causal_paths > 0 for r in results)
