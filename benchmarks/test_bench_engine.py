"""Hot-path throughput: engine events/sec and Kprof fires/sec.

Unlike the figure benchmarks, this one measures the *simulator itself* —
the event loop and the monitoring hub every experiment routes millions
of events through.  The fast-lane dispatcher (with the calendar-queue
event store) must beat the pure-heap reference path (the
pre-optimization engine, still selectable via
``Simulator(fast_lane=False, event_store="heap")``) by at least 1.5x on
the callback-delivery workload that dominates real runs.

Results append to the ``trajectory`` list in ``BENCH_engine.json`` at
the repo root so later PRs extend the perf history instead of erasing
it; see docs/performance.md for how to read it.
"""

import time
from pathlib import Path

from repro.cluster import Cluster
from repro.core.kprof import Kprof, exclude_port_range
from repro.ossim import tracepoints as tp
from repro.sim.engine import Simulator, Waitable

from benchmarks.conftest import SMOKE, record_run

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: Callback deliveries per engine measurement.
N_EVENTS = 15_000 if SMOKE else 150_000
#: Future timers parked in the heap while callbacks churn, as in a real
#: cluster run (retransmit timers, eviction ticks, load injectors).
STANDING_TIMERS = 1000
#: Tracepoint hits per Kprof measurement.
N_FIRES = 50_000 if SMOKE else 200_000
ROUNDS = 2 if SMOKE else 3
#: Smoke mode checks the fast lane wins at all, not the calibrated 1.5x —
#: CI runners are too noisy for a tight perf bound on a short run.
SPEEDUP_FLOOR = 1.05 if SMOKE else 1.5


def _engine_rate(fast_lane, event_store=None):
    """Best-of-N events/sec for the Waitable callback-delivery chain."""
    best = 0.0
    for _ in range(ROUNDS):
        sim = Simulator(fast_lane=fast_lane, event_store=event_store)
        for index in range(STANDING_TIMERS):
            sim.schedule(1e6 + index, lambda: None)
        fired = [0]

        def tick(_w, sim=sim, fired=fired):
            fired[0] += 1
            if fired[0] < N_EVENTS:
                waitable = Waitable(sim)
                waitable.add_callback(tick)
                waitable.succeed()

        seed = Waitable(sim)
        seed.add_callback(tick)
        seed.succeed()
        started = time.perf_counter()
        sim.run(until=5e5)
        elapsed = time.perf_counter() - started
        assert fired[0] == N_EVENTS
        best = max(best, N_EVENTS / elapsed)
    return best


def _kprof_node():
    return Cluster(seed=3).add_node("bench")


def _kprof_rate(predicate=None):
    """Best-of-N fires/sec through an attached Kprof with one subscriber."""
    best = 0.0
    for _ in range(ROUNDS):
        node = _kprof_node()
        kprof = Kprof(node.kernel).attach()
        seen = [0]

        def on_event(_event, seen=seen):
            seen[0] += 1

        kprof.subscribe([tp.SOCK_ENQUEUE], on_event, predicate=predicate)
        fire = kprof.fire
        started = time.perf_counter()
        for _ in range(N_FIRES):
            fire(tp.SOCK_ENQUEUE, sock_pid=7, src_port=80, dst_port=5001,
                 size=1448)
        elapsed = time.perf_counter() - started
        best = max(best, N_FIRES / elapsed)
    return best


def test_engine_fast_lane_speedup():
    heap_rate = _engine_rate(fast_lane=False, event_store="heap")
    fast_rate = _engine_rate(fast_lane=True)  # default calendar store
    calendar_oracle_rate = _engine_rate(fast_lane=False)
    deliver_rate = _kprof_rate()
    # All events rejected by a fields-only predicate: the hub must skip
    # MonEvent construction entirely, so this path is the fastest.
    suppress_rate = _kprof_rate(predicate=exclude_port_range(5000, 5999))

    if not SMOKE:  # smoke runs never append to the recorded trajectory
        record_run(BENCH_PATH, "sysprof-repro/bench-engine/v2", {
            "engine": {
                "workload": "waitable callback chain, {} standing timers".format(
                    STANDING_TIMERS
                ),
                "events": N_EVENTS,
                "events_per_sec": round(fast_rate),
                "events_per_sec_heap_baseline": round(heap_rate),
                "events_per_sec_calendar_oracle": round(calendar_oracle_rate),
                "speedup": round(fast_rate / heap_rate, 3),
            },
            "kprof": {
                "fires": N_FIRES,
                "fires_per_sec_delivered": round(deliver_rate),
                "fires_per_sec_all_suppressed": round(suppress_rate),
            },
        })

    from benchmarks.conftest import report

    report(
        "engine/Kprof hot-path throughput (written to BENCH_engine.json)",
        ("metric", "per second"),
        [
            ("events/sec (heap baseline)", heap_rate),
            ("events/sec (calendar, no fast lane)", calendar_oracle_rate),
            ("events/sec (fast lane + calendar)", fast_rate),
            ("kprof fires/sec (delivered)", deliver_rate),
            ("kprof fires/sec (all suppressed)", suppress_rate),
        ],
        notes=("fast lane speedup: {:.2f}x (required >= {:.2f}x)".format(
            fast_rate / heap_rate, SPEEDUP_FLOOR
        ),),
    )
    assert fast_rate >= SPEEDUP_FLOOR * heap_rate, (
        "fast lane {:.0f} ev/s vs heap {:.0f} ev/s".format(fast_rate, heap_rate)
    )
    # Suppression skips MonEvent construction entirely, so it must win;
    # smoke runs only sanity-check it is not dramatically slower.
    assert suppress_rate > (0.8 if SMOKE else 1.0) * deliver_rate
