"""Quantile-sketch throughput and accuracy vs a naive exact baseline.

The diagnosis engine's online percentiles ride on ``QuantileSketch``
(log-bucketed, DDSketch-style).  Its pitch over the obvious
sorted-list-per-window baseline is twofold: constant memory with cheap
mergeability, and relative-error-bounded quantiles.  This benchmark
streams a lognormal latency population through both, then checks

* update throughput — scalar ``add`` and the vectorized ``update_many``
  batch path (numpy ``log``/``bincount``; see docs/performance.md) over
  the same sample population,
* merge throughput (window sketches folded into one, as the GPA does),
* p50/p90/p99 relative error vs the exact sorted-list answer, which
  must stay within the sketch's advertised 2% budget.

Results append to the ``trajectory`` list in ``BENCH_sketch.json`` at
the repo root; see docs/diagnosis.md ("Sketch accuracy") for how to
read it.
"""

import math
import random
import time
from pathlib import Path

from repro.observability.sketches import QuantileSketch

from benchmarks.conftest import SMOKE, record_run, report

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_sketch.json"

#: Latency population size streamed through both structures.
N_SAMPLES = 50_000 if SMOKE else 1_000_000
#: Window sketches pre-built for the merge benchmark (one per eviction).
N_WINDOWS = 64 if SMOKE else 512
#: Merge passes timed over the window set.
MERGE_ROUNDS = 5 if SMOKE else 20
QUANTILES = (0.5, 0.9, 0.99)
#: The sketch's accuracy contract (alpha=0.01 -> ~1%; budget is 2%).
ERROR_BUDGET = 0.02
#: Smoke floors are sanity checks, not calibrated bounds — CI runners
#: are too noisy for tight perf assertions on short runs.
UPDATE_FLOOR = 50_000 if SMOKE else 200_000
#: Batch floor applies only when numpy is present (pure-Python fallback
#: is roughly scalar speed); the vectorized kernel clears it easily.
BATCH_FLOOR = 100_000 if SMOKE else 3_000_000
MERGE_FLOOR = 200 if SMOKE else 1_000
#: Records ingested per ``update_many`` call (an eviction window's worth).
BATCH_SIZE = 5_000


def _samples(n, seed=17):
    """Lognormal service times (ms-scale): a long-tailed latency shape."""
    rng = random.Random(seed)
    return [rng.lognormvariate(0.0, 0.75) * 2e-3 for _ in range(n)]


def _exact_quantile(sorted_values, q):
    """The same rank convention the sketch tests mirror."""
    return sorted_values[math.ceil(q * (len(sorted_values) - 1))]


def test_sketch_throughput_and_accuracy():
    values = _samples(N_SAMPLES)

    # Update path: one long-lived sketch absorbing the whole stream.
    sketch = QuantileSketch()
    started = time.perf_counter()
    add = sketch.add
    for value in values:
        add(value)
    update_rate = N_SAMPLES / (time.perf_counter() - started)
    assert sketch.count == N_SAMPLES

    # Batch path: the vectorized update_many kernel over the same
    # population, fed in eviction-window-sized chunks.
    from repro.observability.sketches import _np

    batch_sketch = QuantileSketch()
    started = time.perf_counter()
    for at in range(0, N_SAMPLES, BATCH_SIZE):
        batch_sketch.update_many(values[at:at + BATCH_SIZE])
    batch_rate = N_SAMPLES / (time.perf_counter() - started)
    assert batch_sketch.count == N_SAMPLES

    # The exact baseline the sketch is traded against: keep everything,
    # sort once per query.
    started = time.perf_counter()
    exact_sorted = sorted(values)
    exact_build_rate = N_SAMPLES / (time.perf_counter() - started)

    # Merge path: fold per-window sketches the way the GPA store does.
    per_window = max(1, N_SAMPLES // N_WINDOWS)
    windows = []
    for w in range(N_WINDOWS):
        chunk = QuantileSketch()
        for value in values[w * per_window:(w + 1) * per_window]:
            chunk.add(value)
        windows.append(chunk)
    best_merge = 0.0
    for _ in range(MERGE_ROUNDS):
        started = time.perf_counter()
        merged = QuantileSketch()
        for chunk in windows:
            merged.merge(chunk)
        best_merge = max(
            best_merge, N_WINDOWS / (time.perf_counter() - started)
        )

    # Accuracy: streaming and merged answers vs the exact ranks.
    errors = {}
    for q in QUANTILES:
        exact = _exact_quantile(exact_sorted, q)
        for label, estimator in (
            ("stream", sketch), ("batch", batch_sketch), ("merged", merged)
        ):
            rel = abs(estimator.quantile(q) - exact) / exact
            errors[(label, q)] = rel
            assert rel <= ERROR_BUDGET, (label, q, rel)

    assert update_rate >= UPDATE_FLOOR
    assert best_merge >= MERGE_FLOOR
    if _np is not None:
        assert batch_rate >= BATCH_FLOOR

    if not SMOKE:  # smoke runs never append to the recorded trajectory
        record_run(BENCH_PATH, "sysprof-repro/bench-sketch/v2", {
            "samples": N_SAMPLES,
            "windows": N_WINDOWS,
            "alpha": sketch.alpha,
            "max_buckets": sketch.max_buckets,
            "batch_size": BATCH_SIZE,
            "throughput": {
                "updates_per_sec": round(batch_rate),
                "scalar_updates_per_sec": round(update_rate),
                "merges_per_sec": round(best_merge),
                "exact_sort_samples_per_sec": round(exact_build_rate),
            },
            "relative_error": {
                label: {
                    "p{}".format(int(q * 100)): round(errors[(label, q)], 5)
                    for q in QUANTILES
                }
                for label in ("stream", "batch", "merged")
            },
        })

    report(
        "quantile sketch (written to BENCH_sketch.json)",
        ("metric", "value"),
        [
            ("samples", "{:,}".format(N_SAMPLES)),
            ("updates/sec (scalar add)", "{:,}".format(round(update_rate))),
            ("updates/sec (update_many, batches of {})".format(BATCH_SIZE),
             "{:,}".format(round(batch_rate))),
            ("merges/sec ({} windows)".format(N_WINDOWS),
             "{:,}".format(round(best_merge))),
            ("exact sort samples/sec", "{:,}".format(round(exact_build_rate))),
        ] + [
            ("p{} rel err (stream / merged)".format(int(q * 100)),
             "{:.4f} / {:.4f}".format(
                 errors[("stream", q)], errors[("merged", q)]))
            for q in QUANTILES
        ],
        notes=(
            "error budget {:.0%} at alpha={}".format(
                ERROR_BUDGET, sketch.alpha
            ),
        ),
    )
