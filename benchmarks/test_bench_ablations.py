"""Ablations over SysProf's "performance gears" (paper §5: "selective
monitoring, hierarchical analysis, per-CPU buffers, kernel-level
messaging and others keep the overhead low").

Each ablation disables one design choice and measures what it costs.
"""

from repro.cluster import Cluster
from repro.core import SysProf, SysProfConfig
from repro.workloads.iperf import run_iperf
from benchmarks.conftest import report


def _iperf_cluster(seed=42):
    cluster = Cluster(seed=seed)
    cluster.add_node("tx")
    cluster.add_node("rx")
    cluster.add_node("mgmt")
    return cluster


def _install(cluster, config=None):
    sysprof = SysProf(cluster, config or SysProfConfig(eviction_interval=0.05))
    sysprof.install(monitored=["rx"], gpa_node="mgmt")
    sysprof.start()
    return sysprof


def test_selective_monitoring(once):
    """Gear 1: subscribe only to what the analysis needs."""

    def run():
        results = {}
        for label, masked in (
            ("interaction events only", ["scheduling", "syscall",
                                         "filesystem", "block"]),
            ("everything on", []),
            ("all masked (off)", ["network", "scheduling", "syscall",
                                  "filesystem", "block"]),
        ):
            cluster = _iperf_cluster()
            sysprof = _install(cluster)
            if masked:
                sysprof.controller.disable_events(masked, node="rx")
            results[label] = run_iperf(cluster, "tx", "rx", duration=0.25).mbps
        return results

    results = once(run)
    report(
        "ablation: selective monitoring (iperf goodput, Mbps)",
        ("configuration", "Mbps"),
        sorted(results.items()),
    )
    assert results["all masked (off)"] > results["interaction events only"]
    assert results["interaction events only"] >= results["everything on"]


def _echo_traffic(cluster, count=200, think=0.0005, connections=1):
    """Request/response traffic so the interaction LPA produces records.

    ``connections`` parallel clients with ``think=0`` produce record
    bursts while the CPU is saturated with interrupt work — the regime
    buffering exists for.
    """

    def server(ctx):
        lsock = yield from ctx.listen(8080)
        while True:
            sock = yield from ctx.accept(lsock)
            ctx.spawn("handler", _handler, sock)

    def _handler(ctx, sock):
        while True:
            message = yield from ctx.recv_message(sock)
            if message is None:
                break
            yield from ctx.send_message(sock, 400, kind="reply")

    def client(ctx):
        sock = yield from ctx.connect("rx", 8080)
        for _ in range(count):
            yield from ctx.send_message(sock, 600, kind="query")
            yield from ctx.recv_message(sock)
            if think:
                yield from ctx.sleep(think)
        yield from ctx.close(sock)

    cluster.node("rx").spawn("srv", server)
    for index in range(connections):
        cluster.node("tx").spawn("cli{}".format(index), client)
    cluster.run(until=10.0)


def test_buffer_sizing(once):
    """Gear 2: per-CPU double buffers; capacity trades loss vs freshness."""

    def run():
        rows = []
        for capacity in (4, 32, 256):
            cluster = _iperf_cluster()
            sysprof = _install(
                cluster,
                SysProfConfig(eviction_interval=1.0, buffer_capacity=capacity,
                              nodestats=False),
            )
            _echo_traffic(cluster)
            stats = sysprof.lpa("rx").buffer.stats()
            rows.append((capacity, stats["appended"], stats["lost"],
                         stats["switches"]))
        return rows

    rows = once(run)
    report(
        "ablation: double-buffer capacity under a slow (1 s) daemon timer",
        ("capacity", "appended", "lost", "switches"),
        rows,
    )
    # Smaller buffers switch much more often.
    assert rows[0][3] > rows[-1][3]


def test_buffer_loss_vs_production_rate(once):
    """Gear 2b: when does the double-buffer pair start shedding records?

    Direct mechanism microbenchmark: a synthetic in-kernel producer emits
    fixed-format records at increasing rates; the real dissemination
    daemon consumes them.  At moderate rates the pair absorbs everything;
    past the daemon's drain bandwidth, "if the data is not picked up in a
    timely fashion, it may be overwritten" (paper) and loss appears.
    """

    def run():
        from repro.core.lpa import INTERACTION_FORMAT

        template = {
            fname: ("x" if ftype.startswith("str") else 0)
            for fname, ftype in INTERACTION_FORMAT[1]
        }
        rows = []
        for gap_us in (20.0, 5.0, 2.0):
            cluster = _iperf_cluster()
            sysprof = _install(
                cluster,
                SysProfConfig(eviction_interval=0.5, buffer_capacity=8,
                              nodestats=False),
            )
            buffer = sysprof.lpa("rx").buffer
            gap = gap_us * 1e-6

            def produce(buffer=buffer, sim=cluster.sim, gap=gap, deadline=0.02):
                buffer.append(dict(template))
                if sim.now < deadline:
                    sim.schedule(gap, produce)

            cluster.sim.schedule(0.0, produce)
            cluster.run(until=0.3)
            stats = buffer.stats()
            rate_krps = 1000.0 / gap_us
            loss_pct = 100.0 * stats["lost"] / max(1, stats["appended"])
            rows.append((rate_krps, stats["appended"], stats["lost"], loss_pct))
        return rows

    rows = once(run)
    report(
        "ablation: double-buffer record loss vs production rate",
        ("rate (k records/s)", "appended", "lost", "loss %"),
        rows,
    )
    # Moderate rate: the pair keeps up.  Saturated rate: loss appears.
    assert rows[0][3] < 1.0
    assert rows[-1][3] > rows[0][3]


def test_encoding_cost(once):
    """Gear 3: PBIO-style binary encoding vs text payloads."""

    def run():
        results = {}
        for label, text in (("binary (PBIO-style)", False), ("text", True)):
            cluster = _iperf_cluster()
            sysprof = _install(
                cluster,
                SysProfConfig(eviction_interval=0.02, buffer_capacity=16,
                              text_encoding=text),
            )
            mbps = run_iperf(cluster, "tx", "rx", duration=0.25).mbps
            daemon = sysprof.monitor("rx").daemon
            results[label] = (mbps, daemon.bytes_published,
                              daemon.records_published)
        return results

    results = once(run)
    rows = [
        (label, mbps, bytes_out, records)
        for label, (mbps, bytes_out, records) in sorted(results.items())
    ]
    report(
        "ablation: dissemination encoding",
        ("encoding", "iperf Mbps", "bytes published", "records"),
        rows,
    )
    binary_bytes = results["binary (PBIO-style)"][1]
    text_bytes = results["text"][1]
    binary_records = results["binary (PBIO-style)"][2]
    text_records = results["text"][2]
    # Normalize per record: text is far fatter on the wire.
    assert text_bytes / max(1, text_records) > 2.0 * binary_bytes / max(
        1, binary_records
    )


def test_hierarchical_analysis(once):
    """Gear 4: in-kernel aggregation (class granularity) vs shipping every
    interaction record to the GPA."""

    def run():
        results = {}
        for label, granularity in (
            ("per-interaction records", "interaction"),
            ("in-kernel class aggregation", "class"),
        ):
            cluster = _iperf_cluster()
            sysprof = _install(
                cluster,
                SysProfConfig(eviction_interval=0.02, buffer_capacity=16,
                              granularity=granularity),
            )
            run_iperf(cluster, "tx", "rx", duration=0.25)
            sysprof.flush()
            daemon = sysprof.monitor("rx").daemon
            results[label] = (daemon.records_published, daemon.bytes_published)
        return results

    results = once(run)
    rows = [
        (label, records, bytes_out)
        for label, (records, bytes_out) in sorted(results.items())
    ]
    report(
        "ablation: hierarchical analysis (what crosses the network)",
        ("strategy", "records published", "bytes published"),
        rows,
        notes=("iperf is one long flow: aggregation wins as soon as the "
               "workload has more interactions than classes",),
    )
    assert results["in-kernel class aggregation"][1] <= results[
        "per-interaction records"
    ][1] * 1.5


def test_dedicated_monitoring_core(once):
    """Paper §5 (future work): "it won't be unusual to have a core
    dedicated to the analysis of the services that run on that platform."

    A 2-core monitored server with the workload pinned to core 0:
    pinning sysprofd to core 1 moves the dissemination work off the
    workload's core entirely.
    """

    def run():
        rows = []
        for label, cpus, affinity in (
            ("1 core, shared", 1, None),
            ("2 cores, daemon floats", 2, None),
            ("2 cores, daemon pinned to core 1", 2, 1),
        ):
            cluster = Cluster(seed=64)
            cluster.add_node("tx")
            cluster.add_node("rx", cpus=cpus)
            cluster.add_node("mgmt")
            sysprof = SysProf(
                cluster,
                SysProfConfig(eviction_interval=0.01, buffer_capacity=8,
                              daemon_affinity=affinity),
            )
            sysprof.install(monitored=["rx"], gpa_node="mgmt")
            sysprof.start()
            _echo_traffic(cluster, count=300, think=0.0005)
            kernel = cluster.node("rx").kernel
            daemon_task = sysprof.monitor("rx").daemon.task
            if cpus == 1:
                core0_busy = kernel.cpu.busy_time
                core1_busy = 0.0
            else:
                core0_busy = kernel.cpu.core(0).busy_time
                core1_busy = kernel.cpu.core(1).busy_time
            rows.append((label, daemon_task.cpu_time * 1e3,
                         core0_busy * 1e3, core1_busy * 1e3))
        return rows

    rows = once(run)
    report(
        "ablation: dedicated analysis core (server node, ms of CPU)",
        ("configuration", "daemon cpu", "core0 busy", "core1 busy"),
        rows,
    )
    shared_core0 = rows[0][2]
    pinned_core0 = rows[2][2]
    pinned_core1 = rows[2][3]
    # Pinning moves daemon work onto core 1 and relieves core 0.
    assert pinned_core1 > 0
    assert pinned_core0 < shared_core0
