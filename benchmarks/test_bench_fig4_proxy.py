"""Figure 4: avg time spent by client-proxy interactions at the proxy.

Paper claims: "The amount of time a request spent at the user-level is
almost constant for different number of client threads but the kernel
time goes up because of increase in the request traffic."
"""

from repro.experiments import NfsExperimentConfig, run_nfs_experiment
from benchmarks.conftest import report

CONFIG = NfsExperimentConfig(thread_counts=(1, 2, 4, 8, 16), ops_per_thread=20)


def _sweep():
    return [
        run_nfs_experiment(threads, CONFIG) for threads in CONFIG.thread_counts
    ]


def test_fig4_proxy_user_vs_kernel_time(once):
    results = once(_sweep)
    rows = [
        (r.threads_per_client, r.proxy_user_ms, r.proxy_kernel_ms,
         r.client_mean_latency_ms)
        for r in results
    ]
    report(
        "Figure 4: per-interaction time at the proxy vs iozone threads/client",
        ("threads", "user ms (paper: flat)", "kernel ms (paper: grows)",
         "client lat ms"),
        rows,
    )
    users = [r.proxy_user_ms for r in results]
    kernels = [r.proxy_kernel_ms for r in results]
    # User-level time ~constant across a 16x load range.
    assert max(users) < 2.0 * min(users) + 0.01
    # Kernel-level time grows with traffic.
    assert kernels[-1] > 1.5 * kernels[0]
    # And stays sub-proxy-scale (the proxy itself is not the bottleneck).
    assert max(kernels) < 10.0
