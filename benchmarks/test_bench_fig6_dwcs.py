"""Figure 6: RUBiS throughput under plain (blind) DWCS.

Paper anchors: two request classes at 150 req/s each, 60 httperf
sessions; steady-state throughput 145 (bidding) and 134 (comment)
responses/sec; halfway through, background load on one servlet degrades
throughput.
"""

from repro.experiments import RubisExperimentConfig, run_rubis_experiment
from benchmarks.conftest import report

CONFIG = RubisExperimentConfig(duration=20.0, load_at=10.0)


def test_fig6_dwcs_throughput(once):
    result = once(run_rubis_experiment, "dwcs", CONFIG)
    rows = [
        ("bidding", 145, result.pre_throughput["bidding"],
         result.post_throughput["bidding"], result.dropped["bidding"]),
        ("comment", 134, result.pre_throughput["comment"],
         result.post_throughput["comment"], result.dropped["comment"]),
    ]
    report(
        "Figure 6: DWCS throughput (resp/s) before/after mid-run load",
        ("class", "paper steady", "pre-load", "post-load", "dropped"),
        rows,
        notes=(
            "blind round-robin keeps sending to the loaded servlet; the "
            "tight-deadline bidding class pays for it",
        ),
    )
    # Steady state near offered load (paper: 145/134 of 150 offered).
    assert result.pre_throughput["bidding"] > 130
    assert result.pre_throughput["comment"] > 125
    # Mid-run load visibly degrades aggregate throughput.
    assert result.post_total < 0.9 * result.pre_total
    # The tight class suffers the deadline violations.
    assert result.dropped["bidding"] > 0
    # The time series actually shows the drop at the midpoint.
    bidding = dict(result.series["bidding"])
    early = sum(v for t, v in bidding.items() if 2 <= t < 10) / 8
    late = sum(v for t, v in bidding.items() if 12 <= t < 20) / 8
    assert late < 0.85 * early
