"""Command-line interface: regenerate the paper's experiments.

Usage::

    python -m repro list
    python -m repro microbench [--quick] [--jobs N] [--no-record]
    python -m repro calibrate [--smoke] [--jobs N] [--seed N] [--resource NAME]
    python -m repro nfs [--threads 1,2,4,8,16] [--ops 20] [--jobs N]
    python -m repro rubis [--scheduler dwcs|radwcs|both] [--duration 20] [--jobs N]
    python -m repro failures [--scenario daemon-crash|partition|both] [--seed N]
    python -m repro diagnose [--smoke] [--seed N]
    python -m repro federation [--nodes N] [--zones Z] [--smoke]
    python -m repro overhead [--smoke] [--threads N]
    python -m repro trace [--out trace.json] [--smoke]
    python -m repro profile SCENARIO [--smoke] [--top N] [--trace PATH] [--json PATH]
    python -m repro serve [SCENARIO] [--smoke] [--port N] [--duration S]

``--jobs N`` fans independent sweep points out over N worker processes
(``--jobs 0`` = one per CPU).  Results are identical to serial runs —
see docs/performance.md.

Each command prints the same paper-vs-measured tables the benchmark
harness produces, without pytest.
"""

import argparse
import sys

from repro.experiments.common import format_table


def _cmd_list(_args):
    print(__doc__.strip())
    print()
    rows = [
        ("microbench", "§3.1: linpack, iperf 1G/100M, overhead range"),
        ("calibrate", "resource-geometry sweeps: infer each modeled capacity from its knee"),
        ("nfs", "Figures 4 & 5: virtual storage service bottleneck"),
        ("rubis", "Figures 6 & 7: DWCS vs resource-aware DWCS"),
        ("failures", "§3.2 failure detection: scripted outages + stale_nodes"),
        ("diagnose", "online SLO diagnosis: CPU hog -> alert -> blame -> drill-down"),
        ("federation", "zone GPAs: root ingress/CPU vs node count, flat vs federated"),
        ("overhead", "per-node CPU attribution: monitoring share vs sampling rate"),
        ("trace", "Chrome trace-event JSON export (Perfetto) of one NFS run"),
        ("profile", "self-profile the reproduction: cProfile hotspots + events/s"),
        ("serve", "live service mode: streaming dashboard + JSON control socket"),
    ]
    print(format_table(("command", "reproduces"), rows))
    return 0


def _cmd_microbench(args):
    from repro.experiments import (
        overhead_range_experiment,
        run_headline_experiments,
    )

    jobs = _jobs(args)
    duration = 0.15 if args.quick else 0.3
    headline = run_headline_experiments(
        linpack_duration=0.5 if args.quick else 1.5,
        iperf_duration=duration, jobs=jobs,
    )
    rows = [entry.row() for entry in headline]
    print(format_table(
        ("benchmark", "baseline", "monitored", "overhead %"),
        rows,
        title="§3.1 microbenchmarks (paper: linpack ~0%, 1G ~13%, 100M ~3%)",
    ))
    print()
    sweep = overhead_range_experiment(
        duration=0.1 if args.quick else 0.25, jobs=jobs
    )
    print(format_table(
        ("configuration", "Mbps", "overhead %"),
        [(entry.label, entry.monitored, entry.overhead_pct) for entry in sweep],
        title="overhead vs configuration (paper: <1% ... >10%)",
    ))
    if args.quick:
        print("\n--quick run: BENCH_microbench.json not updated")
    elif not args.no_record:
        from repro.experiments.common import record_trajectory
        from repro.experiments.microbench import (
            BENCH_PATH,
            BENCH_SCHEMA,
            microbench_payload,
        )

        record_trajectory(
            BENCH_PATH, BENCH_SCHEMA, microbench_payload(headline, sweep)
        )
        print("\nappended trajectory entry to {}".format(BENCH_PATH))
    return 0


def _cmd_calibrate(args):
    from repro.experiments.calibrate import (
        BENCH_PATH,
        BENCH_SCHEMA,
        RESOURCES,
        format_report,
        run_calibration,
    )
    from repro.experiments.common import record_trajectory

    report = run_calibration(
        seed=args.seed, smoke=args.smoke, jobs=_jobs(args),
        resources=args.resource or None,
    )
    print(format_report(report))
    full_suite = not args.resource or set(args.resource) == set(RESOURCES)
    if args.no_record:
        pass
    elif not full_suite:
        print("\npartial resource selection: BENCH_calibration.json not updated")
    else:
        record_trajectory(BENCH_PATH, BENCH_SCHEMA, report.payload())
        print("\nappended trajectory entry to {}".format(BENCH_PATH))
    return 0 if report.passes == report.total else 1


def _cmd_nfs(args):
    from repro.experiments import NfsExperimentConfig, run_thread_sweep

    threads = tuple(int(part) for part in args.threads.split(","))
    config = NfsExperimentConfig(
        thread_counts=threads, ops_per_thread=args.ops
    )
    rows = []
    for result in run_thread_sweep(config, jobs=_jobs(args)):
        rows.append((
            result.threads_per_client, result.proxy_user_ms,
            result.proxy_kernel_ms, result.backend_kernel_ms,
            result.backend_to_proxy_ratio, result.client_mean_latency_ms,
        ))
    print(format_table(
        ("threads/client", "proxy user ms", "proxy kernel ms",
         "backend kernel ms", "ratio", "client ms"),
        rows,
        title="Figures 4 & 5: per-interaction residency vs iozone threads",
    ))
    print("\npaper shape: proxy user flat; proxy kernel grows; backend "
          ">> proxy (order of magnitude at load); RTT < 0.3 ms")
    return 0


def _cmd_rubis(args):
    from repro.experiments import RubisExperimentConfig

    config = RubisExperimentConfig(
        duration=args.duration, load_at=args.duration / 2.0
    )
    schedulers = (
        ("dwcs", "radwcs") if args.scheduler == "both" else (args.scheduler,)
    )
    from repro.experiments import run_points
    from repro.experiments.rubis_qos import _comparison_point

    measured = run_points(
        _comparison_point,
        [(scheduler, config, True) for scheduler in schedulers],
        jobs=_jobs(args),
    )
    results = dict(zip(schedulers, measured))
    rows = []
    for scheduler, result in results.items():
        for name in ("bidding", "comment"):
            rows.append((
                scheduler, name, result.pre_throughput[name],
                result.post_throughput[name], result.dropped[name],
            ))
    print(format_table(
        ("scheduler", "class", "pre resp/s", "post resp/s", "dropped"),
        rows,
        title="Figures 6 & 7: throughput around the mid-run load event",
    ))
    if len(results) == 2:
        dwcs, radwcs = results["dwcs"], results["radwcs"]
        gain = 100.0 * (radwcs.post_total - dwcs.post_total) / dwcs.post_total
        print("\npost-load total gain from SysProf-guided routing: "
              "+{:.1f}% (paper: >14%)".format(gain))
    return 0


def _cmd_failures(args):
    from dataclasses import replace

    from repro.experiments import FailureExperimentConfig, run_failure_experiment
    from repro.experiments.failures import SCENARIOS

    base = FailureExperimentConfig(
        seed=args.seed,
        fault_start=args.fault_start,
        fault_duration=args.fault_duration,
    )
    scenarios = SCENARIOS if args.scenario == "both" else (args.scenario,)
    rows = []
    for scenario in scenarios:
        result = run_failure_experiment(replace(base, scenario=scenario))
        rows.append((
            scenario, result.fault_at,
            result.detection_latency if result.detected else float("nan"),
            result.recovery_latency if result.recovered else float("nan"),
            result.send_errors, result.connect_attempts, result.reconnects,
            result.backoff_skips,
        ))
    print(format_table(
        ("scenario", "fault at s", "detect s", "recover s",
         "send errs", "dials", "reconnects", "backoff skips"),
        rows,
        title="failure injection: outage detection via gpa.stale_nodes()",
    ))
    print("\nsame seed + same schedule => identical traces; detection "
          "lag ~ stale threshold + probe grid")
    return 0


def _cmd_diagnose(args):
    from dataclasses import replace

    from repro.experiments import run_diagnose_experiment
    from repro.experiments.diagnose import DiagnoseConfig, smoke_config

    config = smoke_config() if args.smoke else DiagnoseConfig()
    if args.seed is not None:
        config = replace(config, seed=args.seed)
    result = run_diagnose_experiment(config)
    print(result.dashboard or "(no mid-incident dashboard captured)")
    print()
    rows = [
        ("hog onset", "{:.2f}s on {}".format(result.hog_at, config.hog_node)),
        ("detected", "yes, +{:.2f}s".format(result.detection_latency)
         if result.detected else "NO"),
        ("blame", "{}/{} ({})".format(
            result.blamed_node or "-", result.blamed_stage or "-",
            "correct" if result.blame_correct else "WRONG")),
        ("drill-down", "eviction {:.2f}s -> {:.2f}s{}".format(
            result.interval_before, result.interval_during,
            ", restored" if result.drill_restored else ", NOT restored")
         if result.drilled else "never raised"),
        ("resolved", "yes, +{:.2f}s after hog end".format(
            result.resolution_latency) if result.resolved else "NO"),
        ("monitoring share", "{:.2%} during drill / {:.2%} overall".format(
            result.monitoring_share_during, result.monitoring_share_overall)),
        ("sketch rows merged", result.sketch_rows),
        ("trace hash", result.trace_hash[:16]),
    ]
    print(format_table(("stage", "outcome"), rows,
                       title="online diagnosis closed loop"))
    ok = (result.detected and result.blame_correct and result.drilled
          and result.drill_restored and result.resolved)
    print("\nclosed loop {}: detect -> blame -> drill -> restore".format(
        "complete" if ok else "INCOMPLETE"))
    return 0 if ok else 1


def _observe_config(args):
    from dataclasses import replace

    from repro.experiments.observe import ObservabilityConfig, smoke_config

    config = smoke_config() if args.smoke else ObservabilityConfig()
    threads = getattr(args, "threads", None)
    if threads is not None:
        config = replace(config, threads_per_client=threads)
    return config


def _cmd_overhead(args):
    from repro.experiments import run_overhead_experiment
    from repro.experiments.observe import breakdown_rows, monitoring_seconds
    from repro.observability.ledger import CATEGORIES

    points = run_overhead_experiment(_observe_config(args))
    headers = ["node"]
    headers.extend("{} ms".format(c) for c in CATEGORIES if c != "idle")
    headers.append("monitoring %")
    for point in points:
        print(format_table(
            tuple(headers),
            breakdown_rows(point),
            title="{} (eviction {:.2f}s, syscall LPA {})".format(
                point.label, point.eviction_interval,
                "on" if point.syscall_stats else "off",
            ),
        ))
        print()
    if len(points) >= 2:
        low, high = points[0], points[-1]
        nodes = sorted(set(low.breakdown) & set(high.breakdown))
        grew = sum(
            1 for node in nodes
            if monitoring_seconds(high, node) > monitoring_seconds(low, node)
        )
        print("monitoring CPU grew with the sampling rate on {}/{} nodes "
              "(paper: perturbation scales with enabled probes)".format(
                  grew, len(nodes)))
    return 0


def _cmd_trace(args):
    import json

    from repro.experiments import run_trace_experiment
    from repro.observability import validate_chrome_trace

    doc, ledger = run_trace_experiment(_observe_config(args), path=args.out)
    count = validate_chrome_trace(doc)
    if args.out:
        print("wrote {} ({} events, {} nodes) — load in ui.perfetto.dev".format(
            args.out, count, len(ledger.nodes())))
    else:
        print(json.dumps(doc))
    return 0


def _cmd_profile(args):
    import json

    from repro.profiling import format_report, run_profile, write_chrome_trace

    report = run_profile(args.scenario, smoke=args.smoke, top=args.top)
    print(format_report(report))
    if args.trace:
        count = write_chrome_trace(report, args.trace)
        print("wrote {} ({} slices) — load in ui.perfetto.dev".format(
            args.trace, count))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
            fh.write("\n")
        print("wrote {}".format(args.json))
    return 0


def _cmd_serve(args):
    from repro.service import ServiceServer, Supervisor, stream

    if args.smoke:
        from repro.service.smoke import run_smoke

        return run_smoke(scenario=args.scenario)
    supervisor = Supervisor(args.scenario, slice_width=args.slice)
    server = None
    if args.port is not None:
        server = ServiceServer(supervisor, port=args.port).start()
        print("control socket listening on {}".format(server.address))
    try:
        stream(
            supervisor, refresh=args.refresh, duration=args.duration,
            clear=not args.no_clear,
        )
    except KeyboardInterrupt:
        pass
    finally:
        if server is not None:
            server.stop()
        supervisor.shutdown()
    print("served {} for {:.2f} simulated seconds ({} slices, "
          "{} controls applied)".format(
              supervisor.scenario.name, supervisor.now, supervisor.slices,
              supervisor.controls_applied))
    return 0


def _cmd_federation(args):
    from repro.experiments.federation import (
        BENCH_PATH,
        BENCH_SCHEMA,
        FederationConfig,
        partition_payload,
        record_trajectory,
        run_federation_sweep,
        run_partition_sweep,
        smoke_config,
        sweep_payload,
    )

    if args.partition:
        base = smoke_config(nodes=args.nodes or 16, zones=args.zones or 2)
        if not args.smoke:
            base.nodes = args.nodes or 64
            base.zones = args.zones or 0
        sweep = run_partition_sweep(base_config=base)
        print(format_table(
            ("scenario", "zone", "detect s", "return s", "gap s",
             "stale max/bound", "rows lost", "rep/esc/ret"),
            [point.row() for point in sweep["points"]],
            title="federation partition tolerance: reparent + retention",
        ))
        healthy = True
        for point in sweep["points"]:
            verdict = []
            if not point.staleness_bounded:
                verdict.append("member staleness exceeds the failover bound")
            if point.rows_lost:
                verdict.append("{} condensed rows lost".format(point.rows_lost))
            if verdict:
                healthy = False
                print("{}: FAIL — {}".format(point.scenario, "; ".join(verdict)))
            else:
                print("{}: staleness bounded by failover latency "
                      "({:.2f}s <= {:.2f}s), zero rows lost".format(
                          point.scenario, point.member_staleness_max_s,
                          point.member_staleness_bound_s))
        if not args.no_record:
            record_trajectory(
                BENCH_PATH, BENCH_SCHEMA,
                {"partition": partition_payload(sweep)},
            )
            print("appended trajectory entry to {}".format(BENCH_PATH))
        return 0 if healthy else 1

    if args.smoke:
        base = smoke_config(nodes=args.nodes or 16, zones=args.zones or 2)
        counts = (base.nodes,)
    else:
        base = FederationConfig(zones=args.zones)
        counts = (
            (args.nodes,) if args.nodes else (16, 64, 256)
        )
    sweep = run_federation_sweep(node_counts=counts, base_config=base)
    print(format_table(
        ("nodes", "mode", "zones", "root B/s", "root CPU share", "stale p95"),
        [point.row() for point in sweep["points"]],
        title="federation scaling: root load vs cluster size",
    ))
    fed = [p for p in sweep["points"] if p.federated]
    flat = [p for p in sweep["points"] if not p.federated]
    if len(fed) >= 2:
        node_growth = fed[-1].nodes / fed[0].nodes
        byte_growth = fed[-1].root_bytes_per_s / max(fed[0].root_bytes_per_s, 1e-9)
        print("\nfederated root ingress grew {:.1f}x across a {:.0f}x node "
              "increase ({})".format(
                  byte_growth, node_growth,
                  "sublinear" if byte_growth < node_growth else "NOT sublinear"))
    if flat and fed:
        print("at {} nodes, federation cuts root ingress {:.0f}x".format(
            flat[-1].nodes,
            flat[-1].root_bytes_per_s / max(fed[-1].root_bytes_per_s, 1e-9)))
    if not args.no_record:
        record_trajectory(BENCH_PATH, BENCH_SCHEMA, sweep_payload(sweep))
        print("appended trajectory entry to {}".format(BENCH_PATH))
    return 0


def _jobs(args):
    """Translate the --jobs flag: 1 = serial, 0 = one worker per CPU."""
    jobs = getattr(args, "jobs", 1)
    return None if jobs == 0 else jobs


def _add_jobs_flag(subparser):
    subparser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for independent sweep points "
             "(default 1 = serial, 0 = one per CPU)",
    )


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro", description="SysProf reproduction experiment runner"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list available experiments")

    micro = commands.add_parser("microbench", help="§3.1 microbenchmarks")
    micro.add_argument("--quick", action="store_true",
                       help="shorter runs (less precise)")
    micro.add_argument("--no-record", action="store_true",
                       help="skip appending to BENCH_microbench.json")
    _add_jobs_flag(micro)

    calibrate = commands.add_parser(
        "calibrate",
        help="sweep offered load against each modeled resource and check "
             "the knee-inferred geometry against the configured values",
    )
    calibrate.add_argument("--smoke", action="store_true",
                           help="coarser grids and shorter runs (CI-sized)")
    calibrate.add_argument("--seed", type=int, default=23)
    calibrate.add_argument("--resource", action="append", metavar="NAME",
                           help="restrict to one resource (repeatable); "
                                "partial runs skip the trajectory append")
    calibrate.add_argument("--no-record", action="store_true",
                           help="skip appending to BENCH_calibration.json")
    _add_jobs_flag(calibrate)

    nfs = commands.add_parser("nfs", help="Figures 4 & 5 (storage service)")
    nfs.add_argument("--threads", default="1,2,4,8,16",
                     help="comma-separated iozone threads per client")
    nfs.add_argument("--ops", type=int, default=20,
                     help="write ops per thread per pass")
    _add_jobs_flag(nfs)

    rubis = commands.add_parser("rubis", help="Figures 6 & 7 (RUBiS QoS)")
    rubis.add_argument("--scheduler", choices=("dwcs", "radwcs", "both"),
                       default="both")
    rubis.add_argument("--duration", type=float, default=20.0)
    _add_jobs_flag(rubis)

    failures = commands.add_parser(
        "failures", help="failure injection + detection latency"
    )
    failures.add_argument("--scenario",
                          choices=("daemon-crash", "partition", "both"),
                          default="both")
    failures.add_argument("--seed", type=int, default=9)
    failures.add_argument("--fault-start", type=float, default=6.0)
    failures.add_argument("--fault-duration", type=float, default=5.0)

    diagnose = commands.add_parser(
        "diagnose", help="online SLO diagnosis of an injected CPU hog"
    )
    diagnose.add_argument("--smoke", action="store_true",
                          help="tiny workload (CI-sized run)")
    diagnose.add_argument("--seed", type=int, default=None)

    overhead = commands.add_parser(
        "overhead", help="per-node CPU attribution breakdown"
    )
    overhead.add_argument("--smoke", action="store_true",
                          help="tiny workload (CI-sized run)")
    overhead.add_argument("--threads", type=int, default=None,
                          help="iozone threads per client")

    trace = commands.add_parser(
        "trace", help="export a Chrome trace-event JSON (Perfetto)"
    )
    trace.add_argument("--out", default="trace.json", metavar="PATH",
                       help="output path (default trace.json)")
    trace.add_argument("--smoke", action="store_true",
                       help="tiny workload (CI-sized run)")

    federation = commands.add_parser(
        "federation", help="federated aggregation tree: root load vs scale"
    )
    federation.add_argument("--nodes", type=int, default=None, metavar="N",
                            help="monitored node count (default: 16,64,256 sweep)")
    federation.add_argument("--zones", type=int, default=None, metavar="Z",
                            help="zone count (default: ~sqrt(nodes))")
    federation.add_argument("--smoke", action="store_true",
                            help="tiny 16-node/2-zone run (CI-sized)")
    federation.add_argument("--partition", action="store_true",
                            help="partition-tolerance sweep: cut a zone off "
                                 "from its parent tier and measure reparent "
                                 "latency, coverage gap, and rows lost")
    federation.add_argument("--no-record", action="store_true",
                            help="skip appending to BENCH_federation.json")

    from repro.profiling import SCENARIOS

    profile = commands.add_parser(
        "profile", help="self-profile the reproduction under cProfile"
    )
    profile.add_argument("scenario", choices=sorted(SCENARIOS),
                         help="workload to profile")
    profile.add_argument("--smoke", action="store_true",
                         help="tiny workload (CI-sized run)")
    profile.add_argument("--top", type=int, default=15, metavar="N",
                         help="hotspot table rows (default 15)")
    profile.add_argument("--trace", default=None, metavar="PATH",
                         help="also write a Chrome-trace JSON of the hotspots")
    profile.add_argument("--json", default=None, metavar="PATH",
                         help="also write the full report as JSON")

    from repro.service.scenarios import SCENARIOS as SERVE_SCENARIOS

    serve = commands.add_parser(
        "serve", help="live service mode: supervised scenario + dashboard"
    )
    serve.add_argument("scenario", nargs="?", default="nfs",
                       choices=sorted(SERVE_SCENARIOS),
                       help="scenario to supervise (default nfs)")
    serve.add_argument("--smoke", action="store_true",
                       help="scripted self-check over the live API (CI-sized)")
    serve.add_argument("--port", type=int, default=None, metavar="N",
                       help="serve the JSON control socket on 127.0.0.1:N "
                            "(0 = pick a free port; default: no socket)")
    serve.add_argument("--duration", type=float, default=None, metavar="S",
                       help="stop after S simulated seconds (default: run "
                            "until interrupted)")
    serve.add_argument("--refresh", type=float, default=1.0, metavar="S",
                       help="dashboard refresh period in simulated seconds")
    serve.add_argument("--slice", type=float, default=0.1, metavar="S",
                       help="simulated seconds per supervisor slice")
    serve.add_argument("--no-clear", action="store_true",
                       help="append frames instead of clearing the screen")

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = {
        "list": _cmd_list,
        "microbench": _cmd_microbench,
        "calibrate": _cmd_calibrate,
        "nfs": _cmd_nfs,
        "rubis": _cmd_rubis,
        "failures": _cmd_failures,
        "diagnose": _cmd_diagnose,
        "federation": _cmd_federation,
        "overhead": _cmd_overhead,
        "trace": _cmd_trace,
        "profile": _cmd_profile,
        "serve": _cmd_serve,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
