"""Composable per-tier aggregation components.

The original :class:`~repro.core.gpa.GlobalPerformanceAnalyzer` baked
ingest, sketch storage, clock correction, and queries into one class
that assumed it was the cluster's single global aggregation point.  The
federation tree (ROADMAP item 1) needs the same machinery at every
tier — rack-level zone GPAs and the root alike — so it lives here:

* :class:`TierStore` — the aggregation state for one tier: interaction
  history, class summaries, node-stats streams, the windowed
  :class:`~repro.observability.sketches.SketchStore`, and the
  clock-corrected query API over all of it.
* :class:`AnalyzerTier` — the server scaffold around a store: channel
  subscriptions, the listening task, frame/descriptor decode with
  simulated-CPU charges, kill/restart semantics with cumulative
  counters.

``GlobalPerformanceAnalyzer`` and ``ZoneGpa`` are thin subclasses.
"""

import bisect
from collections import deque

from repro.core import encoding
from repro.core.channels import SYSPROF_PORT_BASE
from repro.observability.sketches import SketchStore

#: Record formats a tier subscribes to (in channel-subscription order).
TIER_FORMATS = (
    "sysprof.interaction",
    "sysprof.class_summary",
    "sysprof.nodestats",
    "sysprof.cpa",
    "sysprof.syscalls",
    "sysprof.sketch",
)


class CausalPath:
    """A correlated end-to-end request: the upstream (client-facing)
    interaction plus the downstream interactions nested inside it."""

    __slots__ = ("upstream", "downstream")

    def __init__(self, upstream, downstream):
        self.upstream = upstream
        self.downstream = downstream

    @property
    def total_latency(self):
        return self.upstream["total_latency"]

    @property
    def downstream_latency(self):
        return sum(record["total_latency"] for record in self.downstream)

    @property
    def residual_latency(self):
        """Time not accounted to any downstream node: network + local work."""
        return self.total_latency - self.downstream_latency

    def breakdown(self):
        return {
            "upstream_node": self.upstream["node"],
            "total": self.total_latency,
            "upstream_user": self.upstream["user_time"],
            "upstream_kernel": self.upstream["kernel_time"],
            "downstream": [
                {
                    "node": record["node"],
                    "total": record["total_latency"],
                    "kernel": record["kernel_time"],
                    "user": record["user_time"],
                }
                for record in self.downstream
            ],
            "residual": self.residual_latency,
        }


class TierStore:
    """Aggregation state plus the query API for one analyzer tier."""

    def __init__(self, clock_table=None, history=50000):
        self.clock_table = clock_table
        self.interactions = deque(maxlen=history)
        self.class_summaries = deque(maxlen=history)
        self.cpa_metrics = deque(maxlen=history)
        self.syscall_summaries = deque(maxlen=history)
        self.node_stats = {}  # node -> deque of samples
        # Windowed quantile sketches merged from sysprof.sketch rows.
        self.sketches = SketchStore(clock_table=clock_table)
        # Optional DiagnosisEngine; attach() sets this and ingest() then
        # offers every batch to its SLO evaluation.
        self.diagnosis = None
        self.records_received = 0

    # -- ingest + time correction --------------------------------------

    def ingest(self, format_name, records):
        self.records_received += len(records)
        if format_name == "sysprof.interaction":
            for record in records:
                self._correct_times(record)
                self.interactions.append(record)
        elif format_name == "sysprof.class_summary":
            self.class_summaries.extend(records)
        elif format_name == "sysprof.nodestats":
            for record in records:
                history = self.node_stats.setdefault(record["node"], deque(maxlen=512))
                history.append(record)
        elif format_name == "sysprof.cpa":
            self.cpa_metrics.extend(records)
        elif format_name == "sysprof.syscalls":
            self.syscall_summaries.extend(records)
        elif format_name == "sysprof.sketch":
            for record in records:
                self.sketches.ingest(record)
        if self.diagnosis is not None:
            self.diagnosis.on_ingest(format_name, records)

    def _correct_times(self, record):
        """Annotate with reference-timescale start/end via the clock table."""
        node = record["node"]
        if self.clock_table is not None and self.clock_table.known(node):
            record["start_ref"] = self.clock_table.to_reference(node, record["start_ts"])
            record["end_ref"] = self.clock_table.to_reference(node, record["end_ts"])
        else:
            record["start_ref"] = record["start_ts"]
            record["end_ref"] = record["end_ts"]

    def forget_node(self, node):
        """Drop one node's stats stream (it moved to another tier or
        crashed); interaction/summary history ages out of the deques."""
        self.node_stats.pop(node, None)

    def clear(self):
        """Drop aggregation state (process death).  ``records_received``
        stays cumulative, standing in for the operator's long-lived view."""
        self.interactions.clear()
        self.class_summaries.clear()
        self.cpa_metrics.clear()
        self.syscall_summaries.clear()
        self.node_stats.clear()
        self.sketches.clear()

    # -- queries --------------------------------------------------------

    def query_interactions(self, node=None, request_class=None, since=None,
                           client_ip=None, server_ip=None):
        results = []
        for record in self.interactions:
            if node is not None and record["node"] != node:
                continue
            if request_class is not None and record["request_class"] != request_class:
                continue
            if since is not None and record["start_ref"] < since:
                continue
            if client_ip is not None and record["client_ip"] != client_ip:
                continue
            if server_ip is not None and record["server_ip"] != server_ip:
                continue
            results.append(record)
        return results

    def node_summary(self, node):
        """Aggregate interaction metrics observed at one node."""
        records = self.query_interactions(node=node)
        if not records:
            return {"node": node, "count": 0}
        count = len(records)
        return {
            "node": node,
            "count": count,
            "mean_total": sum(r["total_latency"] for r in records) / count,
            "mean_kernel_time": sum(r["kernel_time"] for r in records) / count,
            "mean_kernel_wait": sum(r["kernel_wait"] for r in records) / count,
            "mean_user_time": sum(r["user_time"] for r in records) / count,
            "mean_io_blocked": sum(r["io_blocked"] for r in records) / count,
        }

    def server_load(self, node):
        """Recent load of ``node`` from its nodestats stream.

        Returns CPU utilization over the last sampling window plus queue
        depths — the signal RA-DWCS uses to pick the lightly-loaded server.
        """
        history = self.node_stats.get(node)
        if not history or len(history) < 2:
            return None
        last, prev = history[-1], history[-2]
        span = last["ts"] - prev["ts"]
        if span <= 0:
            return None
        return {
            "node": node,
            "cpu_utilization": max(0.0, (last["cpu_busy"] - prev["cpu_busy"]) / span),
            "run_queue": last["run_queue"],
            "rx_backlog_bytes": last["rx_backlog_bytes"],
            "pending_interactions": last["pending_interactions"],
            "ts": last["ts"],
        }

    def stale_nodes(self, now_ref, threshold):
        """Failure suspicion: monitored nodes whose telemetry went quiet.

        "A typical problem in these environments is to detect failures
        and performance bottlenecks" (paper §3.2) — a node whose
        dissemination daemon has not published a nodestats sample within
        ``threshold`` of reference-time ``now_ref`` is suspected down
        (crashed node, wedged kernel, or partitioned network).  In a
        federation a "node" may be a zone pseudo-node (``zone:<name>``)
        whose forwarder went quiet.

        Returns ``{node: seconds_since_last_sample}``.
        """
        suspects = {}
        for node, history in self.node_stats.items():
            if not history:
                continue
            last_ts = history[-1]["ts"]
            if self.clock_table is not None and self.clock_table.known(node):
                last_ts = self.clock_table.to_reference(node, last_ts)
            age = now_ref - last_ts
            if age > threshold:
                suspects[node] = age
        return suspects

    def correlate_paths(self, upstream_node, downstream_nodes, slack=2e-3):
        """Build causal paths: downstream interactions nested (in corrected
        time) inside each upstream interaction.

        The upstream node is the one facing the original client (the NFS
        proxy, the web front-end); downstream nodes serve it.  ``slack``
        tolerates clock-correction error at the containment boundaries.
        """
        downstream_set = set(downstream_nodes)
        downstream = sorted(
            (record for record in self.interactions if record["node"] in downstream_set),
            key=lambda record: record["start_ref"],
        )
        starts = [record["start_ref"] for record in downstream]
        paths = []
        for upstream in self.interactions:
            if upstream["node"] != upstream_node:
                continue
            lo = bisect.bisect_left(starts, upstream["start_ref"] - slack)
            nested = []
            for record in downstream[lo:]:
                if record["start_ref"] > upstream["end_ref"] + slack:
                    break
                if record["end_ref"] <= upstream["end_ref"] + slack:
                    nested.append(record)
            paths.append(CausalPath(upstream, nested))
        return paths


class AnalyzerTier:
    """Server scaffold for one aggregation tier (root GPA or zone GPA).

    Owns the listening task, per-connection handlers, the streaming
    frame decoder, and kill/restart semantics; aggregation state and
    queries live in :attr:`store` (a :class:`TierStore`) and are
    re-exported as properties so existing callers — diagnosis, SLO
    rules, query execution, experiments — work against any tier.
    """

    task_name = "gpa"
    conn_task_name = "gpa-conn"
    #: Small per-record analysis cost charged at this tier.
    per_record_cost = 2e-6

    def __init__(self, node, hub, clock_table=None, port=SYSPROF_PORT_BASE,
                 history=50000, stale_threshold=1.0, channel_prefix="sysprof/"):
        self.node = node
        self.hub = hub
        self.port = port
        self.channel_prefix = channel_prefix
        # Default quiet-time before stale_nodes() suspects a node; also
        # the fallback threshold for staleness SLO rules.
        self.stale_threshold = stale_threshold
        self.store = TierStore(clock_table=clock_table, history=history)
        self.registry = encoding.FormatRegistry()
        # Streaming frame decoder: adopts descriptors as they arrive and
        # unpacks whole frames through the cached multi-record packers.
        self.frame_decoder = encoding.FrameDecoder(self.registry)
        # Frames decoded by decoders that died with past processes; keeps
        # the stats() "frames_received" counter cumulative across restarts
        # like every other ingest counter (it used to silently reset).
        self.frames_received_base = 0
        self.decode_errors = 0
        self.bytes_received = 0  # tier ingress: every blob off the wire
        self.queries_served = 0
        self._server_task = None
        self._conn_tasks = []
        self._conn_socks = []
        self.restarts = 0
        self._stopped = False

    # -- store delegation ----------------------------------------------

    @property
    def clock_table(self):
        return self.store.clock_table

    @property
    def interactions(self):
        return self.store.interactions

    @property
    def class_summaries(self):
        return self.store.class_summaries

    @property
    def cpa_metrics(self):
        return self.store.cpa_metrics

    @property
    def syscall_summaries(self):
        return self.store.syscall_summaries

    @property
    def node_stats(self):
        return self.store.node_stats

    @property
    def sketches(self):
        return self.store.sketches

    @property
    def records_received(self):
        return self.store.records_received

    @property
    def diagnosis(self):
        return self.store.diagnosis

    @diagnosis.setter
    def diagnosis(self, engine):
        self.store.diagnosis = engine

    def query_interactions(self, node=None, request_class=None, since=None,
                           client_ip=None, server_ip=None):
        return self.store.query_interactions(
            node=node, request_class=request_class, since=since,
            client_ip=client_ip, server_ip=server_ip,
        )

    def node_summary(self, node):
        return self.store.node_summary(node)

    def server_load(self, node):
        return self.store.server_load(node)

    def stale_nodes(self, now_ref, threshold=None):
        if threshold is None:
            threshold = self.stale_threshold
        return self.store.stale_nodes(now_ref, threshold)

    def correlate_paths(self, upstream_node, downstream_nodes, slack=2e-3):
        return self.store.correlate_paths(upstream_node, downstream_nodes,
                                          slack=slack)

    def release_member(self, node):
        """An adopted member returned to its own parent: stop tracking
        its node-stats stream so it cannot go ghost-stale here."""
        self.store.forget_node(node)

    # -- wiring ---------------------------------------------------------

    def channels(self):
        """The channels this tier subscribes to."""
        return [self.channel_prefix + fmt for fmt in TIER_FORMATS]

    def subscribe_all(self):
        """Subscribe this tier to its SysProf channels."""
        for channel in self.channels():
            self.hub.subscribe(channel, self.node.name, self.port)

    def start(self):
        if self._server_task is None:
            self._server_task = self.node.spawn(self.task_name, self._server)
            self._server_task.category = "analyzer"
            self._start_aux()
        return self._server_task

    def _start_aux(self):
        """Hook: subclasses spawn their auxiliary tasks (dumper, forwarder)."""

    def stop(self):
        self._stopped = True

    def kill(self, reason="fault-injection"):
        """Crash the tier process: server, auxiliary tasks, and every
        connection handler die; the listening port closes; established
        sockets reset so publishing daemons observe the failure instead
        of blocking on a dead peer's flow-control window."""
        for task in [self._server_task] + self._aux_tasks() + self._conn_tasks:
            if task is not None:
                task.kill(reason)
        self.node.kernel.close_listener(self.port)
        for sock in self._conn_socks:
            sock.reset()
        self._conn_tasks = []
        self._conn_socks = []
        self._server_task = None
        self._on_killed()

    def _aux_tasks(self):
        """Hook: auxiliary tasks to kill alongside the server."""
        return []

    def _on_killed(self):
        """Hook: subclass cleanup after a kill (clear aux task refs)."""

    def restart(self):
        """Respawn after :meth:`kill` as a fresh process would come up.

        Decoder state and in-memory history died with the old process —
        formats are re-learned from the descriptors daemons re-send on
        their fresh connections.  Ingest counters stay cumulative (they
        live on this object, standing in for the operator's long-lived
        view of the analyzer).
        """
        # Bank the dead decoder's frame count before discarding it, so
        # stats()["frames_received"] never moves backwards on restart.
        self.frames_received_base += self.frame_decoder.frames_decoded
        self.registry = encoding.FormatRegistry()
        self.frame_decoder = encoding.FrameDecoder(self.registry)
        self.store.clear()
        self.subscribe_all()  # idempotent; re-asserts hub registration
        self.restarts += 1
        return self.start()

    # -- server ---------------------------------------------------------

    def _server(self, ctx):
        lsock = yield from ctx.listen(self.port)
        while not self._stopped:
            sock = yield from ctx.accept(lsock)
            self._conn_socks.append(sock)
            conn_task = ctx.spawn(self.conn_task_name, self._handler, sock)
            conn_task.category = "analyzer"
            self._conn_tasks.append(conn_task)

    def _handler(self, ctx, sock):
        # Decode state is connection-scoped.  Every publisher numbers its
        # format descriptors independently (id 1 is whatever it registered
        # first), so two streams must never share an id table: a
        # reparented daemon's descriptors would clobber the ids a zone
        # uplink already claimed and every later frame on the *other*
        # stream would decode against the wrong schema.  The tier-level
        # ``frame_decoder`` stays as the cumulative counter aggregate.
        decoder = encoding.FrameDecoder()
        while True:
            message = yield from ctx.recv_message(sock)
            if message is None:
                break
            meta = message.meta or {}
            blob = meta.get("blob")
            if blob:
                self.bytes_received += len(blob)
            if message.kind == "sysprof-query":
                yield from self._answer_query(ctx, sock, meta)
            elif message.kind == "sysprof-fmt" and blob:
                decoder.feed_descriptor(blob)
            elif message.kind == "sysprof-frame" and blob:
                try:
                    fmt, rows = decoder.feed(blob)
                except (KeyError, ValueError):
                    self.decode_errors += 1
                    continue
                self.frame_decoder.frames_decoded += 1
                self.frame_decoder.records_decoded += len(rows)
                # Small per-record analysis cost at this tier.
                yield from ctx.compute(self.per_record_cost * len(rows))
                if fmt.name == "sysprof.sketch":
                    # Merging a serialized sketch into the store is a
                    # bucket-table walk, not a constant-time append.
                    yield from ctx.compute(
                        self.node.kernel.costs.sketch_merge * len(rows)
                    )
                self.ingest_rows(fmt, rows)
            elif message.kind == "sysprof-data" and blob:
                if meta.get("text"):
                    continue  # text ablation payloads are not decoded
                try:
                    fmt, records = encoding.decode_records(decoder.registry, blob)
                except (KeyError, ValueError):
                    self.decode_errors += 1
                    continue
                # Small per-record analysis cost at this tier.
                yield from ctx.compute(self.per_record_cost * len(records))
                if fmt.name == "sysprof.sketch":
                    # Same merge charge as the frame path, so both wire
                    # modes keep identical simulated CPU.
                    yield from ctx.compute(
                        self.node.kernel.costs.sketch_merge * len(records)
                    )
                self.ingest(fmt.name, records)

    def _answer_query(self, ctx, sock, meta):
        """Serve one remote query (paper: "Other nodes in the system can
        query the GPA").  Works at any tier — a zone GPA answers over its
        rack-local state."""
        from repro.core.query import GpaQueryError, execute_query

        try:
            result, size = execute_query(
                self, meta.get("kind"), meta.get("params")
            )
            # Small per-query analysis cost at the analyzer.
            yield from ctx.compute(5e-6)
            self.queries_served += 1
            yield from ctx.send_message(
                sock, size, kind="sysprof-result", meta={"result": result}
            )
        except (GpaQueryError, KeyError, TypeError, ValueError) as error:
            yield from ctx.send_message(
                sock, 96, kind="sysprof-result", meta={"error": str(error)}
            )

    # -- ingest ----------------------------------------------------------

    def ingest_rows(self, fmt, rows):
        """Frame-mode ingest: decoded row tuples become the stored record
        dicts directly (one ``zip`` per record — there is no intermediate
        per-record blob slice or throwaway dict between the wire and the
        query structures)."""
        names = fmt.names
        self.ingest(fmt.name, [dict(zip(names, row)) for row in rows])

    def ingest(self, format_name, records):
        self.store.ingest(format_name, records)
