"""Raw event capture and offline replay.

The paper positions SysProf against *offline* black-box analysis
(Aguilera et al. [2]): online in-kernel analysis trades some fidelity for
timeliness.  This module lets a deployment have both: an
:class:`EventLog` subscribes to raw Kprof events and records them (with
bounded memory or to a JSON-lines file), and :func:`replay` runs any
tracker/analyzer over a recorded stream afterwards — auditing, debugging
the analyzers themselves, or re-analyzing with different parameters
without re-running the system.
"""

import json
from collections import deque

from repro.core.events import MonEvent
from repro.core.interactions import InteractionTracker
from repro.ossim.tracepoints import ALL_EVENT_TYPES
from repro.ossim import tracepoints as tp


class EventLog:
    """Records raw monitoring events from one node's Kprof."""

    def __init__(self, kprof, etypes=None, capacity=100000, cost=0.05e-6,
                 predicate=None):
        self.kprof = kprof
        self.etypes = list(etypes) if etypes is not None else list(ALL_EVENT_TYPES)
        self.events = deque(maxlen=capacity)
        self.cost = cost
        self.predicate = predicate
        self.recorded = 0
        self._subscription = None

    def start(self):
        if self._subscription is None:
            self._subscription = self.kprof.subscribe(
                self.etypes, self._record, predicate=self.predicate,
                cost=self.cost, name="event-log",
            )
        return self

    def stop(self):
        if self._subscription is not None:
            self.kprof.unsubscribe(self._subscription)
            self._subscription = None

    def _record(self, event):
        self.recorded += 1
        self.events.append(event)

    def __len__(self):
        return len(self.events)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save(self, path):
        """Write the log as JSON lines (one event per line)."""
        with open(path, "w", encoding="utf-8") as out:
            for event in self.events:
                out.write(json.dumps({
                    "etype": event.etype,
                    "ts": event.ts,
                    "node": event.node,
                    "fields": event.fields,
                }) + "\n")
        return path

    @staticmethod
    def load(path):
        """Read a saved log back into a list of :class:`MonEvent`."""
        events = []
        with open(path, "r", encoding="utf-8") as dump:
            for line in dump:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                events.append(MonEvent(
                    record["etype"], record["ts"], record["node"],
                    record["fields"],
                ))
        return events


def replay_interactions(events, node_name, local_ip, idle_timeout=1.0):
    """Re-run the interaction extraction over a recorded event stream.

    Returns the list of :class:`~repro.core.interactions.InteractionRecord`
    the online LPA would have produced (minus task-accounting samples,
    which exist only at capture time — kernel_wait and timing metrics are
    reconstructed exactly).
    """
    emitted = []
    tracker = InteractionTracker(
        node_name, local_ip, emitted.append, idle_timeout=idle_timeout
    )
    for event in sorted(events, key=lambda e: e.ts):
        fields = event.fields
        if event.etype == tp.NET_RX_DRIVER:
            tracker.note_rx_start(
                (fields["src_ip"], fields["src_port"]),
                (fields["dst_ip"], fields["dst_port"]), event.ts,
            )
        elif event.etype == tp.SOCK_ENQUEUE or event.etype == tp.NET_TX_DRIVER:
            tracker.on_packet(
                (fields["src_ip"], fields["src_port"]),
                (fields["dst_ip"], fields["dst_port"]),
                event.ts, fields["size"],
                kind=fields.get("msg_kind"), pid=fields.get("sock_pid"),
            )
        elif event.etype == tp.SOCK_DELIVER:
            tracker.on_deliver(
                (fields["src_ip"], fields["src_port"]),
                (fields["dst_ip"], fields["dst_port"]), event.ts,
            )
    tracker.flush()
    # Fill the timing metrics the LPA derives from raw timestamps.
    for record in emitted:
        request = record.request
        first_rx = (
            request.first_rx_ts if request.first_rx_ts is not None
            else request.first_ts
        )
        if request.deliver_ts is not None:
            record.kernel_wait = max(0.0, request.deliver_ts - first_rx)
    return emitted
