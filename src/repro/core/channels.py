"""Kernel-level publish-subscribe channels.

The control plane (:class:`ChannelHub`) tracks which (node, port)
endpoints subscribe to which channel; the data plane is ordinary
simulated sockets owned by each node's dissemination daemon, so channel
traffic consumes real simulated CPU and bandwidth and is visible to (and
must be filtered out of) the monitoring itself — SysProf reserves a port
range for its own traffic for exactly that purpose.
"""

SYSPROF_PORT_BASE = 9100
SYSPROF_PORT_LIMIT = 9199


class ChannelHub:
    """Cluster-wide channel subscription registry (control plane only)."""

    def __init__(self):
        self._subscribers = {}  # channel -> [(node_name, port)]

    def subscribe(self, channel, node_name, port):
        if not (SYSPROF_PORT_BASE <= port <= SYSPROF_PORT_LIMIT):
            raise ValueError(
                "SysProf channel ports must be in [{}, {}]".format(
                    SYSPROF_PORT_BASE, SYSPROF_PORT_LIMIT
                )
            )
        entry = (node_name, port)
        subscribers = self._subscribers.setdefault(channel, [])
        if entry not in subscribers:
            subscribers.append(entry)

    def unsubscribe(self, channel, node_name, port):
        subscribers = self._subscribers.get(channel, [])
        entry = (node_name, port)
        if entry in subscribers:
            subscribers.remove(entry)

    def subscribers(self, channel):
        """Current subscriber endpoints for ``channel`` (may be empty)."""
        return list(self._subscribers.get(channel, ()))

    def channels(self):
        return sorted(self._subscribers)

    def __repr__(self):
        return "<ChannelHub {}>".format(
            {channel: len(subs) for channel, subs in self._subscribers.items()}
        )


def is_sysprof_port(port):
    """True when ``port`` belongs to SysProf's reserved dissemination range."""
    return SYSPROF_PORT_BASE <= port <= SYSPROF_PORT_LIMIT
