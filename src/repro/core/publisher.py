"""Channel publication machinery shared by daemons and zone GPAs.

:class:`ChannelPublisher` owns everything about getting an encoded blob
to a channel's subscribers: endpoint sockets, per-endpoint exponential
backoff with deterministic jitter, the socket-identity format-descriptor
handshake, and the publish counters.  It was extracted verbatim from
:class:`~repro.core.daemon.DisseminationDaemon` so that federation-tier
publishers (``ZoneGpa`` forwarding condensed frames upward) reuse the
exact reconnect/backoff semantics the failure-injection tests pin down.

The jitter RNG is a named substream created lazily and drawn ONLY on
failures, so fault-free runs never touch it (same-seed digests
unchanged).
"""

from repro.observability import tracer as _trace


class _EndpointBackoff:
    """Retry state for one unreachable subscriber endpoint."""

    __slots__ = ("failures", "next_attempt_at", "abandoned")

    def __init__(self):
        self.failures = 0
        self.next_attempt_at = 0.0
        self.abandoned = False


class ChannelPublisher:
    """Publishes encoded frames to every subscriber of a channel."""

    def __init__(self, node, hub, channel_prefix="sysprof/", rng_label=None,
                 reconnect_backoff_base=0.05, reconnect_backoff_cap=2.0,
                 reconnect_backoff_jitter=0.25, reconnect_max_retries=12,
                 pid_fn=None):
        self.node = node
        self.hub = hub
        self.channel_prefix = channel_prefix
        self.reconnect_backoff_base = reconnect_backoff_base
        self.reconnect_backoff_cap = reconnect_backoff_cap
        self.reconnect_backoff_jitter = reconnect_backoff_jitter
        self.reconnect_max_retries = reconnect_max_retries
        self._rng_label = rng_label or "sysprofd.backoff.{}".format(node.name)
        self._pid_fn = pid_fn  # task pid for trace events, when tracing
        # Optional ParentLink (federation reparenting): notified on every
        # send outcome and given a chance to probe/fail-over at the top
        # of each publish cycle.  None for flat installs.
        self.parent_link = None
        self._sockets = {}  # (node_name, port) -> socket
        # endpoint -> (socket, {format names sent on that socket}).  Keyed
        # by socket *identity*: a reconnected endpoint gets a fresh set,
        # so the new peer connection re-learns every format descriptor.
        self._formats_sent = {}
        self._backoff = {}  # endpoint -> _EndpointBackoff
        self._backoff_rng = None
        self._connected_before = set()  # endpoints that connected at least once
        self.bytes_published = 0
        self.publishes = 0
        self.frames_published = 0
        self.format_sends = 0
        self.send_errors = 0
        self.connect_attempts = 0
        self.reconnects = 0
        self.backoff_skips = 0
        self.endpoints_abandoned = 0

    # ------------------------------------------------------------------

    def reset_endpoint(self, endpoint):
        """Forget a subscriber's socket (peer restart / connection loss).

        The next publish reconnects; the socket-identity check in
        :meth:`ensure_format_sent` then re-sends every format descriptor
        on the fresh connection.  The per-endpoint format set is purged
        here too — a stale ``(dead socket, formats)`` tuple must not
        linger in ``_formats_sent``.
        """
        self._sockets.pop(endpoint, None)
        self._formats_sent.pop(endpoint, None)

    def revive_endpoint(self, endpoint):
        """Clear an endpoint's backoff/abandoned state (subscriber is back)."""
        self._backoff.pop(endpoint, None)

    def forget_all(self):
        """Process death: reset live sockets, drop all per-endpoint state.

        A fresh process has no memory of past failures: abandoned
        endpoints get a clean retry budget.  Counters stay cumulative.
        """
        for sock in self._sockets.values():
            if sock is not None:
                sock.reset()
        self._sockets.clear()
        self._formats_sent.clear()
        self._backoff.clear()

    # ------------------------------------------------------------------

    def publish(self, ctx, fmt, blob, kind, text=False):
        """Send ``blob`` to every subscriber of ``channel_prefix + fmt.name``.

        Returns the number of subscribers the blob actually reached, so
        callers with retained state (zone rollups) can tell a delivered
        window from a dropped one.
        """
        link = self.parent_link
        if link is not None:
            # Zero-yield on the healthy path: lease check + (only while
            # failed over) the paced return probe toward the primary.
            yield from link.check(ctx)
        start_prefix = self.channel_prefix
        channel = start_prefix + fmt.name
        delivered = 0
        for endpoint in self.hub.subscribers(channel):
            if self.channel_prefix != start_prefix:
                # The parent link reparented mid-publish; the remaining
                # endpoints belong to the abandoned parent's channel.
                break
            sock = yield from self._endpoint_socket(ctx, endpoint)
            if sock is None:
                continue
            try:
                if not text:
                    yield from self.ensure_format_sent(ctx, sock, endpoint, fmt)
                yield from ctx.send_message(
                    sock, len(blob), kind=kind,
                    meta={"blob": blob, "channel": channel, "text": text},
                )
            except Exception:
                # Peer gone mid-publish: drop the socket so a later
                # wakeup reconnects (and re-sends descriptors), but only
                # after the endpoint's backoff window passes.
                self.send_errors += 1
                self.reset_endpoint(endpoint)
                yield from ctx.kcompute(self.node.kernel.costs.daemon_reconnect)
                self.note_endpoint_failure(endpoint)
                continue
            delivered += 1
            if link is not None:
                link.note_success(ctx.now)
            self.bytes_published += len(blob)
            self.publishes += 1
            if kind == "sysprof-frame":
                self.frames_published += 1
            if _trace.enabled:
                _trace.active().publish(
                    self.node.kernel.name,
                    self._pid_fn() if self._pid_fn else 0,
                    channel, len(blob), kind, ctx.now,
                )
        return delivered

    def ensure_format_sent(self, ctx, sock, endpoint, fmt):
        sent = self._formats_sent.get(endpoint)
        if sent is None or sent[0] is not sock:
            # New or replaced connection: the peer's decoder state died
            # with the old socket, so start a fresh descriptor set.
            sent = (sock, set())
            self._formats_sent[endpoint] = sent
        if fmt.name in sent[1]:
            return
        descriptor = fmt.describe()
        yield from ctx.send_message(
            sock, len(descriptor), kind="sysprof-fmt", meta={"blob": descriptor},
        )
        sent[1].add(fmt.name)
        self.format_sends += 1

    def _endpoint_socket(self, ctx, endpoint):
        sock = self._sockets.get(endpoint)
        if sock is not None:
            return sock
        costs = self.node.kernel.costs
        state = self._backoff.get(endpoint)
        if state is not None:
            if state.abandoned:
                return None
            # Cheap clock probe: is this endpoint's window open yet?
            yield from ctx.kcompute(costs.daemon_backoff_probe)
            if ctx.now < state.next_attempt_at:
                self.backoff_skips += 1
                return None
        node_name, port = endpoint
        self.connect_attempts += 1
        try:
            sock = yield from ctx.connect(node_name, port)
        except Exception:
            yield from ctx.kcompute(costs.daemon_reconnect)
            self.note_endpoint_failure(endpoint)
            return None
        self._sockets[endpoint] = sock
        self._backoff.pop(endpoint, None)
        if endpoint in self._connected_before:
            self.reconnects += 1
        self._connected_before.add(endpoint)
        return sock

    def note_endpoint_failure(self, endpoint):
        """Advance an endpoint's backoff after a failed connect or send."""
        if self.parent_link is not None:
            self.parent_link.note_failure(self.node.sim.now)
        state = self._backoff.get(endpoint)
        if state is None:
            state = self._backoff[endpoint] = _EndpointBackoff()
        state.failures += 1
        if state.failures > self.reconnect_max_retries:
            if not state.abandoned:
                state.abandoned = True
                self.endpoints_abandoned += 1
            return state
        delay = min(
            self.reconnect_backoff_cap,
            self.reconnect_backoff_base * (2.0 ** (state.failures - 1)),
        )
        if self.reconnect_backoff_jitter:
            delay *= 1.0 + self.reconnect_backoff_jitter * self._jitter_rng().random()
        state.next_attempt_at = self.node.sim.now + delay
        return state

    def adopt_socket(self, endpoint, sock):
        """Install an externally-established connection (a parent-link
        return probe) as the live socket for ``endpoint``, with a clean
        backoff slate and a fresh format-descriptor set."""
        self.revive_endpoint(endpoint)
        self.reset_endpoint(endpoint)
        self._sockets[endpoint] = sock
        if endpoint in self._connected_before:
            self.reconnects += 1
        self._connected_before.add(endpoint)

    def _jitter_rng(self):
        """Lazy named substream — creating it only on the first failure
        keeps fault-free runs byte-identical to builds without it."""
        if self._backoff_rng is None:
            self._backoff_rng = self.node.cluster.streams.stream(self._rng_label)
        return self._backoff_rng

    # ------------------------------------------------------------------

    def stats(self):
        result = {
            "bytes_published": self.bytes_published,
            "publishes": self.publishes,
            "frames_published": self.frames_published,
            "format_sends": self.format_sends,
            "send_errors": self.send_errors,
            "connect_attempts": self.connect_attempts,
            "reconnects": self.reconnects,
            "backoff_skips": self.backoff_skips,
            "endpoints_abandoned": self.endpoints_abandoned,
        }
        if self.parent_link is not None:
            result["parent_link"] = self.parent_link.stats()
        return result
