"""The SysProf toolkit itself — the paper's contribution (§2): Kprof
in-kernel capture with per-CPU double buffering, local and custom
performance analyzers (LPA/CPA, the latter compiled at runtime from a
C subset), PBIO-style binary encoding, the kernel-level
publish-subscribe dissemination daemon, the global performance
analyzer (GPA) correlating per-node streams, and the controller that
retargets monitoring at runtime."""

from repro.core.arm import ArmTracker
from repro.core.buffers import DoubleBuffer, SingleBuffer
from repro.core.channels import ChannelHub, SYSPROF_PORT_BASE, is_sysprof_port
from repro.core.controller import Controller
from repro.core.cpa import CustomAnalyzer
from repro.core.daemon import DisseminationDaemon
from repro.core.ecode import ECodeError, ECodeProgram
from repro.core.encoding import (
    FormatRegistry,
    FrameDecoder,
    RecordView,
    decode_frame,
    decode_records,
    encode_frame,
    encode_records,
    encode_text,
)
from repro.core.events import MonEvent
from repro.core.federation import (
    FederationTree,
    ParentLink,
    ZoneGpa,
    ZoneSpec,
    zone_channel_prefix,
)
from repro.core.gpa import CausalPath, GlobalPerformanceAnalyzer
from repro.core.publisher import ChannelPublisher
from repro.core.tier import AnalyzerTier, TierStore
from repro.core.interactions import (
    InteractionRecord,
    InteractionTracker,
    MessageStats,
)
from repro.core.kprof import (
    Kprof,
    all_of,
    exclude_port_range,
    field_predicate,
    pid_predicate,
)
from repro.core.offline import EventLog, replay_interactions
from repro.core.query import GpaQueryClient, GpaQueryError, remote_query
from repro.core.lpa import (
    InteractionLPA,
    LocalPerformanceAnalyzer,
    NodeStatsLPA,
    SyscallLPA,
)
from repro.core.toolkit import NodeMonitor, SysProf, SysProfConfig

__all__ = [
    "AnalyzerTier",
    "ArmTracker",
    "CausalPath",
    "ChannelHub",
    "ChannelPublisher",
    "Controller",
    "CustomAnalyzer",
    "DisseminationDaemon",
    "FederationTree",
    "ParentLink",
    "DoubleBuffer",
    "ECodeError",
    "ECodeProgram",
    "EventLog",
    "FormatRegistry",
    "FrameDecoder",
    "RecordView",
    "GpaQueryClient",
    "GpaQueryError",
    "GlobalPerformanceAnalyzer",
    "InteractionLPA",
    "InteractionRecord",
    "InteractionTracker",
    "Kprof",
    "LocalPerformanceAnalyzer",
    "MessageStats",
    "MonEvent",
    "NodeMonitor",
    "NodeStatsLPA",
    "SYSPROF_PORT_BASE",
    "SingleBuffer",
    "SysProf",
    "SyscallLPA",
    "SysProfConfig",
    "TierStore",
    "ZoneGpa",
    "ZoneSpec",
    "all_of",
    "zone_channel_prefix",
    "decode_frame",
    "decode_records",
    "encode_frame",
    "encode_records",
    "encode_text",
    "exclude_port_range",
    "field_predicate",
    "is_sysprof_port",
    "pid_predicate",
    "remote_query",
    "replay_interactions",
]
