"""The SysProf controller: the runtime management interface.

"The SysProf controller regulates the granularity and the amounts of
information monitored and analyzed by SysProf.  It can instruct the LPAs
to collect statistics for some client class rather than for individual
interactions.  It can change the sizes of internal LPA buffers.  It
provides a management interface for SysProf."
"""

from repro.core.cpa import CustomAnalyzer


def classify_by_kind(record):
    """Default classifier: the request's message kind."""
    return record.request_class or "default"


def classify_by_client(record):
    """Group interactions per client IP (per-customer accounting —
    "information about total resources used in processing requests is
    very important for utility billing, auditing, enforcing SLAs")."""
    return "client:{}".format(record.client[0])


def classify_by_client_group(groups, default="other"):
    """Classifier mapping client IPs to named groups: {name: [ips...]}."""
    lookup = {}
    for name, ips in groups.items():
        for ip in ips:
            lookup[ip] = name

    def classify(record):
        return lookup.get(record.client[0], default)

    return classify


class Controller:
    """Management operations over an installed :class:`~repro.core.toolkit.SysProf`."""

    def __init__(self, toolkit):
        self.toolkit = toolkit
        self._drilled = {}  # node -> settings saved by drill_down()

    def _monitors(self, node=None):
        monitors = self.toolkit.monitors
        if node is None:
            return list(monitors.values())
        return [monitors[node]]

    # ------------------------------------------------------------------
    # granularity and sizing
    # ------------------------------------------------------------------

    def set_granularity(self, granularity, node=None):
        """'interaction' (per request/response record) or 'class' (aggregates)."""
        for monitor in self._monitors(node):
            if monitor.interaction_lpa is not None:
                monitor.interaction_lpa.set_granularity(granularity)

    def set_classifier(self, classify, node=None):
        """Install the client-class function used in 'class' granularity.

        ``classify(record) -> str`` over
        :class:`~repro.core.interactions.InteractionRecord`; see
        :func:`classify_by_client` and :func:`classify_by_kind` for
        ready-made classifiers ("collect statistics for some client
        class rather than for individual interactions").
        """
        for monitor in self._monitors(node):
            if monitor.interaction_lpa is not None:
                monitor.interaction_lpa.classify = classify

    def set_buffer_capacity(self, capacity, node=None):
        """Resize analyzer buffers (takes effect immediately; a smaller
        capacity flushes sooner, a larger one batches more per publish)."""
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        for monitor in self._monitors(node):
            for lpa in monitor.all_lpas():
                lpa.buffer.capacity = capacity

    def set_window_size(self, size, node=None):
        """Resize the LPA's sliding window of recent interactions."""
        from collections import deque

        for monitor in self._monitors(node):
            lpa = monitor.interaction_lpa
            if lpa is not None:
                lpa.window = deque(lpa.window, maxlen=size)

    def set_eviction_interval(self, interval, node=None):
        for monitor in self._monitors(node):
            monitor.daemon.eviction_interval = interval

    def set_forward_interval(self, interval, zone=None):
        """Retune how often zone GPAs forward condensed rollups upward.

        Applies to every federation zone, or just ``zone``.  The forward
        loop re-reads the interval before each sleep, so the change takes
        effect at its next wakeup without restarting the task.
        """
        if interval <= 0.0:
            raise ValueError("interval must be positive")
        federation = self.toolkit.federation
        if federation is None:
            raise ValueError("set_forward_interval needs a federated install")
        if zone is not None:
            zones = [self.toolkit.federation.zone(zone)]
        else:
            zones = list(federation.all_zones())
        for zone_gpa in zones:
            zone_gpa.forward_interval = interval

    # ------------------------------------------------------------------
    # closed-loop drill-down (the diagnosis engine's lever)
    # ------------------------------------------------------------------

    def drill_down(self, node, factor=4, granularity="interaction"):
        """Raise monitoring resolution on one implicated node.

        Divides the node's eviction interval by ``factor`` (more frequent
        samples and sketch windows) and forces per-interaction records so
        blame attribution has fine-grained data.  Returns the saved
        settings for :meth:`restore`; idempotent while already drilled.
        """
        if node in self._drilled:
            return self._drilled[node]
        monitor = self.toolkit.monitors[node]
        saved = {
            "eviction_interval": monitor.daemon.eviction_interval,
            "granularity": (
                monitor.interaction_lpa.granularity
                if monitor.interaction_lpa is not None else None
            ),
        }
        self._drilled[node] = saved
        self.set_eviction_interval(
            monitor.daemon.eviction_interval / factor, node=node
        )
        if granularity is not None and monitor.interaction_lpa is not None:
            self.set_granularity(granularity, node=node)
        return saved

    def restore(self, node):
        """Undo :meth:`drill_down`; no-op if the node is not drilled."""
        saved = self._drilled.pop(node, None)
        if saved is None:
            return False
        self.set_eviction_interval(saved["eviction_interval"], node=node)
        if saved["granularity"] is not None:
            self.set_granularity(saved["granularity"], node=node)
        return True

    def drilled_nodes(self):
        return sorted(self._drilled)

    # ------------------------------------------------------------------
    # event selection
    # ------------------------------------------------------------------

    def disable_events(self, etypes, node=None):
        """Mask event types/classes ("events can be selectively switched
        on and off depending on the requirement")."""
        for monitor in self._monitors(node):
            monitor.kprof.mask(etypes)

    def enable_events(self, etypes, node=None):
        for monitor in self._monitors(node):
            monitor.kprof.unmask(etypes)

    # ------------------------------------------------------------------
    # custom analyzers
    # ------------------------------------------------------------------

    def install_cpa(self, node, source, etypes, name, predicate=None, cost=None,
                    buffer_capacity=64):
        """Compile E-Code ``source`` and load it as a CPA on ``node``."""
        monitor = self.toolkit.monitors[node]
        if name in monitor.cpas:
            raise ValueError("CPA {!r} already installed on {}".format(name, node))
        cpa = CustomAnalyzer(
            monitor.kernel, monitor.kprof, source, etypes, name=name,
            predicate=predicate, cost=cost, buffer_capacity=buffer_capacity,
        )
        monitor.daemon.add_lpa(cpa)
        monitor.cpas[name] = cpa
        cpa.start()
        return cpa

    def uninstall_cpa(self, node, name):
        monitor = self.toolkit.monitors[node]
        cpa = monitor.cpas.pop(name)
        cpa.stop()
        return cpa

    # ------------------------------------------------------------------

    def status(self):
        """One status dict per monitored node."""
        report = {}
        for node, monitor in self.toolkit.monitors.items():
            report[node] = {
                "kprof": monitor.kprof.stats(),
                "daemon": monitor.daemon.stats(),
                "lpas": {lpa.name: lpa.stats() for lpa in monitor.all_lpas()},
            }
        return report
