"""The SysProf dissemination daemon.

One kernel-band task per monitored node.  "On receiving a 'buffer full'
notification from a LPA, the daemon wakes up and copies the LPA's data
into its own buffer ... it is the daemon's job to aggregate data
collected from different LPA buffers in order to send it to interested
parties.  For high performance and low overheads ... the daemon uses
dynamic data filters, PBIO-based binary encodings, and kernel-level
publish-subscribe channels."

The daemon also exports every analyzer's state through /proc (as the
earlier Dproc system did) and drives the periodic eviction timer that
flushes partially-filled buffers and samples node statistics.
"""

from repro.core import encoding
from repro.ossim.task import BAND_KERNEL
from repro.sim.resources import Store


class DisseminationDaemon:
    """Collects analyzer buffers, encodes records, publishes to channels."""

    def __init__(self, node, hub, registry=None, eviction_interval=0.25,
                 name="sysprofd", channel_prefix="sysprof/", data_filter=None,
                 text_encoding=False, affinity=None):
        self.node = node
        self.hub = hub
        self.registry = registry or encoding.FormatRegistry()
        self.eviction_interval = eviction_interval
        self.name = name
        self.channel_prefix = channel_prefix
        self.data_filter = data_filter  # optional record-level filter fn
        self.text_encoding = text_encoding  # ablation: ship repr() text
        self.affinity = affinity  # pin to a dedicated analysis core (SMP)
        self.lpas = []
        self._by_buffer = {}
        self._notifications = Store(node.sim)
        self._sockets = {}  # (node_name, port) -> socket
        self._formats_sent = set()  # (endpoint, format name)
        self.task = None
        self.records_published = 0
        self.records_filtered = 0
        self.bytes_published = 0
        self.publishes = 0
        self._stopped = False

    # ------------------------------------------------------------------

    def add_lpa(self, lpa):
        """Attach an analyzer: its buffer-full notifications come here."""
        self.lpas.append(lpa)
        self._by_buffer[id(lpa.buffer)] = lpa
        lpa.buffer.on_full = self._on_buffer_full
        fmt_name, fmt_fields = lpa.record_format
        if fmt_name not in self.registry:
            self.registry.register(fmt_name, fmt_fields)
        self.node.kernel.procfs.register(
            "/proc/sysprof/{}".format(lpa.name), lambda lpa=lpa: _render_lpa(lpa)
        )
        return lpa

    def _on_buffer_full(self, buffer, index):
        self._notifications.put((buffer, index))

    def start(self):
        if self.task is None:
            self.task = self.node.spawn(
                self.name, self._run, band=BAND_KERNEL, affinity=self.affinity
            )
            self.node.kernel.procfs.register(
                "/proc/sysprof/daemon", self._render_daemon
            )
        return self.task

    def stop(self):
        self._stopped = True

    # ------------------------------------------------------------------

    def _run(self, ctx):
        sim = ctx.sim
        # One persistent pending get() so no notification is ever consumed
        # by an abandoned waiter.
        pending = self._notifications.get()
        last_eviction = sim.now
        while not self._stopped:
            timer = sim.timeout(self.eviction_interval)
            yield from ctx.wait(sim.any_of([pending, timer]), reason="sysprofd-idle")
            if self._stopped:
                break
            if sim.now - last_eviction >= self.eviction_interval:
                # Timer-driven flush of partial buffers + node sampling,
                # guaranteed to run even under constant notification load.
                last_eviction = sim.now
                for lpa in self.lpas:
                    if hasattr(lpa, "sample"):
                        lpa.sample()
                    lpa.evict()
            batches = []
            while True:
                if pending.triggered:
                    batches.append(pending.value)
                    pending = self._notifications.get()
                    continue
                ok, item = self._notifications.try_get()
                if not ok:
                    break
                batches.append(item)
            for buffer, index in batches:
                lpa = self._by_buffer.get(id(buffer))
                if lpa is None:
                    continue
                records = buffer.drain(index)
                if not records:
                    continue
                yield from self._publish(ctx, lpa, records)
        return "stopped"

    def _publish(self, ctx, lpa, records):
        costs = self.node.kernel.costs
        # Copy records out of the per-CPU buffer.
        yield from ctx.kcompute(costs.record_copy * len(records))
        if self.data_filter is not None:
            kept = [r for r in records if self.data_filter(lpa.name, r)]
            self.records_filtered += len(records) - len(kept)
            records = kept
            if not records:
                return
        fmt_name, fmt_fields = lpa.record_format
        fmt = self.registry.register(fmt_name, fmt_fields)
        yield from ctx.kcompute(costs.record_encode * len(records))
        if self.text_encoding:
            blob = encoding.encode_text(records)
            # Text encoding is an order of magnitude costlier to produce.
            yield from ctx.kcompute(costs.record_encode * 9 * len(records))
        else:
            blob = encoding.encode_records(fmt, records)
        self.records_published += len(records)
        channel = self.channel_prefix + fmt_name
        for endpoint in self.hub.subscribers(channel):
            sock = yield from self._endpoint_socket(ctx, endpoint)
            if sock is None:
                continue
            if not self.text_encoding and (endpoint, fmt_name) not in self._formats_sent:
                descriptor = fmt.describe()
                yield from ctx.send_message(
                    sock, len(descriptor), kind="sysprof-fmt",
                    meta={"blob": descriptor},
                )
                self._formats_sent.add((endpoint, fmt_name))
            yield from ctx.send_message(
                sock, len(blob), kind="sysprof-data",
                meta={"blob": blob, "channel": channel, "text": self.text_encoding},
            )
            self.bytes_published += len(blob)
            self.publishes += 1

    def _endpoint_socket(self, ctx, endpoint):
        sock = self._sockets.get(endpoint)
        if sock is not None:
            return sock
        node_name, port = endpoint
        try:
            sock = yield from ctx.connect(node_name, port)
        except Exception:
            self._sockets[endpoint] = None
            return None
        self._sockets[endpoint] = sock
        return sock

    # ------------------------------------------------------------------

    def _render_daemon(self):
        lines = [
            "daemon={} node={}".format(self.name, self.node.name),
            "records_published={}".format(self.records_published),
            "records_filtered={}".format(self.records_filtered),
            "bytes_published={}".format(self.bytes_published),
            "publishes={}".format(self.publishes),
            "lpas={}".format(",".join(lpa.name for lpa in self.lpas)),
        ]
        return "\n".join(lines) + "\n"

    def stats(self):
        return {
            "records_published": self.records_published,
            "records_filtered": self.records_filtered,
            "bytes_published": self.bytes_published,
            "publishes": self.publishes,
        }


def _render_lpa(lpa):
    lines = ["lpa={}".format(lpa.name)]
    for key, value in sorted(lpa.stats().items()):
        lines.append("{}={}".format(key, value))
    if hasattr(lpa, "window_snapshot"):
        window = lpa.window_snapshot()
        lines.append("window_records={}".format(len(window)))
        for record in window[-5:]:
            lines.append(
                "interaction id={} class={} total={:.6f} kernel={:.6f} user={:.6f}".format(
                    record["interaction_id"],
                    record["request_class"],
                    record["total_latency"],
                    record["kernel_time"],
                    record["user_time"],
                )
            )
    return "\n".join(lines) + "\n"
