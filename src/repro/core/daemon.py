"""The SysProf dissemination daemon.

One kernel-band task per monitored node.  "On receiving a 'buffer full'
notification from a LPA, the daemon wakes up and copies the LPA's data
into its own buffer ... it is the daemon's job to aggregate data
collected from different LPA buffers in order to send it to interested
parties.  For high performance and low overheads ... the daemon uses
dynamic data filters, PBIO-based binary encodings, and kernel-level
publish-subscribe channels."

The daemon also exports every analyzer's state through /proc (as the
earlier Dproc system did) and drives the periodic eviction timer that
flushes partially-filled buffers and samples node statistics.

Two dissemination modes are runtime-selectable:

* **frame mode** (default): every wakeup coalesces all drained LPA
  buffers into one multi-record *frame* per channel, packed through the
  cached per-format packers (see :mod:`repro.core.encoding`).  The
  ``data_filter`` is pushed down to run right after each drain, so
  filtered records never pay any encode cost.
* **per-record mode** (``frame_mode=False``): the original path — one
  blob per drained buffer, one ``struct.pack`` per record.  Kept as the
  baseline the dissemination benchmark measures against.

Simulated CPU is charged identically in both modes at the default
calibration: ``record_copy`` per drained record, then
``frame_encode_base + record_encode * n`` per frame (the base defaults
to zero), so same-seed traces are bit-identical across modes.
"""

from repro.core import encoding
from repro.core.publisher import ChannelPublisher
from repro.observability import tracer as _trace
from repro.ossim.task import BAND_KERNEL
from repro.sim.resources import Store


class DisseminationDaemon:
    """Collects analyzer buffers, encodes records, publishes to channels."""

    def __init__(self, node, hub, registry=None, eviction_interval=0.25,
                 name="sysprofd", channel_prefix="sysprof/", data_filter=None,
                 text_encoding=False, affinity=None, frame_mode=True,
                 reconnect_backoff_base=0.05, reconnect_backoff_cap=2.0,
                 reconnect_backoff_jitter=0.25, reconnect_max_retries=12):
        self.node = node
        self.hub = hub
        self.registry = registry or encoding.FormatRegistry()
        self.eviction_interval = eviction_interval
        self.name = name
        self.data_filter = data_filter  # optional record-level filter fn
        self.text_encoding = text_encoding  # ablation: ship repr() text
        self.affinity = affinity  # pin to a dedicated analysis core (SMP)
        self.frame_mode = frame_mode  # batched frames vs per-record blobs
        self.lpas = []
        self._by_buffer = {}
        self._notifications = Store(node.sim)
        # Endpoint sockets, per-endpoint backoff, and format-descriptor
        # tracking all live in the publisher (shared with federation
        # tiers); the jitter RNG substream keeps its historical name so
        # same-seed fault traces are unchanged.
        self.publisher = ChannelPublisher(
            node, hub, channel_prefix=channel_prefix,
            rng_label="sysprofd.backoff.{}".format(node.name),
            reconnect_backoff_base=reconnect_backoff_base,
            reconnect_backoff_cap=reconnect_backoff_cap,
            reconnect_backoff_jitter=reconnect_backoff_jitter,
            reconnect_max_retries=reconnect_max_retries,
            pid_fn=lambda: self.task.pid if self.task else 0,
        )
        self._pending_get = None  # the _run loop's parked notification get()
        self.task = None
        self.records_published = 0
        self.records_filtered = 0
        self._stopped = False

    # -- publisher delegation (tests and /proc read these off the daemon) --

    @property
    def channel_prefix(self):
        return self.publisher.channel_prefix

    @channel_prefix.setter
    def channel_prefix(self, value):
        self.publisher.channel_prefix = value

    @property
    def _sockets(self):
        return self.publisher._sockets

    @property
    def _formats_sent(self):
        return self.publisher._formats_sent

    @property
    def _backoff(self):
        return self.publisher._backoff

    @property
    def bytes_published(self):
        return self.publisher.bytes_published

    @property
    def publishes(self):
        return self.publisher.publishes

    @property
    def frames_published(self):
        return self.publisher.frames_published

    @property
    def format_sends(self):
        return self.publisher.format_sends

    @property
    def send_errors(self):
        return self.publisher.send_errors

    @property
    def connect_attempts(self):
        return self.publisher.connect_attempts

    @property
    def reconnects(self):
        return self.publisher.reconnects

    @property
    def backoff_skips(self):
        return self.publisher.backoff_skips

    @property
    def endpoints_abandoned(self):
        return self.publisher.endpoints_abandoned

    @property
    def parent_link(self):
        """The reparent/return state machine, when federated (else None)."""
        return self.publisher.parent_link

    @property
    def reconnect_backoff_base(self):
        return self.publisher.reconnect_backoff_base

    @property
    def reconnect_backoff_cap(self):
        return self.publisher.reconnect_backoff_cap

    @property
    def reconnect_backoff_jitter(self):
        return self.publisher.reconnect_backoff_jitter

    @property
    def reconnect_max_retries(self):
        return self.publisher.reconnect_max_retries

    # ------------------------------------------------------------------

    def add_lpa(self, lpa):
        """Attach an analyzer: its buffer-full notifications come here."""
        self.lpas.append(lpa)
        self._by_buffer[id(lpa.buffer)] = lpa
        lpa.buffer.on_full = self._on_buffer_full
        fmt_name, fmt_fields = lpa.record_format
        if fmt_name not in self.registry:
            self.registry.register(fmt_name, fmt_fields)
        self.node.kernel.procfs.register(
            "/proc/sysprof/{}".format(lpa.name), lambda lpa=lpa: _render_lpa(lpa)
        )
        return lpa

    def _on_buffer_full(self, buffer, index):
        self._notifications.put((buffer, index))

    def start(self):
        if self.task is None:
            self.task = self.node.spawn(
                self.name, self._run, band=BAND_KERNEL, affinity=self.affinity
            )
            # Everything this task does — encode, copy, publish syscalls —
            # is dissemination work in the attribution ledger.
            self.task.category = "dissemination"
            if _trace.enabled:
                _trace.active().name_thread(
                    self.node.kernel.name, self.task.pid, self.name
                )
            self.node.kernel.procfs.register(
                "/proc/sysprof/daemon", self._render_daemon
            )
        return self.task

    def stop(self):
        self._stopped = True

    def kill(self, reason="fault-injection"):
        """Crash the daemon task in place (no cleanup path runs).

        Buffer-full notifications already queued survive for the
        restarted daemon, but the dead task's parked ``get()`` is
        withdrawn so it cannot swallow the next one.  Publish sockets die
        with the process — subscribers observe connection resets.
        Counters live on this object and stay cumulative across restarts.
        """
        if self.task is not None:
            self.task.kill(reason)
            self.task = None
        if self._pending_get is not None:
            self._notifications.cancel_get(self._pending_get)
            self._pending_get = None
        # A fresh process has no memory of past failures: abandoned
        # endpoints get a clean retry budget.
        self.publisher.forget_all()

    def restart(self):
        """Respawn the daemon task after :meth:`kill`."""
        return self.start()

    def reset_endpoint(self, endpoint):
        """Forget a subscriber's socket (peer restart / connection loss).

        The next publish reconnects; the socket-identity check in the
        publisher then re-sends every format descriptor on the fresh
        connection.  The per-endpoint format set is purged here too —
        before, the stale ``(dead socket, formats)`` tuple lingered in
        ``_formats_sent`` forever, growing by one entry per subscriber
        restart.
        """
        self.publisher.reset_endpoint(endpoint)

    def revive_endpoint(self, endpoint):
        """Clear an endpoint's backoff/abandoned state (subscriber is back)."""
        self.publisher.revive_endpoint(endpoint)

    # ------------------------------------------------------------------

    def _run(self, ctx):
        sim = ctx.sim
        # One persistent pending get() so no notification is ever consumed
        # by an abandoned waiter.  Tracked on self so kill() can withdraw
        # it — otherwise the dead task's waiter would eat the next item.
        pending = self._pending_get = self._notifications.get()
        last_eviction = sim.now
        while not self._stopped:
            timer = sim.timeout(self.eviction_interval)
            yield from ctx.wait(sim.any_of([pending, timer]), reason="sysprofd-idle")
            if self._stopped:
                break
            if sim.now - last_eviction >= self.eviction_interval:
                # Timer-driven flush of partial buffers + node sampling,
                # guaranteed to run even under constant notification load.
                last_eviction = sim.now
                for lpa in self.lpas:
                    if hasattr(lpa, "sample"):
                        lpa.sample()
                    lpa.evict()
            batches = []
            while True:
                if pending.triggered:
                    batches.append(pending.value)
                    pending = self._pending_get = self._notifications.get()
                    continue
                ok, item = self._notifications.try_get()
                if not ok:
                    break
                batches.append(item)
            if not batches:
                continue
            if self.frame_mode:
                yield from self._publish_frames(ctx, batches)
            else:
                for buffer, index in batches:
                    lpa = self._by_buffer.get(id(buffer))
                    if lpa is None:
                        continue
                    records = buffer.drain(index)
                    if not records:
                        continue
                    yield from self._publish(ctx, lpa, records)
        self._notifications.cancel_get(pending)
        self._pending_get = None
        return "stopped"

    # ------------------------------------------------------------------
    # filtering (pushed down ahead of any encode cost)
    # ------------------------------------------------------------------

    def _apply_filter(self, lpa, fmt, records):
        """Run ``data_filter`` before encoding: dropped records never pay
        ``record_encode``.  Row records are exposed through a reusable
        dict-like :class:`~repro.core.encoding.RecordView`."""
        data_filter = self.data_filter
        if data_filter is None:
            return records
        view = encoding.RecordView(fmt)
        kept = []
        append = kept.append
        for record in records:
            probe = record if isinstance(record, dict) else view.bind(record)
            if data_filter(lpa.name, probe):
                append(record)
        self.records_filtered += len(records) - len(kept)
        return kept

    # ------------------------------------------------------------------
    # frame mode: coalesce all drains into one frame per channel
    # ------------------------------------------------------------------

    def _publish_frames(self, ctx, batches):
        costs = self.node.kernel.costs
        groups = {}  # fmt_name -> (fmt, [records])
        order = []
        for buffer, index in batches:
            lpa = self._by_buffer.get(id(buffer))
            if lpa is None:
                continue
            fmt_name, fmt_fields = lpa.record_format
            group = groups.get(fmt_name)
            if group is None:
                fmt = self.registry.register(fmt_name, fmt_fields)
                group = groups[fmt_name] = (fmt, [])
                order.append(fmt_name)
            fmt, coalesced = group
            if self.data_filter is None:
                drained = buffer.drain_into(index, coalesced)
            else:
                records = buffer.drain(index)
                drained = len(records)
                coalesced.extend(self._apply_filter(lpa, fmt, records))
            if drained:
                # Copy records out of the per-CPU buffer (same physical
                # cost as the per-record path charges).
                yield from ctx.kcompute(costs.record_copy * drained)
        for fmt_name in order:
            fmt, records = groups[fmt_name]
            if not records:
                continue
            count = len(records)
            yield from ctx.kcompute(
                costs.frame_encode_base + costs.record_encode * count
            )
            if self.text_encoding:
                blob = encoding.encode_text(records, fmt)
                # Text rendering costs an extra multiple per record.
                yield from ctx.kcompute(
                    costs.record_encode * costs.text_encode_multiplier * count
                )
                yield from self._send(ctx, fmt, blob, "sysprof-data", text=True)
            else:
                blob = encoding.encode_frame(fmt, records)
                yield from self._send(ctx, fmt, blob, "sysprof-frame")
            self.records_published += count

    # ------------------------------------------------------------------
    # per-record mode (baseline, runtime-selectable)
    # ------------------------------------------------------------------

    def _publish(self, ctx, lpa, records):
        costs = self.node.kernel.costs
        # Copy records out of the per-CPU buffer.
        yield from ctx.kcompute(costs.record_copy * len(records))
        fmt_name, fmt_fields = lpa.record_format
        fmt = self.registry.register(fmt_name, fmt_fields)
        records = self._apply_filter(lpa, fmt, records)
        if not records:
            return
        yield from ctx.kcompute(costs.record_encode * len(records))
        if self.text_encoding:
            blob = encoding.encode_text(records, fmt)
            # Text encoding is an order of magnitude costlier to produce.
            yield from ctx.kcompute(
                costs.record_encode * costs.text_encode_multiplier * len(records)
            )
            yield from self._send(ctx, fmt, blob, "sysprof-data", text=True)
        else:
            blob = encoding.encode_records(fmt, records)
            yield from self._send(ctx, fmt, blob, "sysprof-data")
        self.records_published += len(records)

    # ------------------------------------------------------------------
    # channel publication
    # ------------------------------------------------------------------

    def _send(self, ctx, fmt, blob, kind, text=False):
        yield from self.publisher.publish(ctx, fmt, blob, kind, text=text)

    # ------------------------------------------------------------------

    def _render_daemon(self):
        lines = [
            "daemon={} node={}".format(self.name, self.node.name),
            "mode={}".format("frame" if self.frame_mode else "per-record"),
            "records_published={}".format(self.records_published),
            "records_filtered={}".format(self.records_filtered),
            "bytes_published={}".format(self.bytes_published),
            "publishes={}".format(self.publishes),
            "frames_published={}".format(self.frames_published),
            "format_sends={}".format(self.format_sends),
            "send_errors={}".format(self.send_errors),
            "connect_attempts={}".format(self.connect_attempts),
            "reconnects={}".format(self.reconnects),
            "backoff_skips={}".format(self.backoff_skips),
            "endpoints_abandoned={}".format(self.endpoints_abandoned),
            "lpas={}".format(",".join(lpa.name for lpa in self.lpas)),
        ]
        return "\n".join(lines) + "\n"

    def stats(self):
        result = {
            "records_published": self.records_published,
            "records_filtered": self.records_filtered,
            "bytes_published": self.bytes_published,
            "publishes": self.publishes,
            "frames_published": self.frames_published,
            "format_sends": self.format_sends,
            "send_errors": self.send_errors,
            "connect_attempts": self.connect_attempts,
            "reconnects": self.reconnects,
            "backoff_skips": self.backoff_skips,
            "endpoints_abandoned": self.endpoints_abandoned,
            # Gauge: the controller's drill-down lever moves this at
            # runtime, and the diagnosis experiment asserts it is raised
            # then restored.
            "eviction_interval": self.eviction_interval,
        }
        if self.publisher.parent_link is not None:
            # Reparent events surface per node as
            # sysprof.daemon.<node>.parent_link.* metrics.
            result["parent_link"] = self.publisher.parent_link.stats()
        return result


def _render_lpa(lpa):
    lines = ["lpa={}".format(lpa.name)]
    for key, value in sorted(lpa.stats().items()):
        lines.append("{}={}".format(key, value))
    if hasattr(lpa, "window_snapshot"):
        window = lpa.window_snapshot()
        lines.append("window_records={}".format(len(window)))
        for record in window[-5:]:
            lines.append(
                "interaction id={} class={} total={:.6f} kernel={:.6f} user={:.6f}".format(
                    record["interaction_id"],
                    record["request_class"],
                    record["total_latency"],
                    record["kernel_time"],
                    record["user_time"],
                )
            )
    return "\n".join(lines) + "\n"
