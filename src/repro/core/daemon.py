"""The SysProf dissemination daemon.

One kernel-band task per monitored node.  "On receiving a 'buffer full'
notification from a LPA, the daemon wakes up and copies the LPA's data
into its own buffer ... it is the daemon's job to aggregate data
collected from different LPA buffers in order to send it to interested
parties.  For high performance and low overheads ... the daemon uses
dynamic data filters, PBIO-based binary encodings, and kernel-level
publish-subscribe channels."

The daemon also exports every analyzer's state through /proc (as the
earlier Dproc system did) and drives the periodic eviction timer that
flushes partially-filled buffers and samples node statistics.

Two dissemination modes are runtime-selectable:

* **frame mode** (default): every wakeup coalesces all drained LPA
  buffers into one multi-record *frame* per channel, packed through the
  cached per-format packers (see :mod:`repro.core.encoding`).  The
  ``data_filter`` is pushed down to run right after each drain, so
  filtered records never pay any encode cost.
* **per-record mode** (``frame_mode=False``): the original path — one
  blob per drained buffer, one ``struct.pack`` per record.  Kept as the
  baseline the dissemination benchmark measures against.

Simulated CPU is charged identically in both modes at the default
calibration: ``record_copy`` per drained record, then
``frame_encode_base + record_encode * n`` per frame (the base defaults
to zero), so same-seed traces are bit-identical across modes.
"""

from repro.core import encoding
from repro.ossim.task import BAND_KERNEL
from repro.sim.resources import Store


class DisseminationDaemon:
    """Collects analyzer buffers, encodes records, publishes to channels."""

    def __init__(self, node, hub, registry=None, eviction_interval=0.25,
                 name="sysprofd", channel_prefix="sysprof/", data_filter=None,
                 text_encoding=False, affinity=None, frame_mode=True):
        self.node = node
        self.hub = hub
        self.registry = registry or encoding.FormatRegistry()
        self.eviction_interval = eviction_interval
        self.name = name
        self.channel_prefix = channel_prefix
        self.data_filter = data_filter  # optional record-level filter fn
        self.text_encoding = text_encoding  # ablation: ship repr() text
        self.affinity = affinity  # pin to a dedicated analysis core (SMP)
        self.frame_mode = frame_mode  # batched frames vs per-record blobs
        self.lpas = []
        self._by_buffer = {}
        self._notifications = Store(node.sim)
        self._sockets = {}  # (node_name, port) -> socket
        # endpoint -> (socket, {format names sent on that socket}).  Keyed
        # by socket *identity*: a reconnected endpoint gets a fresh set,
        # so the new peer connection re-learns every format descriptor.
        self._formats_sent = {}
        self.task = None
        self.records_published = 0
        self.records_filtered = 0
        self.bytes_published = 0
        self.publishes = 0
        self.frames_published = 0
        self.format_sends = 0
        self.send_errors = 0
        self._stopped = False

    # ------------------------------------------------------------------

    def add_lpa(self, lpa):
        """Attach an analyzer: its buffer-full notifications come here."""
        self.lpas.append(lpa)
        self._by_buffer[id(lpa.buffer)] = lpa
        lpa.buffer.on_full = self._on_buffer_full
        fmt_name, fmt_fields = lpa.record_format
        if fmt_name not in self.registry:
            self.registry.register(fmt_name, fmt_fields)
        self.node.kernel.procfs.register(
            "/proc/sysprof/{}".format(lpa.name), lambda lpa=lpa: _render_lpa(lpa)
        )
        return lpa

    def _on_buffer_full(self, buffer, index):
        self._notifications.put((buffer, index))

    def start(self):
        if self.task is None:
            self.task = self.node.spawn(
                self.name, self._run, band=BAND_KERNEL, affinity=self.affinity
            )
            self.node.kernel.procfs.register(
                "/proc/sysprof/daemon", self._render_daemon
            )
        return self.task

    def stop(self):
        self._stopped = True

    def reset_endpoint(self, endpoint):
        """Forget a subscriber's socket (peer restart / connection loss).

        The next publish reconnects; the socket-identity check in
        :meth:`_ensure_format_sent` then re-sends every format descriptor
        on the fresh connection.
        """
        self._sockets.pop(endpoint, None)

    # ------------------------------------------------------------------

    def _run(self, ctx):
        sim = ctx.sim
        # One persistent pending get() so no notification is ever consumed
        # by an abandoned waiter.
        pending = self._notifications.get()
        last_eviction = sim.now
        while not self._stopped:
            timer = sim.timeout(self.eviction_interval)
            yield from ctx.wait(sim.any_of([pending, timer]), reason="sysprofd-idle")
            if self._stopped:
                break
            if sim.now - last_eviction >= self.eviction_interval:
                # Timer-driven flush of partial buffers + node sampling,
                # guaranteed to run even under constant notification load.
                last_eviction = sim.now
                for lpa in self.lpas:
                    if hasattr(lpa, "sample"):
                        lpa.sample()
                    lpa.evict()
            batches = []
            while True:
                if pending.triggered:
                    batches.append(pending.value)
                    pending = self._notifications.get()
                    continue
                ok, item = self._notifications.try_get()
                if not ok:
                    break
                batches.append(item)
            if not batches:
                continue
            if self.frame_mode:
                yield from self._publish_frames(ctx, batches)
            else:
                for buffer, index in batches:
                    lpa = self._by_buffer.get(id(buffer))
                    if lpa is None:
                        continue
                    records = buffer.drain(index)
                    if not records:
                        continue
                    yield from self._publish(ctx, lpa, records)
        return "stopped"

    # ------------------------------------------------------------------
    # filtering (pushed down ahead of any encode cost)
    # ------------------------------------------------------------------

    def _apply_filter(self, lpa, fmt, records):
        """Run ``data_filter`` before encoding: dropped records never pay
        ``record_encode``.  Row records are exposed through a reusable
        dict-like :class:`~repro.core.encoding.RecordView`."""
        data_filter = self.data_filter
        if data_filter is None:
            return records
        view = encoding.RecordView(fmt)
        kept = []
        append = kept.append
        for record in records:
            probe = record if isinstance(record, dict) else view.bind(record)
            if data_filter(lpa.name, probe):
                append(record)
        self.records_filtered += len(records) - len(kept)
        return kept

    # ------------------------------------------------------------------
    # frame mode: coalesce all drains into one frame per channel
    # ------------------------------------------------------------------

    def _publish_frames(self, ctx, batches):
        costs = self.node.kernel.costs
        groups = {}  # fmt_name -> (fmt, [records])
        order = []
        for buffer, index in batches:
            lpa = self._by_buffer.get(id(buffer))
            if lpa is None:
                continue
            fmt_name, fmt_fields = lpa.record_format
            group = groups.get(fmt_name)
            if group is None:
                fmt = self.registry.register(fmt_name, fmt_fields)
                group = groups[fmt_name] = (fmt, [])
                order.append(fmt_name)
            fmt, coalesced = group
            if self.data_filter is None:
                drained = buffer.drain_into(index, coalesced)
            else:
                records = buffer.drain(index)
                drained = len(records)
                coalesced.extend(self._apply_filter(lpa, fmt, records))
            if drained:
                # Copy records out of the per-CPU buffer (same physical
                # cost as the per-record path charges).
                yield from ctx.kcompute(costs.record_copy * drained)
        for fmt_name in order:
            fmt, records = groups[fmt_name]
            if not records:
                continue
            count = len(records)
            yield from ctx.kcompute(
                costs.frame_encode_base + costs.record_encode * count
            )
            if self.text_encoding:
                blob = encoding.encode_text(records, fmt)
                # Text rendering costs an extra multiple per record.
                yield from ctx.kcompute(
                    costs.record_encode * costs.text_encode_multiplier * count
                )
                yield from self._send(ctx, fmt, blob, "sysprof-data", text=True)
            else:
                blob = encoding.encode_frame(fmt, records)
                yield from self._send(ctx, fmt, blob, "sysprof-frame")
            self.records_published += count

    # ------------------------------------------------------------------
    # per-record mode (baseline, runtime-selectable)
    # ------------------------------------------------------------------

    def _publish(self, ctx, lpa, records):
        costs = self.node.kernel.costs
        # Copy records out of the per-CPU buffer.
        yield from ctx.kcompute(costs.record_copy * len(records))
        fmt_name, fmt_fields = lpa.record_format
        fmt = self.registry.register(fmt_name, fmt_fields)
        records = self._apply_filter(lpa, fmt, records)
        if not records:
            return
        yield from ctx.kcompute(costs.record_encode * len(records))
        if self.text_encoding:
            blob = encoding.encode_text(records, fmt)
            # Text encoding is an order of magnitude costlier to produce.
            yield from ctx.kcompute(
                costs.record_encode * costs.text_encode_multiplier * len(records)
            )
            yield from self._send(ctx, fmt, blob, "sysprof-data", text=True)
        else:
            blob = encoding.encode_records(fmt, records)
            yield from self._send(ctx, fmt, blob, "sysprof-data")
        self.records_published += len(records)

    # ------------------------------------------------------------------
    # channel publication
    # ------------------------------------------------------------------

    def _send(self, ctx, fmt, blob, kind, text=False):
        channel = self.channel_prefix + fmt.name
        for endpoint in self.hub.subscribers(channel):
            sock = yield from self._endpoint_socket(ctx, endpoint)
            if sock is None:
                continue
            try:
                if not text:
                    yield from self._ensure_format_sent(ctx, sock, endpoint, fmt)
                yield from ctx.send_message(
                    sock, len(blob), kind=kind,
                    meta={"blob": blob, "channel": channel, "text": text},
                )
            except Exception:
                # Peer gone mid-publish: drop the socket so the next
                # wakeup reconnects (and re-sends descriptors).
                self.send_errors += 1
                self.reset_endpoint(endpoint)
                continue
            self.bytes_published += len(blob)
            self.publishes += 1
            if kind == "sysprof-frame":
                self.frames_published += 1

    def _ensure_format_sent(self, ctx, sock, endpoint, fmt):
        sent = self._formats_sent.get(endpoint)
        if sent is None or sent[0] is not sock:
            # New or replaced connection: the peer's decoder state died
            # with the old socket, so start a fresh descriptor set.
            sent = (sock, set())
            self._formats_sent[endpoint] = sent
        if fmt.name in sent[1]:
            return
        descriptor = fmt.describe()
        yield from ctx.send_message(
            sock, len(descriptor), kind="sysprof-fmt", meta={"blob": descriptor},
        )
        sent[1].add(fmt.name)
        self.format_sends += 1

    def _endpoint_socket(self, ctx, endpoint):
        sock = self._sockets.get(endpoint)
        if sock is not None:
            return sock
        node_name, port = endpoint
        try:
            sock = yield from ctx.connect(node_name, port)
        except Exception:
            self._sockets[endpoint] = None
            return None
        self._sockets[endpoint] = sock
        return sock

    # ------------------------------------------------------------------

    def _render_daemon(self):
        lines = [
            "daemon={} node={}".format(self.name, self.node.name),
            "mode={}".format("frame" if self.frame_mode else "per-record"),
            "records_published={}".format(self.records_published),
            "records_filtered={}".format(self.records_filtered),
            "bytes_published={}".format(self.bytes_published),
            "publishes={}".format(self.publishes),
            "frames_published={}".format(self.frames_published),
            "format_sends={}".format(self.format_sends),
            "lpas={}".format(",".join(lpa.name for lpa in self.lpas)),
        ]
        return "\n".join(lines) + "\n"

    def stats(self):
        return {
            "records_published": self.records_published,
            "records_filtered": self.records_filtered,
            "bytes_published": self.bytes_published,
            "publishes": self.publishes,
            "frames_published": self.frames_published,
            "format_sends": self.format_sends,
            "send_errors": self.send_errors,
        }


def _render_lpa(lpa):
    lines = ["lpa={}".format(lpa.name)]
    for key, value in sorted(lpa.stats().items()):
        lines.append("{}={}".format(key, value))
    if hasattr(lpa, "window_snapshot"):
        window = lpa.window_snapshot()
        lines.append("window_records={}".format(len(window)))
        for record in window[-5:]:
            lines.append(
                "interaction id={} class={} total={:.6f} kernel={:.6f} user={:.6f}".format(
                    record["interaction_id"],
                    record["request_class"],
                    record["total_latency"],
                    record["kernel_time"],
                    record["user_time"],
                )
            )
    return "\n".join(lines) + "\n"
