"""The SysProf dissemination daemon.

One kernel-band task per monitored node.  "On receiving a 'buffer full'
notification from a LPA, the daemon wakes up and copies the LPA's data
into its own buffer ... it is the daemon's job to aggregate data
collected from different LPA buffers in order to send it to interested
parties.  For high performance and low overheads ... the daemon uses
dynamic data filters, PBIO-based binary encodings, and kernel-level
publish-subscribe channels."

The daemon also exports every analyzer's state through /proc (as the
earlier Dproc system did) and drives the periodic eviction timer that
flushes partially-filled buffers and samples node statistics.

Two dissemination modes are runtime-selectable:

* **frame mode** (default): every wakeup coalesces all drained LPA
  buffers into one multi-record *frame* per channel, packed through the
  cached per-format packers (see :mod:`repro.core.encoding`).  The
  ``data_filter`` is pushed down to run right after each drain, so
  filtered records never pay any encode cost.
* **per-record mode** (``frame_mode=False``): the original path — one
  blob per drained buffer, one ``struct.pack`` per record.  Kept as the
  baseline the dissemination benchmark measures against.

Simulated CPU is charged identically in both modes at the default
calibration: ``record_copy`` per drained record, then
``frame_encode_base + record_encode * n`` per frame (the base defaults
to zero), so same-seed traces are bit-identical across modes.
"""

from repro.core import encoding
from repro.observability import tracer as _trace
from repro.ossim.task import BAND_KERNEL
from repro.sim.resources import Store


class _EndpointBackoff:
    """Retry state for one unreachable subscriber endpoint."""

    __slots__ = ("failures", "next_attempt_at", "abandoned")

    def __init__(self):
        self.failures = 0
        self.next_attempt_at = 0.0
        self.abandoned = False


class DisseminationDaemon:
    """Collects analyzer buffers, encodes records, publishes to channels."""

    def __init__(self, node, hub, registry=None, eviction_interval=0.25,
                 name="sysprofd", channel_prefix="sysprof/", data_filter=None,
                 text_encoding=False, affinity=None, frame_mode=True,
                 reconnect_backoff_base=0.05, reconnect_backoff_cap=2.0,
                 reconnect_backoff_jitter=0.25, reconnect_max_retries=12):
        self.node = node
        self.hub = hub
        self.registry = registry or encoding.FormatRegistry()
        self.eviction_interval = eviction_interval
        self.name = name
        self.channel_prefix = channel_prefix
        self.data_filter = data_filter  # optional record-level filter fn
        self.text_encoding = text_encoding  # ablation: ship repr() text
        self.affinity = affinity  # pin to a dedicated analysis core (SMP)
        self.frame_mode = frame_mode  # batched frames vs per-record blobs
        self.lpas = []
        self._by_buffer = {}
        self._notifications = Store(node.sim)
        self._sockets = {}  # (node_name, port) -> socket
        # endpoint -> (socket, {format names sent on that socket}).  Keyed
        # by socket *identity*: a reconnected endpoint gets a fresh set,
        # so the new peer connection re-learns every format descriptor.
        self._formats_sent = {}
        # Per-endpoint reconnect pacing: exponential backoff with
        # deterministic jitter and a retry budget.  The jitter RNG is a
        # named substream created lazily and drawn ONLY on failures, so
        # fault-free runs never touch it (same-seed digests unchanged).
        self.reconnect_backoff_base = reconnect_backoff_base
        self.reconnect_backoff_cap = reconnect_backoff_cap
        self.reconnect_backoff_jitter = reconnect_backoff_jitter
        self.reconnect_max_retries = reconnect_max_retries
        self._backoff = {}  # endpoint -> _EndpointBackoff
        self._backoff_rng = None
        self._connected_before = set()  # endpoints that connected at least once
        self._pending_get = None  # the _run loop's parked notification get()
        self.task = None
        self.records_published = 0
        self.records_filtered = 0
        self.bytes_published = 0
        self.publishes = 0
        self.frames_published = 0
        self.format_sends = 0
        self.send_errors = 0
        self.connect_attempts = 0
        self.reconnects = 0
        self.backoff_skips = 0
        self.endpoints_abandoned = 0
        self._stopped = False

    # ------------------------------------------------------------------

    def add_lpa(self, lpa):
        """Attach an analyzer: its buffer-full notifications come here."""
        self.lpas.append(lpa)
        self._by_buffer[id(lpa.buffer)] = lpa
        lpa.buffer.on_full = self._on_buffer_full
        fmt_name, fmt_fields = lpa.record_format
        if fmt_name not in self.registry:
            self.registry.register(fmt_name, fmt_fields)
        self.node.kernel.procfs.register(
            "/proc/sysprof/{}".format(lpa.name), lambda lpa=lpa: _render_lpa(lpa)
        )
        return lpa

    def _on_buffer_full(self, buffer, index):
        self._notifications.put((buffer, index))

    def start(self):
        if self.task is None:
            self.task = self.node.spawn(
                self.name, self._run, band=BAND_KERNEL, affinity=self.affinity
            )
            # Everything this task does — encode, copy, publish syscalls —
            # is dissemination work in the attribution ledger.
            self.task.category = "dissemination"
            if _trace.enabled:
                _trace.active().name_thread(
                    self.node.kernel.name, self.task.pid, self.name
                )
            self.node.kernel.procfs.register(
                "/proc/sysprof/daemon", self._render_daemon
            )
        return self.task

    def stop(self):
        self._stopped = True

    def kill(self, reason="fault-injection"):
        """Crash the daemon task in place (no cleanup path runs).

        Buffer-full notifications already queued survive for the
        restarted daemon, but the dead task's parked ``get()`` is
        withdrawn so it cannot swallow the next one.  Publish sockets die
        with the process — subscribers observe connection resets.
        Counters live on this object and stay cumulative across restarts.
        """
        if self.task is not None:
            self.task.kill(reason)
            self.task = None
        if self._pending_get is not None:
            self._notifications.cancel_get(self._pending_get)
            self._pending_get = None
        for sock in self._sockets.values():
            if sock is not None:
                sock.reset()
        self._sockets.clear()
        self._formats_sent.clear()
        # A fresh process has no memory of past failures: abandoned
        # endpoints get a clean retry budget.
        self._backoff.clear()

    def restart(self):
        """Respawn the daemon task after :meth:`kill`."""
        return self.start()

    def reset_endpoint(self, endpoint):
        """Forget a subscriber's socket (peer restart / connection loss).

        The next publish reconnects; the socket-identity check in
        :meth:`_ensure_format_sent` then re-sends every format descriptor
        on the fresh connection.  The per-endpoint format set is purged
        here too — before, the stale ``(dead socket, formats)`` tuple
        lingered in ``_formats_sent`` forever, growing by one entry per
        subscriber restart.
        """
        self._sockets.pop(endpoint, None)
        self._formats_sent.pop(endpoint, None)

    def revive_endpoint(self, endpoint):
        """Clear an endpoint's backoff/abandoned state (subscriber is back)."""
        self._backoff.pop(endpoint, None)

    # ------------------------------------------------------------------

    def _run(self, ctx):
        sim = ctx.sim
        # One persistent pending get() so no notification is ever consumed
        # by an abandoned waiter.  Tracked on self so kill() can withdraw
        # it — otherwise the dead task's waiter would eat the next item.
        pending = self._pending_get = self._notifications.get()
        last_eviction = sim.now
        while not self._stopped:
            timer = sim.timeout(self.eviction_interval)
            yield from ctx.wait(sim.any_of([pending, timer]), reason="sysprofd-idle")
            if self._stopped:
                break
            if sim.now - last_eviction >= self.eviction_interval:
                # Timer-driven flush of partial buffers + node sampling,
                # guaranteed to run even under constant notification load.
                last_eviction = sim.now
                for lpa in self.lpas:
                    if hasattr(lpa, "sample"):
                        lpa.sample()
                    lpa.evict()
            batches = []
            while True:
                if pending.triggered:
                    batches.append(pending.value)
                    pending = self._pending_get = self._notifications.get()
                    continue
                ok, item = self._notifications.try_get()
                if not ok:
                    break
                batches.append(item)
            if not batches:
                continue
            if self.frame_mode:
                yield from self._publish_frames(ctx, batches)
            else:
                for buffer, index in batches:
                    lpa = self._by_buffer.get(id(buffer))
                    if lpa is None:
                        continue
                    records = buffer.drain(index)
                    if not records:
                        continue
                    yield from self._publish(ctx, lpa, records)
        self._notifications.cancel_get(pending)
        self._pending_get = None
        return "stopped"

    # ------------------------------------------------------------------
    # filtering (pushed down ahead of any encode cost)
    # ------------------------------------------------------------------

    def _apply_filter(self, lpa, fmt, records):
        """Run ``data_filter`` before encoding: dropped records never pay
        ``record_encode``.  Row records are exposed through a reusable
        dict-like :class:`~repro.core.encoding.RecordView`."""
        data_filter = self.data_filter
        if data_filter is None:
            return records
        view = encoding.RecordView(fmt)
        kept = []
        append = kept.append
        for record in records:
            probe = record if isinstance(record, dict) else view.bind(record)
            if data_filter(lpa.name, probe):
                append(record)
        self.records_filtered += len(records) - len(kept)
        return kept

    # ------------------------------------------------------------------
    # frame mode: coalesce all drains into one frame per channel
    # ------------------------------------------------------------------

    def _publish_frames(self, ctx, batches):
        costs = self.node.kernel.costs
        groups = {}  # fmt_name -> (fmt, [records])
        order = []
        for buffer, index in batches:
            lpa = self._by_buffer.get(id(buffer))
            if lpa is None:
                continue
            fmt_name, fmt_fields = lpa.record_format
            group = groups.get(fmt_name)
            if group is None:
                fmt = self.registry.register(fmt_name, fmt_fields)
                group = groups[fmt_name] = (fmt, [])
                order.append(fmt_name)
            fmt, coalesced = group
            if self.data_filter is None:
                drained = buffer.drain_into(index, coalesced)
            else:
                records = buffer.drain(index)
                drained = len(records)
                coalesced.extend(self._apply_filter(lpa, fmt, records))
            if drained:
                # Copy records out of the per-CPU buffer (same physical
                # cost as the per-record path charges).
                yield from ctx.kcompute(costs.record_copy * drained)
        for fmt_name in order:
            fmt, records = groups[fmt_name]
            if not records:
                continue
            count = len(records)
            yield from ctx.kcompute(
                costs.frame_encode_base + costs.record_encode * count
            )
            if self.text_encoding:
                blob = encoding.encode_text(records, fmt)
                # Text rendering costs an extra multiple per record.
                yield from ctx.kcompute(
                    costs.record_encode * costs.text_encode_multiplier * count
                )
                yield from self._send(ctx, fmt, blob, "sysprof-data", text=True)
            else:
                blob = encoding.encode_frame(fmt, records)
                yield from self._send(ctx, fmt, blob, "sysprof-frame")
            self.records_published += count

    # ------------------------------------------------------------------
    # per-record mode (baseline, runtime-selectable)
    # ------------------------------------------------------------------

    def _publish(self, ctx, lpa, records):
        costs = self.node.kernel.costs
        # Copy records out of the per-CPU buffer.
        yield from ctx.kcompute(costs.record_copy * len(records))
        fmt_name, fmt_fields = lpa.record_format
        fmt = self.registry.register(fmt_name, fmt_fields)
        records = self._apply_filter(lpa, fmt, records)
        if not records:
            return
        yield from ctx.kcompute(costs.record_encode * len(records))
        if self.text_encoding:
            blob = encoding.encode_text(records, fmt)
            # Text encoding is an order of magnitude costlier to produce.
            yield from ctx.kcompute(
                costs.record_encode * costs.text_encode_multiplier * len(records)
            )
            yield from self._send(ctx, fmt, blob, "sysprof-data", text=True)
        else:
            blob = encoding.encode_records(fmt, records)
            yield from self._send(ctx, fmt, blob, "sysprof-data")
        self.records_published += len(records)

    # ------------------------------------------------------------------
    # channel publication
    # ------------------------------------------------------------------

    def _send(self, ctx, fmt, blob, kind, text=False):
        channel = self.channel_prefix + fmt.name
        for endpoint in self.hub.subscribers(channel):
            sock = yield from self._endpoint_socket(ctx, endpoint)
            if sock is None:
                continue
            try:
                if not text:
                    yield from self._ensure_format_sent(ctx, sock, endpoint, fmt)
                yield from ctx.send_message(
                    sock, len(blob), kind=kind,
                    meta={"blob": blob, "channel": channel, "text": text},
                )
            except Exception:
                # Peer gone mid-publish: drop the socket so a later
                # wakeup reconnects (and re-sends descriptors), but only
                # after the endpoint's backoff window passes.
                self.send_errors += 1
                self.reset_endpoint(endpoint)
                yield from ctx.kcompute(self.node.kernel.costs.daemon_reconnect)
                self._note_endpoint_failure(endpoint)
                continue
            self.bytes_published += len(blob)
            self.publishes += 1
            if kind == "sysprof-frame":
                self.frames_published += 1
            if _trace.enabled:
                _trace.active().publish(
                    self.node.kernel.name, self.task.pid if self.task else 0,
                    channel, len(blob), kind, ctx.now,
                )

    def _ensure_format_sent(self, ctx, sock, endpoint, fmt):
        sent = self._formats_sent.get(endpoint)
        if sent is None or sent[0] is not sock:
            # New or replaced connection: the peer's decoder state died
            # with the old socket, so start a fresh descriptor set.
            sent = (sock, set())
            self._formats_sent[endpoint] = sent
        if fmt.name in sent[1]:
            return
        descriptor = fmt.describe()
        yield from ctx.send_message(
            sock, len(descriptor), kind="sysprof-fmt", meta={"blob": descriptor},
        )
        sent[1].add(fmt.name)
        self.format_sends += 1

    def _endpoint_socket(self, ctx, endpoint):
        sock = self._sockets.get(endpoint)
        if sock is not None:
            return sock
        costs = self.node.kernel.costs
        state = self._backoff.get(endpoint)
        if state is not None:
            if state.abandoned:
                return None
            # Cheap clock probe: is this endpoint's window open yet?
            yield from ctx.kcompute(costs.daemon_backoff_probe)
            if ctx.now < state.next_attempt_at:
                self.backoff_skips += 1
                return None
        node_name, port = endpoint
        self.connect_attempts += 1
        try:
            sock = yield from ctx.connect(node_name, port)
        except Exception:
            yield from ctx.kcompute(costs.daemon_reconnect)
            self._note_endpoint_failure(endpoint)
            return None
        self._sockets[endpoint] = sock
        self._backoff.pop(endpoint, None)
        if endpoint in self._connected_before:
            self.reconnects += 1
        self._connected_before.add(endpoint)
        return sock

    def _note_endpoint_failure(self, endpoint):
        """Advance an endpoint's backoff after a failed connect or send."""
        state = self._backoff.get(endpoint)
        if state is None:
            state = self._backoff[endpoint] = _EndpointBackoff()
        state.failures += 1
        if state.failures > self.reconnect_max_retries:
            if not state.abandoned:
                state.abandoned = True
                self.endpoints_abandoned += 1
            return state
        delay = min(
            self.reconnect_backoff_cap,
            self.reconnect_backoff_base * (2.0 ** (state.failures - 1)),
        )
        if self.reconnect_backoff_jitter:
            delay *= 1.0 + self.reconnect_backoff_jitter * self._jitter_rng().random()
        state.next_attempt_at = self.node.sim.now + delay
        return state

    def _jitter_rng(self):
        """Lazy named substream — creating it only on the first failure
        keeps fault-free runs byte-identical to builds without it."""
        if self._backoff_rng is None:
            self._backoff_rng = self.node.cluster.streams.stream(
                "sysprofd.backoff.{}".format(self.node.name)
            )
        return self._backoff_rng

    # ------------------------------------------------------------------

    def _render_daemon(self):
        lines = [
            "daemon={} node={}".format(self.name, self.node.name),
            "mode={}".format("frame" if self.frame_mode else "per-record"),
            "records_published={}".format(self.records_published),
            "records_filtered={}".format(self.records_filtered),
            "bytes_published={}".format(self.bytes_published),
            "publishes={}".format(self.publishes),
            "frames_published={}".format(self.frames_published),
            "format_sends={}".format(self.format_sends),
            "send_errors={}".format(self.send_errors),
            "connect_attempts={}".format(self.connect_attempts),
            "reconnects={}".format(self.reconnects),
            "backoff_skips={}".format(self.backoff_skips),
            "endpoints_abandoned={}".format(self.endpoints_abandoned),
            "lpas={}".format(",".join(lpa.name for lpa in self.lpas)),
        ]
        return "\n".join(lines) + "\n"

    def stats(self):
        return {
            "records_published": self.records_published,
            "records_filtered": self.records_filtered,
            "bytes_published": self.bytes_published,
            "publishes": self.publishes,
            "frames_published": self.frames_published,
            "format_sends": self.format_sends,
            "send_errors": self.send_errors,
            "connect_attempts": self.connect_attempts,
            "reconnects": self.reconnects,
            "backoff_skips": self.backoff_skips,
            "endpoints_abandoned": self.endpoints_abandoned,
            # Gauge: the controller's drill-down lever moves this at
            # runtime, and the diagnosis experiment asserts it is raised
            # then restored.
            "eviction_interval": self.eviction_interval,
        }


def _render_lpa(lpa):
    lines = ["lpa={}".format(lpa.name)]
    for key, value in sorted(lpa.stats().items()):
        lines.append("{}={}".format(key, value))
    if hasattr(lpa, "window_snapshot"):
        window = lpa.window_snapshot()
        lines.append("window_records={}".format(len(window)))
        for record in window[-5:]:
            lines.append(
                "interaction id={} class={} total={:.6f} kernel={:.6f} user={:.6f}".format(
                    record["interaction_id"],
                    record["request_class"],
                    record["total_latency"],
                    record["kernel_time"],
                    record["user_time"],
                )
            )
    return "\n".join(lines) + "\n"
