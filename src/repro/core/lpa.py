"""Local Performance Analyzers.

An LPA registers callbacks with Kprof for the event types it needs,
"filters, aggregates, and correlates raw monitoring data" in the kernel
fast path, and stores condensed records into per-CPU double buffers for
the dissemination daemon.  Callbacks never block and are computationally
small; their CPU cost is charged by the kernel at the firing site.

Buffered records are **preordered rows**: tuples whose values follow the
LPA's registered record format field-for-field.  The daemon packs a row
with a flat iteration — no per-record dict construction or field-name
lookups on the dissemination hot path.  (Dict records still encode; rows
are the fast path, not a requirement.)

:class:`InteractionLPA` is the analyzer the paper describes in detail:
it reconstructs request/response interactions from packet direction
flips (see :mod:`repro.core.interactions`) and attaches per-interaction
resource metrics — receive-buffer residency, user/kernel CPU time,
blocked time, context switches, disk operations — obtained by sampling
task accounting at message boundaries.
"""

from collections import deque

from repro.core.buffers import DoubleBuffer
from repro.core.interactions import InteractionTracker, pending_interactions
from repro.observability import tracer as _trace
from repro.observability.sketches import (
    QuantileSketch,
    SKETCH_METRICS,
    SKETCH_PAYLOAD_WIDTH,
)
from repro.ossim.task import BAND_IRQ, BAND_KERNEL
from repro.ossim import tracepoints as tp
from repro.sim.stats import RunningStat

# Format (name, fields) for per-interaction records on the wire.
INTERACTION_FORMAT = (
    "sysprof.interaction",
    (
        ("interaction_id", "u32"),
        ("node", "str16"),
        ("client_ip", "str16"),
        ("client_port", "u16"),
        ("server_ip", "str16"),
        ("server_port", "u16"),
        ("start_ts", "f64"),
        ("end_ts", "f64"),
        ("req_packets", "u32"),
        ("req_bytes", "i64"),
        ("resp_packets", "u32"),
        ("resp_bytes", "i64"),
        ("kernel_wait", "f64"),
        ("kernel_cpu", "f64"),
        ("kernel_time", "f64"),
        ("user_time", "f64"),
        ("io_blocked", "f64"),
        ("ctx_switches", "u32"),
        ("disk_ops", "u32"),
        ("server_pid", "u32"),
        ("server_name", "str16"),
        ("request_class", "str16"),
        ("total_latency", "f64"),
    ),
)

# Aggregated per-class summaries (the controller's coarse granularity).
CLASS_SUMMARY_FORMAT = (
    "sysprof.class_summary",
    (
        ("node", "str16"),
        ("request_class", "str24"),
        ("window_start", "f64"),
        ("window_end", "f64"),
        ("count", "u32"),
        ("mean_latency", "f64"),
        ("mean_kernel_time", "f64"),
        ("mean_user_time", "f64"),
        ("mean_kernel_wait", "f64"),
        ("total_bytes", "i64"),
    ),
)

# Node resource snapshots for resource-aware consumers (RA-DWCS).
NODE_STATS_FORMAT = (
    "sysprof.nodestats",
    (
        ("node", "str16"),
        ("ts", "f64"),
        ("cpu_busy", "f64"),
        ("cpu_user", "f64"),
        ("cpu_kernel", "f64"),
        ("run_queue", "u32"),
        ("ctx_switches", "i64"),
        ("rx_backlog_bytes", "i64"),
        ("pending_interactions", "u32"),
    ),
)


# Serialized quantile sketches: one row per (request class, metric) per
# eviction window, fixed width regardless of request rate.  The bucket
# table travels as a run-length string (see repro.core.encoding
# pack_count_runs); base_index anchors the first run.
SKETCH_FORMAT = (
    "sysprof.sketch",
    (
        ("node", "str16"),
        ("request_class", "str24"),
        ("metric", "str8"),
        ("window_start", "f64"),
        ("window_end", "f64"),
        ("count", "i64"),
        ("zero_count", "i64"),
        ("min_value", "f64"),
        ("max_value", "f64"),
        ("sum_value", "f64"),
        ("alpha", "f64"),
        ("base_index", "i64"),
        ("buckets", "str{}".format(SKETCH_PAYLOAD_WIDTH)),
    ),
)


class LocalPerformanceAnalyzer:
    """Base class: subscription lifecycle + buffered record emission."""

    record_format = INTERACTION_FORMAT

    def __init__(self, kernel, kprof, name, buffer_capacity=256, on_buffer_full=None):
        self.kernel = kernel
        self.kprof = kprof
        self.name = name
        self.buffer = DoubleBuffer(
            kernel, buffer_capacity, on_full=on_buffer_full, name=name
        )
        self._subscriptions = []
        self.started = False

    def start(self):
        if self.started:
            return self
        self._subscribe()
        self.started = True
        return self

    def stop(self):
        for sub in self._subscriptions:
            self.kprof.unsubscribe(sub)
        self._subscriptions.clear()
        self.started = False

    def _subscribe(self):
        raise NotImplementedError

    def _add_subscription(self, etypes, callback, predicate=None, cost=None):
        sub = self.kprof.subscribe(
            etypes, callback, predicate=predicate, cost=cost, name=self.name
        )
        self._subscriptions.append(sub)
        return sub

    def evict(self):
        """Periodic eviction: flush the active buffer to the daemon."""
        return self.buffer.switch(force=True)

    def stats(self):
        return {"name": self.name, "buffer": self.buffer.stats()}


class InteractionLPA(LocalPerformanceAnalyzer):
    """The request/response interaction analyzer (paper §2).

    ``granularity`` is ``"interaction"`` (one record each) or ``"class"``
    (aggregate statistics per request class, the controller's
    "statistics for some client class rather than individual
    interactions" mode).  ``classify`` maps an
    :class:`~repro.core.interactions.InteractionRecord` to a class name;
    the default uses the request's message kind.
    """

    def __init__(
        self,
        kernel,
        kprof,
        name="interaction-lpa",
        buffer_capacity=256,
        window_size=128,
        predicate=None,
        classify=None,
        granularity="interaction",
        on_buffer_full=None,
        idle_timeout=1.0,
        arm=False,
    ):
        super().__init__(
            kernel, kprof, name,
            buffer_capacity=buffer_capacity, on_buffer_full=on_buffer_full,
        )
        self.predicate = predicate
        self.classify = classify or (lambda record: record.request_class or "default")
        self.granularity = granularity
        self.window = deque(maxlen=window_size)
        self.arm = arm
        if arm:
            # ARM-token pairing with a direction-flip fallback for
            # untagged traffic (paper: interleaved requests need
            # "domain-specific knowledge and/or ARM support").
            from repro.core.arm import ArmTracker

            fallback = InteractionTracker(
                kernel.name, self._local_ip(), self._on_interaction,
                idle_timeout=idle_timeout,
            )
            self.tracker = ArmTracker(
                kernel.name, self._local_ip(), self._on_interaction,
                idle_timeout=idle_timeout, fallback=fallback,
            )
        else:
            self.tracker = InteractionTracker(
                kernel.name, self._local_ip(), self._on_interaction,
                idle_timeout=idle_timeout,
            )
        self._class_stats = {}
        self._class_window_start = kernel.sim.now
        self.open_interactions = 0
        # Optional SketchLPA observing every emitted interaction (wired by
        # the toolkit when SysProfConfig.latency_sketches is on).
        self.sketches = None

    def _local_ip(self):
        try:
            return self.kernel.ip
        except Exception:
            return None

    # ------------------------------------------------------------------
    # subscriptions
    # ------------------------------------------------------------------

    def _subscribe(self):
        self._add_subscription(
            [tp.NET_RX_DRIVER], self._on_rx_driver, predicate=self.predicate
        )
        self._add_subscription(
            [tp.SOCK_ENQUEUE], self._on_sock_enqueue, predicate=self.predicate
        )
        self._add_subscription(
            [tp.SOCK_DELIVER], self._on_sock_deliver, predicate=self.predicate
        )
        self._add_subscription(
            [tp.NET_TX_DRIVER], self._on_tx_driver, predicate=self.predicate
        )

    # ------------------------------------------------------------------
    # fast-path callbacks
    # ------------------------------------------------------------------

    def _on_rx_driver(self, event):
        fields = event.fields
        src = (fields["src_ip"], fields["src_port"])
        dst = (fields["dst_ip"], fields["dst_port"])
        if self.arm:
            self.tracker.note_rx_start(src, dst, event.ts,
                                       arm=fields.get("arm_id"))
        else:
            self.tracker.note_rx_start(src, dst, event.ts)

    def _on_sock_enqueue(self, event):
        fields = event.fields
        src = (fields["src_ip"], fields["src_port"])
        dst = (fields["dst_ip"], fields["dst_port"])
        if self.arm:
            self.tracker.on_packet(
                src, dst, event.ts, fields["size"],
                kind=fields.get("msg_kind"), pid=fields.get("sock_pid"),
                arm=fields.get("arm_id"), is_last=fields.get("is_last", False),
            )
        else:
            self.tracker.on_packet(
                src, dst, event.ts, fields["size"],
                kind=fields.get("msg_kind"), pid=fields.get("sock_pid"),
            )

    def _on_sock_deliver(self, event):
        fields = event.fields
        src = (fields["src_ip"], fields["src_port"])
        dst = (fields["dst_ip"], fields["dst_port"])
        sample = self._sample_task(fields.get("pid"))
        if self.arm:
            self.tracker.on_deliver(
                src, dst, event.ts, task_sample=sample,
                arm=fields.get("arm_id"),
            )
        else:
            self.tracker.on_deliver(src, dst, event.ts, task_sample=sample)

    def _on_tx_driver(self, event):
        fields = event.fields
        src = (fields["src_ip"], fields["src_port"])
        dst = (fields["dst_ip"], fields["dst_port"])
        pid = fields.get("sock_pid")
        if self.arm:
            self.tracker.on_packet(
                src, dst, event.ts, fields["size"],
                kind=fields.get("msg_kind"), pid=pid,
                sampler=lambda: self._sample_task(pid),
                arm=fields.get("arm_id"), is_last=fields.get("is_last", False),
            )
        else:
            self.tracker.on_packet(
                src, dst, event.ts, fields["size"],
                kind=fields.get("msg_kind"), pid=pid,
                sampler=lambda: self._sample_task(pid),
            )

    # ------------------------------------------------------------------
    # metric assembly
    # ------------------------------------------------------------------

    def _sample_task(self, pid):
        task = self.kernel.tasks.get(pid)
        if task is None:
            return None
        now = self.kernel.sim.now
        blocked = task.blocked_time
        if task.blocked_since is not None:
            blocked += now - task.blocked_since
        return {
            "utime": task.utime,
            "stime": task.stime,
            "blocked": blocked,
            "ctx": task.ctx_switches,
            "disk_ops": task.disk_ops,
            "band": task.band,
            "name": task.name,
        }

    def _on_interaction(self, record):
        request, response = record.request, record.response
        first_rx = request.first_rx_ts if request.first_rx_ts is not None else request.first_ts
        if request.deliver_ts is not None:
            record.kernel_wait = max(0.0, request.deliver_ts - first_rx)
        req_sample = request.task_sample
        resp_sample = response.task_sample
        if req_sample is not None and resp_sample is not None:
            record.user_time = max(0.0, resp_sample["utime"] - req_sample["utime"])
            record.kernel_cpu = max(0.0, resp_sample["stime"] - req_sample["stime"])
            record.io_blocked = max(0.0, resp_sample["blocked"] - req_sample["blocked"])
            record.ctx_switches = max(0, resp_sample["ctx"] - req_sample["ctx"])
            record.disk_ops = max(0, resp_sample["disk_ops"] - req_sample["disk_ops"])
            record.server_name = resp_sample["name"]
            if resp_sample["band"] == BAND_KERNEL:
                # Kernel daemons spend their blocked time *in the kernel*.
                record.kernel_cpu += record.io_blocked
                record.io_blocked = 0.0
        record.server_pid = response.pid or request.pid or 0
        if _trace.enabled:
            _trace.active().interaction(
                self.kernel.name, record, clock=self.kernel.clock
            )
        self.window.append(record)
        if self.sketches is not None:
            self.sketches.observe(record)
        if self.granularity == "interaction":
            self.buffer.append(record.as_row())
        else:
            self._aggregate(record)

    def _aggregate(self, record):
        name = self.classify(record)
        bundle = self._class_stats.get(name)
        if bundle is None:
            bundle = self._class_stats[name] = {
                "latency": RunningStat(),
                "kernel_time": RunningStat(),
                "user_time": RunningStat(),
                "kernel_wait": RunningStat(),
                "bytes": 0,
            }
        bundle["latency"].add(record.total_latency)
        bundle["kernel_time"].add(record.kernel_time)
        bundle["user_time"].add(record.user_time)
        bundle["kernel_wait"].add(record.kernel_wait)
        bundle["bytes"] += record.request.bytes + record.response.bytes

    # ------------------------------------------------------------------

    def set_granularity(self, granularity):
        if granularity not in ("interaction", "class"):
            raise ValueError("granularity must be 'interaction' or 'class'")
        self.granularity = granularity

    def evict(self):
        """Flush aggregates (class mode) and hand the buffer to the daemon."""
        if self.granularity == "class" and self._class_stats:
            now = self.kernel.sim.now
            for name, bundle in sorted(self._class_stats.items()):
                # Preordered row: CLASS_SUMMARY_FORMAT field order.
                self.buffer.append(
                    (
                        self.kernel.name,
                        name,
                        self._class_window_start,
                        now,
                        bundle["latency"].count,
                        bundle["latency"].mean,
                        bundle["kernel_time"].mean,
                        bundle["user_time"].mean,
                        bundle["kernel_wait"].mean,
                        bundle["bytes"],
                    )
                )
            self._class_stats.clear()
            self._class_window_start = now
        return super().evict()

    @property
    def record_format(self):
        return CLASS_SUMMARY_FORMAT if self.granularity == "class" else INTERACTION_FORMAT

    def flush_tracker(self):
        """End-of-run: close open messages and emit pending interactions."""
        self.tracker.flush()

    def window_snapshot(self):
        return [record.as_dict() for record in self.window]

    def stats(self):
        base = super().stats()
        base.update(
            {
                "interactions": self.tracker.interactions_emitted,
                "messages": self.tracker.messages_closed,
                "unpaired": self.tracker.unpaired_messages,
                "flows": len(self.tracker.flows),
            }
        )
        return base


class SketchLPA(LocalPerformanceAnalyzer):
    """Per-request-class quantile sketches for latency and queue depth.

    Not subscribed to Kprof: the companion :class:`InteractionLPA` feeds
    every emitted interaction through :meth:`observe` (same fast path,
    one extra callback).  Each eviction window serializes the live
    sketches as ``SKETCH_FORMAT`` rows — one bounded row per (class,
    metric) no matter how many interactions landed in the window — and
    resets them, so the GPA merges windows instead of raw records.

    Each observation charges ``sketch_update`` simulated CPU per metric
    in interrupt context under the ledger's "analyzer" category, keeping
    the monitoring-overhead story emergent.
    """

    record_format = SKETCH_FORMAT

    def __init__(self, kernel, kprof, source, name="sketch-lpa",
                 buffer_capacity=64, alpha=0.01, max_buckets=256,
                 on_buffer_full=None):
        super().__init__(
            kernel, kprof, name,
            buffer_capacity=buffer_capacity, on_buffer_full=on_buffer_full,
        )
        self.source = source
        self.alpha = alpha
        self.max_buckets = max_buckets
        self._sketches = {}  # (request_class, metric) -> QuantileSketch
        self._window_start = kernel.clock.local_time(kernel.sim.now)
        self.updates = 0
        self.rows_emitted = 0

    def _subscribe(self):
        """No Kprof subscriptions; fed by the interaction LPA's hook."""

    def observe(self, record):
        """Fold one emitted interaction into the live sketches."""
        request_class = self.source.classify(record)
        self._update(request_class, "latency", record.total_latency)
        self._update(
            request_class, "qdepth", pending_interactions(self.source.tracker)
        )
        self.kernel.cpu.submit(
            None, self.kernel.costs.sketch_update * len(SKETCH_METRICS),
            "kernel", band=BAND_IRQ, attribution="analyzer",
        ).defuse()

    def _update(self, request_class, metric, value):
        key = (request_class, metric)
        sketch = self._sketches.get(key)
        if sketch is None:
            sketch = self._sketches[key] = QuantileSketch(
                alpha=self.alpha, max_buckets=self.max_buckets
            )
        sketch.add(value)
        self.updates += 1

    def evict(self):
        now = self.kernel.clock.local_time(self.kernel.sim.now)
        for request_class, metric in sorted(self._sketches):
            sketch = self._sketches[(request_class, metric)]
            if sketch.count == 0:
                continue
            self.buffer.append(
                sketch.to_row(
                    self.kernel.name, request_class, metric,
                    self._window_start, now,
                )
            )
            self.rows_emitted += 1
        self._sketches.clear()
        self._window_start = now
        return super().evict()

    def stats(self):
        base = super().stats()
        base.update(
            {
                "updates": self.updates,
                "rows_emitted": self.rows_emitted,
                "sketches": len(self._sketches),
            }
        )
        return base


class NodeStatsLPA(LocalPerformanceAnalyzer):
    """Periodic node-level resource snapshots (CPU, run queue, backlog).

    Not event-driven: the dissemination daemon invokes :meth:`sample` on
    its eviction timer.  Consumers like RA-DWCS read these through the GPA
    to find the lightly-loaded server.
    """

    record_format = NODE_STATS_FORMAT

    def __init__(self, kernel, kprof, name="nodestats-lpa", buffer_capacity=64,
                 on_buffer_full=None, pending_probe=None):
        super().__init__(
            kernel, kprof, name,
            buffer_capacity=buffer_capacity, on_buffer_full=on_buffer_full,
        )
        self.pending_probe = pending_probe
        self._last_ctx = 0

    def _subscribe(self):
        """No event subscriptions; sampling is timer-driven."""

    def sample(self):
        kernel = self.kernel
        cpu = kernel.cpu
        backlog = sum(
            sock.rx_buffered for sock in kernel._sockets.values()
        )
        pending = self.pending_probe() if self.pending_probe is not None else 0
        # Preordered row: NODE_STATS_FORMAT field order.
        self.buffer.append(
            (
                kernel.name,
                kernel.clock.local_time(kernel.sim.now),
                cpu.busy_time,
                cpu.mode_time["user"],
                cpu.mode_time["kernel"],
                cpu.run_queue_length,
                cpu.ctx_switch_count,
                backlog,
                pending,
            )
        )


# Per-syscall activity summaries (the paper's finest activity granularity:
# "an activity may be a system call made by some user-level application").
SYSCALL_STATS_FORMAT = (
    "sysprof.syscalls",
    (
        ("node", "str16"),
        ("window_start", "f64"),
        ("window_end", "f64"),
        ("call", "str16"),
        ("count", "u32"),
        ("mean_latency", "f64"),
        ("max_latency", "f64"),
        ("total_latency", "f64"),
    ),
)


class SyscallLPA(LocalPerformanceAnalyzer):
    """Tracks every system call's kernel residency.

    Pairs SYSCALL_ENTRY/SYSCALL_EXIT per pid (the kernel serializes a
    task's syscalls, so a simple per-pid open-call slot suffices) and
    aggregates latency statistics per call name.  Summaries are emitted
    on each eviction cycle; the live table is queryable locally.
    """

    record_format = SYSCALL_STATS_FORMAT

    def __init__(self, kernel, kprof, name="syscall-lpa", buffer_capacity=64,
                 predicate=None, on_buffer_full=None):
        super().__init__(
            kernel, kprof, name,
            buffer_capacity=buffer_capacity, on_buffer_full=on_buffer_full,
        )
        self.predicate = predicate
        self._open_calls = {}  # pid -> (call name, entry ts)
        self._stats = {}  # call name -> RunningStat
        self._window_start = kernel.sim.now
        self.unmatched_exits = 0

    def _subscribe(self):
        self._add_subscription(
            [tp.SYSCALL_ENTRY], self._on_entry, predicate=self.predicate
        )
        self._add_subscription(
            [tp.SYSCALL_EXIT], self._on_exit, predicate=self.predicate
        )

    def _on_entry(self, event):
        self._open_calls[event["pid"]] = (event.get("call", "?"), event.ts)

    def _on_exit(self, event):
        opened = self._open_calls.pop(event["pid"], None)
        if opened is None:
            self.unmatched_exits += 1
            return
        call, entry_ts = opened
        stat = self._stats.get(call)
        if stat is None:
            stat = self._stats[call] = RunningStat()
        stat.add(max(0.0, event.ts - entry_ts))

    def snapshot(self):
        """Live per-call table: {call: {count, mean, max, total}}."""
        return {
            call: {
                "count": stat.count,
                "mean": stat.mean,
                "max": stat.maximum if stat.count else 0.0,
                "total": stat.total,
            }
            for call, stat in self._stats.items()
        }

    def evict(self):
        now = self.kernel.clock.local_time(self.kernel.sim.now)
        for call in sorted(self._stats):
            stat = self._stats[call]
            if stat.count == 0:
                continue
            # Preordered row: SYSCALL_STATS_FORMAT field order.
            self.buffer.append(
                (
                    self.kernel.name,
                    self._window_start,
                    now,
                    call,
                    stat.count,
                    stat.mean,
                    stat.maximum,
                    stat.total,
                )
            )
        self._stats.clear()
        self._window_start = now
        return super().evict()

    def stats(self):
        base = super().stats()
        base.update(
            {
                "open_calls": len(self._open_calls),
                "unmatched_exits": self.unmatched_exits,
                "tracked_calls": sorted(self._stats),
            }
        )
        return base
