"""ARM-assisted interaction extraction for interleaved request streams.

The paper's black-box message extraction assumes strict request/response
alternation per flow and states the escape hatch explicitly: "Multiple
requests may interleave, in which case domain-specific knowledge and/or
ARM support [5] would be necessary."  This module implements that
escape hatch: applications instrumented per the Application Response
Measurement standard stamp each transaction with a correlation token
(``meta["arm_id"]``), which travels in-band with the packets.  The
:class:`ArmTracker` pairs request and response by token instead of by
direction flips, so pipelined/interleaved flows are measured exactly.

Drop-in alternative to
:class:`~repro.core.interactions.InteractionTracker`: same observation
API, same :class:`~repro.core.interactions.InteractionRecord` output.
Packets without a token fall back to a delegate direction-flip tracker
when one is provided.
"""

from repro.core.interactions import InteractionRecord, MessageStats


class _OpenTransaction:
    __slots__ = ("request", "response", "first_rx")

    def __init__(self):
        self.request = None
        self.response = None
        self.first_rx = None


class ArmTracker:
    """Pairs interactions by ARM correlation token."""

    def __init__(self, node_name, local_ip, emit, idle_timeout=1.0,
                 fallback=None):
        self.node_name = node_name
        self.local_ip = local_ip
        self.emit = emit
        self.idle_timeout = idle_timeout
        self.fallback = fallback
        self.open = {}  # (flow_key, arm) -> _OpenTransaction
        self._last_activity = {}
        self.interactions_emitted = 0
        self.messages_closed = 0
        self.unpaired_messages = 0
        self.untagged_packets = 0

    # Compatibility with InteractionTracker's consumer (the LPA).
    @property
    def flows(self):
        return self._last_activity

    # ------------------------------------------------------------------

    def _key(self, src, dst, arm):
        flow = (src, dst) if src <= dst else (dst, src)
        return (flow, arm)

    def note_rx_start(self, src, dst, ts, arm=None):
        if arm is None:
            if self.fallback is not None:
                self.fallback.note_rx_start(src, dst, ts)
            return
        entry = self.open.get(self._key(src, dst, arm))
        if entry is None:
            entry = self.open[self._key(src, dst, arm)] = _OpenTransaction()
        if entry.first_rx is None:
            entry.first_rx = ts

    def on_packet(self, src, dst, ts, size, kind=None, pid=None, sampler=None,
                  arm=None, is_last=False):
        if arm is None:
            self.untagged_packets += 1
            if self.fallback is not None:
                self.fallback.on_packet(
                    src, dst, ts, size, kind=kind, pid=pid, sampler=sampler
                )
            return
        key = self._key(src, dst, arm)
        entry = self.open.get(key)
        if entry is None:
            entry = self.open[key] = _OpenTransaction()
        self._last_activity[key] = ts
        inbound = dst[0] == self.local_ip
        side = entry.request if inbound else entry.response
        if side is None:
            side = MessageStats(src, dst, ts, kind=kind)
            if sampler is not None:
                side.task_sample = sampler()
            if inbound:
                entry.request = side
                if entry.first_rx is not None:
                    side.first_rx_ts = entry.first_rx
            else:
                entry.response = side
        side.extend(ts, size, pid=pid)
        if is_last:
            self.messages_closed += 1
            # ARM marks transaction boundaries: the response's final
            # segment completes the pair.
            if not inbound and entry.request is not None:
                self._emit(key, entry)

    def on_deliver(self, src, dst, ts, task_sample=None, arm=None):
        if arm is None:
            if self.fallback is not None:
                self.fallback.on_deliver(src, dst, ts, task_sample=task_sample)
            return
        entry = self.open.get(self._key(src, dst, arm))
        if entry is not None and entry.request is not None:
            if entry.request.deliver_ts is None:
                entry.request.deliver_ts = ts
                entry.request.task_sample = task_sample

    # ------------------------------------------------------------------

    def _emit(self, key, entry):
        del self.open[key]
        self._last_activity.pop(key, None)
        record = InteractionRecord(self.node_name, entry.request, entry.response)
        self.interactions_emitted += 1
        self.emit(record)

    def flush(self, flow_key=None):
        stale = list(self.open)
        for key in stale:
            entry = self.open[key]
            if entry.request is not None and entry.response is not None:
                self._emit(key, entry)
            else:
                self.unpaired_messages += 1
                del self.open[key]
                self._last_activity.pop(key, None)
        if self.fallback is not None:
            self.fallback.flush()

    def expire_idle(self, now):
        stale = [
            key for key, last in self._last_activity.items()
            if now - last > self.idle_timeout
        ]
        for key in stale:
            self.open.pop(key, None)
            del self._last_activity[key]
            self.unpaired_messages += 1
        if self.fallback is not None:
            self.fallback.expire_idle(now)
        return len(stale)
