"""PBIO-style self-describing binary record encoding.

The paper's dissemination daemon uses PBIO binary encodings to keep
event-channel payloads compact.  This module reproduces the discipline:

* a **format** is a named, ordered list of typed fields, registered once;
* a **format descriptor** serializes the schema itself, so a decoder that
  has never seen the format can reconstruct it (self-describing streams);
* **records** are fixed-layout ``struct`` packs referencing the format by
  id — no per-record field names on the wire.

Supported field types: ``f64``, ``i64``, ``u32``, ``u16``, ``bool`` and
``strN`` (fixed-width UTF-8, NUL-padded, truncated at N bytes).
"""

import struct

_MAGIC = 0xB10B
_HEADER = struct.Struct("<HHI")  # magic, format_id, payload length

_SCALAR_CODES = {"f64": "d", "i64": "q", "u32": "I", "u16": "H", "bool": "?"}


def _field_code(ftype):
    code = _SCALAR_CODES.get(ftype)
    if code is not None:
        return code
    if ftype.startswith("str"):
        width = int(ftype[3:])
        if width <= 0:
            raise ValueError("string width must be positive: {}".format(ftype))
        return "{}s".format(width)
    raise ValueError("unknown field type: {}".format(ftype))


class RecordFormat:
    """One registered format: name + ordered (field, type) pairs."""

    def __init__(self, format_id, name, fields):
        self.format_id = format_id
        self.name = name
        self.fields = tuple((str(fname), str(ftype)) for fname, ftype in fields)
        self._struct = struct.Struct(
            "<" + "".join(_field_code(ftype) for _, ftype in self.fields)
        )
        self._strings = frozenset(
            fname for fname, ftype in self.fields if ftype.startswith("str")
        )
        self._bools = frozenset(
            fname for fname, ftype in self.fields if ftype == "bool"
        )

    @property
    def record_size(self):
        return self._struct.size

    def pack(self, record):
        values = []
        for fname, _ftype in self.fields:
            value = record[fname]
            if fname in self._strings:
                value = str(value).encode("utf-8")
            elif fname in self._bools:
                value = bool(value)
            values.append(value)
        return self._struct.pack(*values)

    def unpack(self, payload):
        values = self._struct.unpack(payload)
        record = {}
        for (fname, _ftype), value in zip(self.fields, values):
            if fname in self._strings:
                value = value.rstrip(b"\x00").decode("utf-8", "replace")
            record[fname] = value
        return record

    def describe(self):
        """Serialized schema (the self-describing part of the stream)."""
        body = "{}|{}".format(
            self.name, ";".join("{}:{}".format(f, t) for f, t in self.fields)
        ).encode("utf-8")
        return struct.pack("<HH", self.format_id, len(body)) + body

    def __repr__(self):
        return "<RecordFormat {} #{} {}B>".format(
            self.name, self.format_id, self.record_size
        )


class FormatRegistry:
    """Registry mapping format names/ids to :class:`RecordFormat`."""

    def __init__(self):
        self._by_name = {}
        self._by_id = {}
        self._next_id = 1

    def register(self, name, fields):
        """Register (or fetch the identical existing) format."""
        existing = self._by_name.get(name)
        if existing is not None:
            if existing.fields != tuple((str(a), str(b)) for a, b in fields):
                raise ValueError("format {} re-registered with different fields".format(name))
            return existing
        fmt = RecordFormat(self._next_id, name, fields)
        self._next_id += 1
        self._by_name[name] = fmt
        self._by_id[fmt.format_id] = fmt
        return fmt

    def adopt(self, descriptor):
        """Install a format from a peer's :meth:`RecordFormat.describe` blob."""
        format_id, body_len = struct.unpack_from("<HH", descriptor)
        body = descriptor[4:4 + body_len].decode("utf-8")
        name, _, field_blob = body.partition("|")
        fields = []
        if field_blob:
            for item in field_blob.split(";"):
                fname, _, ftype = item.partition(":")
                fields.append((fname, ftype))
        fmt = RecordFormat(format_id, name, fields)
        self._by_id[format_id] = fmt
        self._by_name[name] = fmt
        return fmt

    def get(self, name):
        return self._by_name[name]

    def by_id(self, format_id):
        return self._by_id[format_id]

    def __contains__(self, name):
        return name in self._by_name


def encode_records(fmt, records):
    """Encode an iterable of dict records into one framed binary blob."""
    body = b"".join(fmt.pack(record) for record in records)
    return _HEADER.pack(_MAGIC, fmt.format_id, len(body)) + body


def decode_records(registry, blob):
    """Decode a framed blob into ``(format, [records])``."""
    magic, format_id, length = _HEADER.unpack_from(blob)
    if magic != _MAGIC:
        raise ValueError("bad record blob magic: {:#x}".format(magic))
    fmt = registry.by_id(format_id)
    body = blob[_HEADER.size:_HEADER.size + length]
    if len(body) != length:
        raise ValueError("truncated record blob")
    size = fmt.record_size
    if size == 0:
        return fmt, []
    if length % size:
        raise ValueError("blob length {} not a multiple of record size {}".format(length, size))
    records = [fmt.unpack(body[i:i + size]) for i in range(0, length, size)]
    return fmt, records


def encode_text(records):
    """Baseline text encoding (repr lines) for the encoding-cost ablation."""
    return "\n".join(repr(sorted(record.items())) for record in records).encode("utf-8")
