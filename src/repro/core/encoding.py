"""PBIO-style self-describing binary record encoding.

The paper's dissemination daemon uses PBIO binary encodings to keep
event-channel payloads compact.  This module reproduces the discipline:

* a **format** is a named, ordered list of typed fields, registered once;
* a **format descriptor** serializes the schema itself, so a decoder that
  has never seen the format can reconstruct it (self-describing streams);
* **records** are fixed-layout ``struct`` packs referencing the format by
  id — no per-record field names on the wire.

Supported field types: ``f64``, ``i64``, ``u32``, ``u16``, ``bool`` and
``strN`` (fixed-width UTF-8, NUL-padded, truncated at a codepoint
boundary within N bytes).

Two wire layouts share the same record image:

* **per-record blobs** (:func:`encode_records`) — one header followed by
  records packed one ``struct.pack`` call at a time.  This is the
  original dissemination path, kept as the runtime-selectable baseline.
* **frames** (:func:`encode_frame`) — one header carrying a record
  *count*, then the same contiguous record images packed through a
  cached multi-record ``struct.Struct`` (chunks of up to
  ``_PACK_CHUNK`` records per C call) into a reusable per-format
  ``bytearray`` scratch.  Frames are what the batched daemon ships.

A record may be a ``dict`` keyed by field name or a **preordered row**:
a sequence whose values appear in registered field order.  Rows are what
the analyzers emit on the hot path — packing one is a flat iteration
with zero per-record dict lookups.

When numpy is available (and ``REPRO_NO_NUMPY`` is unset) each format
also carries a packed little-endian *structured dtype* mirroring its
struct layout byte for byte.  Frame decoding then runs through
``np.frombuffer`` plus per-column extraction (measurably faster than the
chunked ``struct`` unpack at both small and large frame sizes), and
columnar producers/consumers can skip row tuples entirely via
:func:`decode_frame_array` / :func:`encode_frame_array`.  The decoded
values are bit-identical to the struct path — floats are reinterpreted,
never recomputed — so the simulation's trace hashes cannot tell the two
kernels apart; tests enforce this.  Frame *encoding* from row tuples
deliberately stays on the cached multi-record ``struct`` packers: packing
python tuples through ``np.array`` measures ~2.4x slower (see
docs/performance.md).
"""

import os
import struct

try:
    if os.environ.get("REPRO_NO_NUMPY"):
        raise ImportError("numpy disabled via REPRO_NO_NUMPY")
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via REPRO_NO_NUMPY
    _np = None

_MAGIC = 0xB10B        # per-record blob
_FRAME_MAGIC = 0xB10F  # multi-record frame
_HEADER = struct.Struct("<HHI")        # magic, format_id, payload length
_FRAME_HEADER = struct.Struct("<HHI")  # magic, format_id, record count

#: Records per cached multi-record Struct.  Bounds both the size of the
#: compiled format strings and the per-format packer cache (at most
#: ``_PACK_CHUNK`` distinct remainder sizes ever get compiled).
_PACK_CHUNK = 512

_SCALAR_CODES = {"f64": "d", "i64": "q", "u32": "I", "u16": "H", "bool": "?"}

#: numpy structured-dtype codes mirroring ``_SCALAR_CODES`` ("<" packed
#: little-endian, exactly the struct wire layout).
_NP_CODES = {"f64": "<f8", "i64": "<i8", "u32": "<u4", "u16": "<u2", "bool": "?"}


def _field_code(ftype):
    code = _SCALAR_CODES.get(ftype)
    if code is not None:
        return code
    if ftype.startswith("str"):
        width = int(ftype[3:])
        if width <= 0:
            raise ValueError("string width must be positive: {}".format(ftype))
        return "{}s".format(width)
    raise ValueError("unknown field type: {}".format(ftype))


def _utf8_field(value, width):
    """Encode ``value`` into at most ``width`` UTF-8 bytes.

    Truncation backs up to a codepoint boundary: cutting a multibyte
    character mid-sequence would leave an undecodable tail that the
    reader can only render as U+FFFD.
    """
    if not isinstance(value, str):
        value = str(value)
    data = value.encode("utf-8")
    if len(data) <= width:
        return data
    cut = width
    # data[cut] is the first byte past the limit; while it is a UTF-8
    # continuation byte (0b10xxxxxx) the character it belongs to started
    # earlier and must be dropped whole.
    while cut > 0 and (data[cut] & 0xC0) == 0x80:
        cut -= 1
    return data[:cut]


class RecordFormat:
    """One registered format: name + ordered (field, type) pairs."""

    def __init__(self, format_id, name, fields):
        self.format_id = format_id
        self.name = name
        self.fields = tuple((str(fname), str(ftype)) for fname, ftype in fields)
        self.names = tuple(fname for fname, _ in self.fields)
        self._codes = "".join(_field_code(ftype) for _, ftype in self.fields)
        self._struct = struct.Struct("<" + self._codes)
        self._index = {fname: i for i, fname in enumerate(self.names)}
        self._string_fields = tuple(
            (i, int(ftype[3:]))
            for i, (_fname, ftype) in enumerate(self.fields)
            if ftype.startswith("str")
        )
        self._strings = frozenset(
            fname for fname, ftype in self.fields if ftype.startswith("str")
        )
        self._packers = {1: self._struct}
        self._scratch = bytearray()
        self._np_dtype = None  # built lazily; False = layout mismatch

    @property
    def record_size(self):
        return self._struct.size

    def numpy_dtype(self):
        """Packed structured dtype matching the wire layout, or ``None``
        when numpy is absent (or the layouts somehow disagree)."""
        if _np is None:
            return None
        dtype = self._np_dtype
        if dtype is None:
            specs = []
            for fname, ftype in self.fields:
                code = _NP_CODES.get(ftype)
                if code is None:
                    code = "S{}".format(int(ftype[3:]))
                specs.append((fname, code))
            dtype = _np.dtype(specs)
            if dtype.itemsize != self._struct.size:  # pragma: no cover
                self._np_dtype = False
                return None
            self._np_dtype = dtype
        return dtype if dtype is not False else None

    def index_of(self, fname):
        return self._index[fname]

    # ------------------------------------------------------------------
    # packing
    # ------------------------------------------------------------------

    def packer(self, count):
        """Cached ``struct.Struct`` covering ``count`` consecutive records."""
        cached = self._packers.get(count)
        if cached is None:
            if count > _PACK_CHUNK:
                raise ValueError(
                    "packer count {} exceeds chunk limit {}".format(count, _PACK_CHUNK)
                )
            cached = self._packers[count] = struct.Struct("<" + self._codes * count)
        return cached

    def _wire_values(self, record):
        """Flatten a dict record or preordered row into pack arguments."""
        if isinstance(record, dict):
            row = [record[fname] for fname in self.names]
        else:
            row = list(record)
        for i, width in self._string_fields:
            row[i] = _utf8_field(row[i], width)
        return row

    def pack(self, record):
        """Pack one record (dict or preordered row) — the per-record path."""
        return self._struct.pack(*self._wire_values(record))

    def pack_frame_into(self, scratch, offset, records):
        """Pack ``records`` contiguously into ``scratch`` at ``offset``.

        Uses the cached multi-record packers in chunks of up to
        ``_PACK_CHUNK`` records — one C-level ``pack_into`` per chunk
        instead of one per record.  Rows are extended straight into one
        flat argument list (no per-record row copy); string slots are
        then encoded in a stride walk over the flat list.  Returns the
        offset past the payload.
        """
        size = self.record_size
        nfields = len(self.fields)
        names = self.names
        string_fields = self._string_fields
        count = len(records)
        start = 0
        while start < count:
            n = min(_PACK_CHUNK, count - start)
            flat = []
            extend = flat.extend
            for record in records[start:start + n]:
                if isinstance(record, dict):
                    extend([record[fname] for fname in names])
                else:
                    extend(record)
            for i, width in string_fields:
                for base in range(i, n * nfields, nfields):
                    value = flat[base]
                    if type(value) is str:
                        data = value.encode("utf-8")
                        if len(data) > width:
                            cut = width
                            while cut > 0 and (data[cut] & 0xC0) == 0x80:
                                cut -= 1
                            data = data[:cut]
                        flat[base] = data
                    else:
                        flat[base] = _utf8_field(value, width)
            self.packer(n).pack_into(scratch, offset, *flat)
            offset += n * size
            start += n
        return offset

    # ------------------------------------------------------------------
    # unpacking
    # ------------------------------------------------------------------

    def unpack(self, payload):
        values = self._struct.unpack(payload)
        record = {}
        for (fname, _ftype), value in zip(self.fields, values):
            if fname in self._strings:
                value = value.rstrip(b"\x00").decode("utf-8", "replace")
            record[fname] = value
        return record

    def unpack_rows(self, payload, count):
        """Unpack ``count`` contiguous records into preordered row tuples.

        With numpy: one ``np.frombuffer`` over the whole payload, one
        ``tolist()`` per *column*, and a C-level ``zip`` back into row
        tuples — no per-record python work at all.  Values are
        reinterpreted, not recomputed, so they are bit-identical to the
        struct path below (trace determinism tests compare the two).

        Without numpy: one cached multi-record ``unpack_from`` per chunk,
        then a flat slice per record — no per-record header or per-record
        ``bytes`` objects.
        """
        if _np is not None:
            dtype = self.numpy_dtype()
            if dtype is not None:
                array = _np.frombuffer(payload, dtype=dtype, count=count)
                string_fields = self._string_fields
                if not string_fields:
                    return list(zip(*[
                        array[name].tolist() for name in self.names
                    ]))
                columns = []
                stringy = frozenset(i for i, _w in string_fields)
                for index, name in enumerate(self.names):
                    column = array[name].tolist()
                    if index in stringy:
                        # numpy already strips trailing NULs from 'S'
                        # items, matching the rstrip below.
                        column = [
                            value.decode("utf-8", "replace") for value in column
                        ]
                    columns.append(column)
                return list(zip(*columns))
        nfields = len(self.fields)
        size = self.record_size
        string_fields = self._string_fields
        rows = []
        append = rows.append
        offset = 0
        start = 0
        while start < count:
            n = min(_PACK_CHUNK, count - start)
            flat = self.packer(n).unpack_from(payload, offset)
            for base in range(0, n * nfields, nfields):
                row = flat[base:base + nfields]
                if string_fields:
                    row = list(row)
                    for i, _width in string_fields:
                        row[i] = row[i].rstrip(b"\x00").decode("utf-8", "replace")
                    row = tuple(row)
                append(row)
            offset += n * size
            start += n
        return rows

    def row_to_dict(self, row):
        return dict(zip(self.names, row))

    def describe(self):
        """Serialized schema (the self-describing part of the stream)."""
        body = "{}|{}".format(
            self.name, ";".join("{}:{}".format(f, t) for f, t in self.fields)
        ).encode("utf-8")
        return struct.pack("<HH", self.format_id, len(body)) + body

    def __repr__(self):
        return "<RecordFormat {} #{} {}B>".format(
            self.name, self.format_id, self.record_size
        )


class RecordView:
    """Dict-like read-only view over one preordered row.

    The daemon's filter push-down hands these to user ``data_filter``
    functions so filters written against dict records keep working when
    the analyzers emit rows.  One view is reused across a whole drain
    (``bind`` swaps the row), so filters must not retain it.
    """

    __slots__ = ("_fmt", "_row")

    def __init__(self, fmt, row=None):
        self._fmt = fmt
        self._row = row

    def bind(self, row):
        self._row = row
        return self

    def __getitem__(self, fname):
        return self._row[self._fmt._index[fname]]

    def get(self, fname, default=None):
        index = self._fmt._index.get(fname)
        return default if index is None else self._row[index]

    def __contains__(self, fname):
        return fname in self._fmt._index

    def keys(self):
        return self._fmt.names

    def as_dict(self):
        return self._fmt.row_to_dict(self._row)


class FormatRegistry:
    """Registry mapping format names/ids to :class:`RecordFormat`."""

    def __init__(self):
        self._by_name = {}
        self._by_id = {}
        self._next_id = 1

    def register(self, name, fields):
        """Register (or fetch the identical existing) format."""
        existing = self._by_name.get(name)
        if existing is not None:
            if existing.fields != tuple((str(a), str(b)) for a, b in fields):
                raise ValueError("format {} re-registered with different fields".format(name))
            return existing
        fmt = RecordFormat(self._next_id, name, fields)
        self._next_id += 1
        self._by_name[name] = fmt
        self._by_id[fmt.format_id] = fmt
        return fmt

    def adopt(self, descriptor):
        """Install a format from a peer's :meth:`RecordFormat.describe` blob."""
        format_id, body_len = struct.unpack_from("<HH", descriptor)
        body = descriptor[4:4 + body_len].decode("utf-8")
        name, _, field_blob = body.partition("|")
        fields = []
        if field_blob:
            for item in field_blob.split(";"):
                fname, _, ftype = item.partition(":")
                fields.append((fname, ftype))
        fmt = RecordFormat(format_id, name, fields)
        self._by_id[format_id] = fmt
        self._by_name[name] = fmt
        return fmt

    def get(self, name):
        return self._by_name[name]

    def by_id(self, format_id):
        return self._by_id[format_id]

    def __contains__(self, name):
        return name in self._by_name


def encode_records(fmt, records):
    """Encode an iterable of records into one per-record framed blob.

    The baseline path: one ``struct.pack`` call (and one intermediate
    ``bytes`` object) per record.  Kept selectable at runtime so the
    frame path's speedup stays measurable against it.
    """
    body = b"".join(fmt.pack(record) for record in records)
    return _HEADER.pack(_MAGIC, fmt.format_id, len(body)) + body


def decode_records(registry, blob):
    """Decode a per-record framed blob into ``(format, [records])``."""
    magic, format_id, length = _HEADER.unpack_from(blob)
    if magic != _MAGIC:
        raise ValueError("bad record blob magic: {:#x}".format(magic))
    fmt = registry.by_id(format_id)
    body = blob[_HEADER.size:_HEADER.size + length]
    if len(body) != length:
        raise ValueError("truncated record blob")
    size = fmt.record_size
    if size == 0:
        return fmt, []
    if length % size:
        raise ValueError("blob length {} not a multiple of record size {}".format(length, size))
    records = [fmt.unpack(body[i:i + size]) for i in range(0, length, size)]
    return fmt, records


def encode_frame(fmt, records):
    """Encode records (preordered rows or dicts) into one frame blob.

    Frame layout::

        <H magic> <H format_id> <I count> <count x record_size payload>

    The payload is packed through the cached multi-record packers into a
    reusable per-format scratch ``bytearray``; the only fresh allocation
    per call is the returned ``bytes``.
    """
    if not isinstance(records, (list, tuple)):
        records = list(records)
    count = len(records)
    total = _FRAME_HEADER.size + count * fmt.record_size
    scratch = fmt._scratch
    if len(scratch) < total:
        scratch = fmt._scratch = bytearray(total)
    _FRAME_HEADER.pack_into(scratch, 0, _FRAME_MAGIC, fmt.format_id, count)
    fmt.pack_frame_into(scratch, _FRAME_HEADER.size, records)
    return bytes(memoryview(scratch)[:total])


def decode_frame(registry, blob):
    """Decode one frame blob into ``(format, [row tuples])``."""
    magic, format_id, count = _FRAME_HEADER.unpack_from(blob)
    if magic != _FRAME_MAGIC:
        raise ValueError("bad frame magic: {:#x}".format(magic))
    fmt = registry.by_id(format_id)
    payload = memoryview(blob)[_FRAME_HEADER.size:]
    expected = count * fmt.record_size
    if len(payload) != expected:
        raise ValueError(
            "truncated frame: {} payload bytes for {} records of {}B".format(
                len(payload), count, fmt.record_size
            )
        )
    if count == 0:
        return fmt, []
    return fmt, fmt.unpack_rows(payload, count)


def decode_frame_array(registry, blob):
    """Decode one frame into ``(format, structured numpy array)``.

    The zero-copy columnar view: ``array["field"]`` is a vectorized
    column over the frame payload with no row tuples ever built.  For
    batch consumers (the profiling harness, offline analysis) this is
    the cheapest way to read a frame.  Requires numpy; raises
    ``RuntimeError`` without it — callers that must always work use
    :func:`decode_frame`.
    """
    if _np is None:
        raise RuntimeError("decode_frame_array requires numpy")
    magic, format_id, count = _FRAME_HEADER.unpack_from(blob)
    if magic != _FRAME_MAGIC:
        raise ValueError("bad frame magic: {:#x}".format(magic))
    fmt = registry.by_id(format_id)
    dtype = fmt.numpy_dtype()
    if dtype is None:  # pragma: no cover - numpy checked above
        raise RuntimeError("format {} has no numpy layout".format(fmt.name))
    payload = memoryview(blob)[_FRAME_HEADER.size:]
    if len(payload) != count * fmt.record_size:
        raise ValueError("truncated frame for {} records".format(count))
    return fmt, _np.frombuffer(payload, dtype=dtype, count=count)


def encode_frame_array(fmt, array):
    """Encode a structured numpy array as one frame blob.

    The columnar producer path: the array's packed little-endian bytes
    *are* the frame payload (``tobytes`` of the wire dtype), so the
    result is byte-identical to :func:`encode_frame` over the equivalent
    row tuples — tests enforce this.  String columns must already hold
    valid UTF-8 of at most the field width (numpy would truncate longer
    values at a byte, not codepoint, boundary).  Requires numpy.
    """
    if _np is None:
        raise RuntimeError("encode_frame_array requires numpy")
    dtype = fmt.numpy_dtype()
    if dtype is None:  # pragma: no cover - numpy checked above
        raise RuntimeError("format {} has no numpy layout".format(fmt.name))
    if array.dtype != dtype:
        array = array.astype(dtype)
    count = array.shape[0]
    return (
        _FRAME_HEADER.pack(_FRAME_MAGIC, fmt.format_id, count)
        + array.tobytes()
    )


class FrameDecoder:
    """Streaming decoder for one subscriber's frame stream (the GPA side).

    Feed it format-descriptor blobs and frame blobs in arrival order; it
    adopts unseen formats on the fly and unpacks whole frames through the
    cached multi-record packers — no per-record header parsing and no
    per-record payload slices.
    """

    def __init__(self, registry=None):
        self.registry = registry or FormatRegistry()
        self.frames_decoded = 0
        self.records_decoded = 0

    def feed_descriptor(self, blob):
        """Adopt a self-describing format descriptor."""
        return self.registry.adopt(blob)

    def feed(self, blob):
        """Decode one frame; returns ``(format, [row tuples])``."""
        fmt, rows = decode_frame(self.registry, blob)
        self.frames_decoded += 1
        self.records_decoded += len(rows)
        return fmt, rows

    def stats(self):
        return {
            "frames_decoded": self.frames_decoded,
            "records_decoded": self.records_decoded,
        }


def pack_count_runs(counts):
    """Pack a sparse ``{index: count}`` table into ``(base, payload)``.

    The payload is a run-length string of ``gap:count`` entries in
    ascending index order, where ``gap`` is the distance from the
    previous index (0 for the first entry, measured from ``base``).
    Sketch bucket indices cluster tightly, so gaps stay single-digit and
    the rendering fits a fixed-width ``strN`` field.  An empty table
    packs to ``(0, "")``.
    """
    if not counts:
        return 0, ""
    ordered = sorted(counts)
    base = ordered[0]
    parts = []
    previous = base
    for index in ordered:
        parts.append("{}:{}".format(index - previous, counts[index]))
        previous = index
    return base, ",".join(parts)


def unpack_count_runs(base, payload):
    """Inverse of :func:`pack_count_runs` — rebuild ``{index: count}``."""
    counts = {}
    if not payload:
        return counts
    index = int(base)
    for entry in payload.split(","):
        gap, _, count = entry.partition(":")
        index += int(gap)
        counts[index] = int(count)
    return counts


def encode_text(records, fmt=None):
    """Baseline text encoding (repr lines) for the encoding-cost ablation.

    ``fmt`` is required to render preordered rows; dict records render
    without it.
    """
    rendered = []
    for record in records:
        if not isinstance(record, dict):
            if fmt is None:
                raise ValueError("encode_text needs a format to render rows")
            record = fmt.row_to_dict(record)
        rendered.append(repr(sorted(record.items())))
    return "\n".join(rendered).encode("utf-8")
