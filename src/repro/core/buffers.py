"""Per-CPU double buffering for analyzer output records.

Faithful to the paper's mechanism: "each LPA maintains two per-CPU
buffers to store captured data, and when one of them has been filled, the
dissemination daemon is notified, and the LPA switches to the next
buffer.  Each such buffer switch requires interrupts to be disabled
locally to avoid data corruption" — the switch charges
``costs.buffer_switch`` of interrupt-context CPU.  "If the data is not
picked up in a timely fashion, it may be overwritten" — switching onto a
buffer the daemon has not drained discards its contents and counts them
as lost.
"""

from repro.observability import tracer as _trace
from repro.ossim.task import BAND_IRQ


class DoubleBuffer:
    """Two fixed-capacity record buffers with switch-on-full semantics."""

    def __init__(self, kernel, capacity, on_full=None, name="lpa-buf"):
        if capacity < 1:
            raise ValueError("buffer capacity must be >= 1")
        self.kernel = kernel
        self.capacity = capacity
        self.name = name
        self.on_full = on_full
        self._buffers = ([], [])
        self._drained = [True, True]
        self._active = 0
        self.records_appended = 0
        self.records_lost = 0
        self.switches = 0

    @property
    def active_length(self):
        return len(self._buffers[self._active])

    def append(self, record):
        """Append a record; switches buffers (and notifies) when full."""
        buffer = self._buffers[self._active]
        buffer.append(record)
        self.records_appended += 1
        if len(buffer) >= self.capacity:
            self.switch()

    def switch(self, force=False):
        """Swap active buffers and hand the full one to the daemon.

        ``force`` flushes a partially-filled buffer (periodic eviction);
        an *empty* buffer is never handed off, forced or not — there is
        nothing to disable interrupts for.  Returns the sequence number
        of the handed-off buffer, or ``None`` if there was nothing to
        hand off.
        """
        active = self._active
        if not self._buffers[active]:
            return None
        # Interrupts disabled locally for the swap: charge irq-context CPU.
        self.kernel.cpu.submit(
            None, self.kernel.costs.buffer_switch, "kernel", band=BAND_IRQ,
            attribution="analyzer",
        ).defuse()
        other = 1 - active
        lost = 0
        if not self._drained[other] and self._buffers[other]:
            # Late consumer: overwrite undrained data.
            lost = len(self._buffers[other])
            self.records_lost += lost
            self._buffers[other].clear()
            self._drained[other] = True
        self._drained[active] = False
        self._active = other
        self.switches += 1
        if _trace.enabled:
            _trace.active().buffer_switch(
                self.kernel.name, self.name, self.kernel.sim.now, lost=lost
            )
        if self.on_full is not None:
            self.on_full(self, active)
        return active

    def drain(self, index):
        """Daemon side: take all records out of buffer ``index``."""
        records = list(self._buffers[index])
        self._buffers[index].clear()
        self._drained[index] = True
        return records

    def drain_into(self, index, out):
        """Drain buffer ``index`` by appending its records to ``out``.

        The daemon's frame path coalesces several drains into one shared
        per-channel list; extending it directly skips the intermediate
        list that :meth:`drain` would allocate.  Returns the number of
        records drained.
        """
        records = self._buffers[index]
        count = len(records)
        out.extend(records)
        records.clear()
        self._drained[index] = True
        return count

    def stats(self):
        return {
            "appended": self.records_appended,
            "lost": self.records_lost,
            "switches": self.switches,
            "active_length": self.active_length,
        }


class SingleBuffer(DoubleBuffer):
    """Single-buffer variant for the buffering ablation: the producer keeps
    writing into the same buffer while the daemon drains, so any record
    arriving mid-drain window is lost."""

    def __init__(self, kernel, capacity, on_full=None, name="lpa-sbuf"):
        super().__init__(kernel, capacity, on_full=on_full, name=name)

    def switch(self, force=False):
        active = self._active
        if not self._buffers[active]:
            return None
        self.kernel.cpu.submit(
            None, self.kernel.costs.buffer_switch, "kernel", band=BAND_IRQ,
            attribution="analyzer",
        ).defuse()
        if not self._drained[active]:
            lost = len(self._buffers[active])
            self.records_lost += lost
            self._buffers[active].clear()
            self._drained[active] = True
            if _trace.enabled:
                _trace.active().buffer_switch(
                    self.kernel.name, self.name, self.kernel.sim.now, lost=lost
                )
            return None
        self._drained[active] = False
        self.switches += 1
        if _trace.enabled:
            _trace.active().buffer_switch(
                self.kernel.name, self.name, self.kernel.sim.now
            )
        if self.on_full is not None:
            self.on_full(self, active)
        return active
