"""The Global Performance Analyzer.

Aggregates and correlates records arriving from every node's
dissemination daemon: "it correlates the source and destination IP
addresses, port information, and NTP timestamps in the logs from
different nodes.  After aggregating the resource usage of each individual
interaction, GPA computes the overall performance of the associated
request-response pair.  Other nodes in the system can query the GPA ...
The GPA periodically dumps its information onto local disk."

Since the federation refactor the aggregation/query machinery lives in
:mod:`repro.core.tier` (shared with :class:`~repro.core.federation.ZoneGpa`);
this class adds the root-tier specifics: periodic JSON dumps and the
operator-facing ``stats()``.
"""

import json

from repro.core.channels import SYSPROF_PORT_BASE
from repro.core.tier import AnalyzerTier, CausalPath

__all__ = ["CausalPath", "GlobalPerformanceAnalyzer"]


class GlobalPerformanceAnalyzer(AnalyzerTier):
    """Receives channel data on a management node and answers queries."""

    task_name = "gpa"
    conn_task_name = "gpa-conn"

    def __init__(self, node, hub, clock_table=None, port=SYSPROF_PORT_BASE,
                 history=50000, dump_path=None, dump_interval=None,
                 stale_threshold=1.0):
        super().__init__(
            node, hub, clock_table=clock_table, port=port, history=history,
            stale_threshold=stale_threshold, channel_prefix="sysprof/",
        )
        self.dump_path = dump_path
        self.dump_interval = dump_interval
        self.dumps_written = 0
        self._dump_task = None

    # ------------------------------------------------------------------

    def _start_aux(self):
        if self.dump_path and self.dump_interval:
            self._dump_task = self.node.spawn("gpa-dump", self._dumper)
            self._dump_task.category = "analyzer"

    def _aux_tasks(self):
        return [self._dump_task]

    def _on_killed(self):
        self._dump_task = None

    def _dumper(self, ctx):
        while not self._stopped:
            yield from ctx.sleep(self.dump_interval)
            self.dump()

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def dump(self, path=None):
        """Write current state as JSON lines (auditing / offline modeling)."""
        target = path or self.dump_path
        if target is None:
            raise ValueError("no dump path configured")
        with open(target, "a", encoding="utf-8") as out:
            header = {
                "type": "gpa-dump",
                "sim_time": self.node.sim.now,
                "records_received": self.records_received,
            }
            out.write(json.dumps(header) + "\n")
            for record in self.interactions:
                out.write(json.dumps({"type": "interaction", **record}) + "\n")
            for node, history in self.node_stats.items():
                if history:
                    out.write(json.dumps({"type": "nodestats", **history[-1]}) + "\n")
        self.dumps_written += 1
        return target

    def stats(self):
        return {
            "records_received": self.records_received,
            "interactions": len(self.interactions),
            "class_summaries": len(self.class_summaries),
            "cpa_metrics": len(self.cpa_metrics),
            "syscall_summaries": len(self.syscall_summaries),
            "nodes_reporting": sorted(self.node_stats),
            "frames_received": self.frames_received_base
            + self.frame_decoder.frames_decoded,
            "decode_errors": self.decode_errors,
            "ingress_bytes": self.bytes_received,
            "sketch_rows": self.sketches.rows_ingested,
            "sketch_series": len(self.sketches.series),
            "dumps_written": self.dumps_written,
            "queries_served": self.queries_served,
            "restarts": self.restarts,
        }
