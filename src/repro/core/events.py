"""Monitoring event records and event-type interning.

Kprof emits :class:`MonEvent` instances — timestamped with the node-local
clock (GPA corrects cross-node skew later).  Event type names are
interned to small integers ("efficient event hashing" in the paper) so
binary encodings and dispatch tables stay compact.
"""

from repro.ossim.tracepoints import ALL_EVENT_TYPES

# Stable interning of the static instrumentation points.
ETYPE_IDS = {name: index for index, name in enumerate(ALL_EVENT_TYPES)}
ETYPE_NAMES = {index: name for name, index in ETYPE_IDS.items()}
_next_dynamic_id = len(ALL_EVENT_TYPES)


def intern_etype(name):
    """Intern an event type name (dynamic types get fresh ids)."""
    global _next_dynamic_id
    etype_id = ETYPE_IDS.get(name)
    if etype_id is None:
        etype_id = _next_dynamic_id
        _next_dynamic_id += 1
        ETYPE_IDS[name] = etype_id
        ETYPE_NAMES[etype_id] = name
    return etype_id


class MonEvent:
    """One monitoring event as delivered to analyzers.

    ``ts`` is the node-local timestamp; ``node`` the emitting node name;
    ``fields`` the tracepoint payload (a plain dict).
    """

    __slots__ = ("etype", "ts", "node", "fields")

    def __init__(self, etype, ts, node, fields):
        self.etype = etype
        self.ts = ts
        self.node = node
        self.fields = fields

    def get(self, name, default=None):
        return self.fields.get(name, default)

    def __getitem__(self, name):
        return self.fields[name]

    def __contains__(self, name):
        return name in self.fields

    def flow_tuple(self):
        """(src_ip, src_port, dst_ip, dst_port) for network events."""
        fields = self.fields
        return (
            fields["src_ip"],
            fields["src_port"],
            fields["dst_ip"],
            fields["dst_port"],
        )

    def __repr__(self):
        return "<MonEvent {} ts={:.6f} {}>".format(self.etype, self.ts, self.fields)
