"""The SysProf toolkit facade: install, start, query, stop.

Wires the five architectural components onto a simulated cluster:
Kprof (per node), LPAs (per node), the dissemination daemon (per node),
publish-subscribe channels, the GPA (one management node), and the
controller.  This is the public entry point downstream users should
reach for::

    cluster = Cluster(seed=1)
    ...  # build nodes and applications
    sysprof = SysProf(cluster)
    sysprof.install(monitored=["proxy", "backend"], gpa_node="mgmt")
    sysprof.start()
    ...  # run the workload
    summary = sysprof.gpa.node_summary("proxy")
"""

from dataclasses import dataclass, field

from repro.core.channels import (
    SYSPROF_PORT_BASE,
    SYSPROF_PORT_LIMIT,
    ChannelHub,
)
from repro.core.controller import Controller
from repro.core.daemon import DisseminationDaemon
from repro.core.federation import (
    ROOT_PREFIX,
    FederationTree,
    ParentLink,
    ZoneGpa,
    ZoneSpec,
    zone_channel_prefix,
)
from repro.core.gpa import GlobalPerformanceAnalyzer
from repro.core.interactions import pending_interactions
from repro.core.kprof import Kprof, exclude_port_range
from repro.core.lpa import InteractionLPA, NodeStatsLPA, SketchLPA, SyscallLPA
from repro.observability.metrics import build_registry


@dataclass
class SysProfConfig:
    """Tunables for an installation (the controller can change most at runtime)."""

    buffer_capacity: int = 256
    window_size: int = 128
    eviction_interval: float = 0.25
    granularity: str = "interaction"
    idle_timeout: float = 1.0
    nodestats: bool = True
    syscall_stats: bool = False  # per-syscall latency aggregation LPA
    # Streaming quantile sketches per request class (latency + queue
    # depth), shipped as sysprof.sketch rows and merged at the GPA.
    latency_sketches: bool = False
    sketch_alpha: float = 0.01      # relative-error bound per sketch
    sketch_max_buckets: int = 256   # bucket-table cap before collapse
    # Seconds without nodestats before gpa.stale_nodes() flags a node
    # (also the default threshold for staleness SLO rules).
    stale_threshold: float = 1.0
    arm_correlation: bool = False  # pair interleaved requests by ARM token
    exclude_self_traffic: bool = True
    gpa_port: int = SYSPROF_PORT_BASE
    gpa_history: int = 50000
    dump_path: str = None
    dump_interval: float = None
    text_encoding: bool = False  # ablation: ship text instead of PBIO binary
    frame_dissemination: bool = True  # batched frames (False: per-record blobs)
    daemon_affinity: int = None  # pin sysprofd to a core (SMP nodes)
    # Federation: default upward forward interval for zone GPAs and the
    # per-zone eviction pacing offset.  With stagger > 0 each monitored
    # node's daemon start is delayed by (index * stagger) mod the
    # eviction interval, de-synchronizing the cluster-wide eviction herd
    # at scale; 0.0 keeps the historical everyone-at-once behavior.
    forward_interval: float = 0.5
    eviction_stagger: float = 0.0
    # Daemon reconnect pacing towards dead/unreachable subscribers.
    reconnect_backoff_base: float = 0.05
    reconnect_backoff_cap: float = 2.0
    reconnect_backoff_jitter: float = 0.25
    reconnect_max_retries: int = 12
    # Federation reparenting: member daemons and child zones that lose
    # their parent tier (publish failures past parent_loss_failures, or
    # a lease timeout) fail over to the zone's standby prefix / the root
    # and probe their way back with seeded-jitter backoff.
    reparent: bool = True
    parent_loss_failures: int = 3
    # None -> derived per link: 4x the publish interval (eviction
    # interval for member daemons, forward interval for zone uplinks).
    parent_lease_timeout: float = None
    reparent_probe_base: float = 0.5
    reparent_probe_cap: float = 4.0
    reparent_probe_jitter: float = 0.5
    extra: dict = field(default_factory=dict)


class NodeMonitor:
    """Everything SysProf runs on one monitored node."""

    def __init__(self, node, kprof, interaction_lpa, nodestats_lpa, daemon,
                 syscall_lpa=None, sketch_lpa=None):
        self.node = node
        self.kernel = node.kernel
        self.kprof = kprof
        self.interaction_lpa = interaction_lpa
        self.nodestats_lpa = nodestats_lpa
        self.syscall_lpa = syscall_lpa
        self.sketch_lpa = sketch_lpa
        self.daemon = daemon
        self.cpas = {}

    def all_lpas(self):
        lpas = []
        if self.interaction_lpa is not None:
            lpas.append(self.interaction_lpa)
        if self.nodestats_lpa is not None:
            lpas.append(self.nodestats_lpa)
        if self.syscall_lpa is not None:
            lpas.append(self.syscall_lpa)
        if self.sketch_lpa is not None:
            lpas.append(self.sketch_lpa)
        lpas.extend(self.cpas.values())
        return lpas


class SysProf:
    """An installation of the toolkit on a cluster."""

    def __init__(self, cluster, config=None, clock_table=None):
        self.cluster = cluster
        self.config = config or SysProfConfig()
        self.clock_table = clock_table
        self.hub = ChannelHub()
        self.monitors = {}
        self.gpa = None
        self.federation = None  # FederationTree when zones are installed
        self.controller = Controller(self)
        self.metrics = None  # MetricsRegistry, built by install()
        self._started = False

    # ------------------------------------------------------------------

    def install(self, monitored=None, gpa_node=None, zones=None):
        """Install Kprof/LPAs/daemons on ``monitored`` nodes (default: all)
        and the GPA on ``gpa_node`` (default: no global analyzer).

        ``zones`` is an optional list of :class:`ZoneSpec` (or equivalent
        dicts) describing a federation tree: each zone's member daemons
        publish on the zone's channel prefix, a :class:`ZoneGpa` on the
        zone's ``gpa_node`` condenses them, and condensed frames flow up
        to the parent tier (nested zones) or the root GPA.  With zones,
        ``monitored`` defaults to *no* extra flat-monitored nodes — zone
        members are installed through their specs.
        """
        if zones:
            self.federation = FederationTree()
            for spec in zones:
                self._install_zone(spec, parent_prefix=ROOT_PREFIX)
            for zone_gpa in self.federation.all_zones():
                if zone_gpa.standby and zone_gpa.standby not in self.federation.zones:
                    raise ValueError(
                        "zone {!r} names unknown standby zone {!r}".format(
                            zone_gpa.zone, zone_gpa.standby
                        )
                    )
            if monitored is None:
                monitored = []
        elif monitored is None:
            monitored = list(self.cluster.nodes)
        for name in monitored:
            self._install_node(self.cluster.node(name))
        if gpa_node is not None:
            node = self.cluster.node(gpa_node)
            self.gpa = GlobalPerformanceAnalyzer(
                node, self.hub, clock_table=self.clock_table,
                port=self.config.gpa_port, history=self.config.gpa_history,
                dump_path=self.config.dump_path,
                dump_interval=self.config.dump_interval,
                stale_threshold=self.config.stale_threshold,
            )
            self.gpa.subscribe_all()
        if self.federation is not None:
            # The adoption ledger needs the root tier to release
            # escalated members when they return to their zone.
            self.federation.root_gpa = self.gpa
        # One registry over every component's stats(), exposed through
        # /proc/sysprof/metrics on each involved node (pull-only).
        self.metrics = build_registry(self)
        return self

    def _install_zone(self, spec, parent_prefix, parent_standby=None):
        """Install one zone (and, recursively, its children).

        ``parent_standby`` is the *parent's* standby zone name: this
        zone's own uplink fails over to it when the parent tier dies,
        exactly as the zone's members fail over to ``spec.standby``.
        """
        if isinstance(spec, dict):
            spec = ZoneSpec(**spec)
        config = self.config
        prefix = zone_channel_prefix(spec.name)
        for member in spec.members:
            self._install_node(self.cluster.node(member), channel_prefix=prefix,
                               standby=spec.standby)
        node = self.cluster.node(spec.gpa_node)
        zone_gpa = ZoneGpa(
            spec.name, node, self.hub, clock_table=self.clock_table,
            port=config.gpa_port, stale_threshold=config.stale_threshold,
            parent_prefix=parent_prefix,
            forward_interval=spec.forward_interval or config.forward_interval,
            reconnect_backoff_base=config.reconnect_backoff_base,
            reconnect_backoff_cap=config.reconnect_backoff_cap,
            reconnect_backoff_jitter=config.reconnect_backoff_jitter,
            reconnect_max_retries=config.reconnect_max_retries,
        )
        zone_gpa.members = list(spec.members)
        zone_gpa.standby = spec.standby
        zone_gpa.subscribe_all()
        self.federation.add(zone_gpa)
        if config.reparent:
            zone_gpa.attach_parent_link(self._build_parent_link(
                zone_gpa.publisher, owner=zone_gpa.zone_node,
                primary_prefix=parent_prefix, standby=parent_standby,
                publish_interval=zone_gpa.forward_interval,
            ))
        for child in spec.children:
            child_spec = ZoneSpec(**child) if isinstance(child, dict) else child
            zone_gpa.children.append(child_spec.name)
            self._install_zone(child_spec, parent_prefix=prefix,
                               parent_standby=spec.standby)
        return zone_gpa

    def _build_parent_link(self, publisher, owner, primary_prefix, standby,
                           publish_interval):
        """One reparent/return state machine per upward publisher.

        ``owner`` is the name adopted tiers track (a member node, or a
        ``zone:<name>`` pseudo-node for a zone's own uplink).
        """
        config = self.config
        lease = config.parent_lease_timeout
        if lease is None:
            lease = 4.0 * publish_interval
        federation = self.federation
        return ParentLink(
            owner, publisher, self.hub,
            primary_prefix=primary_prefix,
            standby_prefix=zone_channel_prefix(standby) if standby else None,
            standby_zone=standby,
            root_prefix=ROOT_PREFIX,
            loss_failures=config.parent_loss_failures,
            lease_timeout=lease,
            probe_base=config.reparent_probe_base,
            probe_cap=config.reparent_probe_cap,
            probe_jitter=config.reparent_probe_jitter,
            on_reparent=lambda zone, member=owner: federation.note_adopted(
                member, zone
            ),
            on_return=lambda member=owner: federation.note_returned(member),
        )

    def _install_node(self, node, channel_prefix="sysprof/", standby=None):
        config = self.config
        kprof = Kprof(node.kernel).attach()
        predicate = None
        if config.exclude_self_traffic:
            predicate = exclude_port_range(SYSPROF_PORT_BASE, SYSPROF_PORT_LIMIT)
        interaction_lpa = InteractionLPA(
            node.kernel, kprof,
            buffer_capacity=config.buffer_capacity,
            window_size=config.window_size,
            predicate=predicate,
            granularity=config.granularity,
            idle_timeout=config.idle_timeout,
            arm=config.arm_correlation,
        )
        affinity = config.daemon_affinity
        if affinity is not None and affinity >= node.kernel.cpu_count:
            affinity = None  # uniprocessor nodes ignore the pin
        daemon = DisseminationDaemon(
            node, self.hub,
            eviction_interval=config.eviction_interval,
            channel_prefix=channel_prefix,
            text_encoding=config.text_encoding,
            affinity=affinity,
            frame_mode=config.frame_dissemination,
            reconnect_backoff_base=config.reconnect_backoff_base,
            reconnect_backoff_cap=config.reconnect_backoff_cap,
            reconnect_backoff_jitter=config.reconnect_backoff_jitter,
            reconnect_max_retries=config.reconnect_max_retries,
        )
        if config.reparent and channel_prefix != ROOT_PREFIX:
            # Zone members reparent on zone-GPA loss; flat daemons keep
            # the historical publish path (there is nowhere to go).
            daemon.publisher.parent_link = self._build_parent_link(
                daemon.publisher, owner=node.name,
                primary_prefix=channel_prefix, standby=standby,
                publish_interval=config.eviction_interval,
            )
        daemon.add_lpa(interaction_lpa)
        nodestats_lpa = None
        if config.nodestats:
            tracker = interaction_lpa.tracker
            nodestats_lpa = NodeStatsLPA(
                node.kernel, kprof,
                pending_probe=lambda tracker=tracker: pending_interactions(tracker),
            )
            daemon.add_lpa(nodestats_lpa)
        syscall_lpa = None
        if config.syscall_stats:
            syscall_lpa = SyscallLPA(node.kernel, kprof)
            daemon.add_lpa(syscall_lpa)
        sketch_lpa = None
        if config.latency_sketches:
            sketch_lpa = SketchLPA(
                node.kernel, kprof, interaction_lpa,
                alpha=config.sketch_alpha,
                max_buckets=config.sketch_max_buckets,
            )
            interaction_lpa.sketches = sketch_lpa
            daemon.add_lpa(sketch_lpa)
        self.monitors[node.name] = NodeMonitor(
            node, kprof, interaction_lpa, nodestats_lpa, daemon,
            syscall_lpa=syscall_lpa, sketch_lpa=sketch_lpa,
        )

    # ------------------------------------------------------------------

    def start(self):
        """Activate all analyzers, daemons, and the GPA."""
        if self._started:
            return self
        if self.gpa is not None:
            self.gpa.start()
        if self.federation is not None:
            self.federation.start()
        stagger = self.config.eviction_stagger
        interval = self.config.eviction_interval
        for index, monitor in enumerate(self.monitors.values()):
            for lpa in monitor.all_lpas():
                lpa.start()
            offset = (index * stagger) % interval if stagger > 0.0 else 0.0
            if offset > 0.0:
                # Per-zone eviction pacing: spread daemon wakeups across
                # the eviction interval so a 256-node cluster doesn't
                # fire every eviction timer at the same instant.
                self.cluster.sim.schedule(offset, monitor.daemon.start)
            else:
                monitor.daemon.start()
        self._started = True
        return self

    def stop(self):
        """Unsubscribe everything; kernels revert to negligible-cost probes."""
        for monitor in self.monitors.values():
            for lpa in monitor.all_lpas():
                lpa.stop()
            monitor.daemon.stop()
        if self.federation is not None:
            self.federation.stop()
        if self.gpa is not None:
            self.gpa.stop()
        self._started = False

    # ------------------------------------------------------------------

    def monitor(self, node_name):
        return self.monitors[node_name]

    def lpa(self, node_name):
        return self.monitors[node_name].interaction_lpa

    def kprof(self, node_name):
        return self.monitors[node_name].kprof

    def flush(self, settle=0.5):
        """End-of-run flush: close open interactions, evict buffers, and run
        the simulator briefly so in-flight channel messages reach the GPA."""
        for monitor in self.monitors.values():
            if monitor.interaction_lpa is not None:
                monitor.interaction_lpa.flush_tracker()
            for lpa in monitor.all_lpas():
                lpa.evict()
        self.cluster.sim.run(until=self.cluster.sim.now + settle)

    def local_window(self, node_name):
        """Direct read of a node's recent-interaction window (local query)."""
        return self.monitors[node_name].interaction_lpa.window_snapshot()
