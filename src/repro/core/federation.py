"""Federation tree: zone-level GPAs with bounded root bandwidth.

A flat SysProf install fans every daemon's frames into one global
aggregation point, so root ingress grows linearly with node count.  The
federation tree scales this out (ROADMAP item 1): each rack's daemons
publish on a zone-scoped channel prefix (``sysprof@<zone>/``) consumed
by a :class:`ZoneGpa`, which merges quantile sketches and class
summaries locally and forwards *condensed* frames upward on a
configurable interval over the same frame wire — merged
``sysprof.sketch`` rows, per-class ``sysprof.class_summary`` rollups,
and a single zone-health ``sysprof.nodestats`` heartbeat, all under the
zone pseudo-node name ``zone:<name>``.  Root ingress then scales with
zones × classes, not nodes × classes, and a zone-GPA kill degrades one
zone's staleness rather than the cluster's.

Zones nest: a child zone's parent prefix is its parent zone's channel
prefix, so 3-tier trees (leaf zones → super-zones → root) compose from
the same class.  Upward publication reuses the daemon's exact
endpoint/backoff machinery via
:class:`~repro.core.publisher.ChannelPublisher`.
"""

from dataclasses import dataclass, field

from repro.core import encoding
from repro.core.channels import SYSPROF_PORT_BASE
from repro.core.lpa import CLASS_SUMMARY_FORMAT, NODE_STATS_FORMAT, SKETCH_FORMAT
from repro.core.publisher import ChannelPublisher
from repro.core.tier import AnalyzerTier
from repro.observability.sketches import QuantileSketch

#: Prefix for zone pseudo-node names in upward-forwarded rows.  The
#: resulting name must fit the record formats' ``str16`` node field, so
#: zone names are capped at 11 characters.
ZONE_NODE_PREFIX = "zone:"


def zone_channel_prefix(zone):
    """The channel prefix a zone's member daemons publish on."""
    return "sysprof@{}/".format(zone)


@dataclass
class ZoneSpec:
    """Declarative description of one zone for ``SysProf.install``."""

    name: str
    gpa_node: str
    members: list = field(default_factory=list)
    children: list = field(default_factory=list)  # nested ZoneSpecs
    forward_interval: float = None  # None -> SysProfConfig default


class ZoneGpa(AnalyzerTier):
    """One federation tier: ingests a zone's frames, forwards condensed
    rollups to the parent tier."""

    task_name = "zone-gpa"
    conn_task_name = "zone-gpa-conn"

    def __init__(self, zone, node, hub, clock_table=None, port=SYSPROF_PORT_BASE,
                 history=20000, stale_threshold=1.0, parent_prefix="sysprof/",
                 forward_interval=0.5,
                 reconnect_backoff_base=0.05, reconnect_backoff_cap=2.0,
                 reconnect_backoff_jitter=0.25, reconnect_max_retries=12):
        zone_node = ZONE_NODE_PREFIX + zone
        if len(zone_node) > 16:
            raise ValueError(
                "zone name {!r} too long for the str16 node field".format(zone)
            )
        super().__init__(
            node, hub, clock_table=clock_table, port=port, history=history,
            stale_threshold=stale_threshold,
            channel_prefix=zone_channel_prefix(zone),
        )
        self.zone = zone
        self.zone_node = zone_node
        self.parent_prefix = parent_prefix
        self.forward_interval = forward_interval
        self.members = []  # monitored node names (filled by the installer)
        self.children = []  # nested zone names (filled by the installer)
        self.publisher = ChannelPublisher(
            node, hub, channel_prefix=parent_prefix,
            rng_label="zonegpa.backoff.{}".format(node.name),
            reconnect_backoff_base=reconnect_backoff_base,
            reconnect_backoff_cap=reconnect_backoff_cap,
            reconnect_backoff_jitter=reconnect_backoff_jitter,
            reconnect_max_retries=reconnect_max_retries,
            pid_fn=lambda: self._forward_task.pid if self._forward_task else 0,
        )
        # Formats this tier *produces* (separate from the ingest registry,
        # which is rebuilt on restart as descriptors are re-learned).
        self.out_registry = encoding.FormatRegistry()
        # Condensation state accumulated since the last forward; exact:
        # sketch merges are lossless bucket additions, summaries are
        # count-weighted.  Dies with the process on kill().
        self._pending_sketches = {}  # (class, metric) -> [sketch, start, end]
        self._pending_classes = {}  # class -> weighted accumulator
        self._member_last = {}  # member node -> latest nodestats record
        self._forward_task = None
        self.forwards = 0
        self.rows_forwarded = 0
        self.sketch_merges = 0

    # -- lifecycle -------------------------------------------------------

    def _start_aux(self):
        self._forward_task = self.node.spawn("zone-gpa-fwd", self._forwarder)
        self._forward_task.category = "analyzer"

    def _aux_tasks(self):
        return [self._forward_task]

    def _on_killed(self):
        self._forward_task = None
        self._pending_sketches = {}
        self._pending_classes = {}
        self._member_last = {}
        # Upward sockets died with the process; the parent tier observes
        # resets and our next forward reconnects + re-sends descriptors.
        self.publisher.forget_all()

    # -- ingest-side condensation ---------------------------------------

    def ingest(self, format_name, records):
        super().ingest(format_name, records)
        if format_name == "sysprof.sketch":
            self._accumulate_sketches(records)
        elif format_name == "sysprof.class_summary":
            self._accumulate_summaries(records)
        elif format_name == "sysprof.nodestats":
            for record in records:
                self._member_last[record["node"]] = record

    def _to_reference(self, node, ts):
        table = self.store.clock_table
        if table is not None and table.known(node):
            return table.to_reference(node, ts)
        return ts

    def _accumulate_sketches(self, records):
        """Merge incoming sketch rows into the pending per-(class, metric)
        rollup at ingest time — windows are never re-read from the store,
        so nothing is dropped or double-counted across forward intervals."""
        pending = self._pending_sketches
        for record in records:
            key = (record["request_class"], record["metric"])
            sketch = QuantileSketch.from_row(record)
            node = record["node"]
            start = self._to_reference(node, record["window_start"])
            end = self._to_reference(node, record["window_end"])
            entry = pending.get(key)
            if entry is None:
                pending[key] = [sketch, start, end]
            else:
                entry[0].merge(sketch)
                entry[1] = min(entry[1], start)
                entry[2] = max(entry[2], end)
                self.sketch_merges += 1

    def _accumulate_summaries(self, records):
        pending = self._pending_classes
        for record in records:
            count = record["count"]
            node = record["node"]
            start = self._to_reference(node, record["window_start"])
            end = self._to_reference(node, record["window_end"])
            acc = pending.get(record["request_class"])
            if acc is None:
                acc = pending[record["request_class"]] = {
                    "count": 0, "latency": 0.0, "kernel": 0.0, "user": 0.0,
                    "wait": 0.0, "bytes": 0, "start": start, "end": end,
                }
            acc["count"] += count
            acc["latency"] += record["mean_latency"] * count
            acc["kernel"] += record["mean_kernel_time"] * count
            acc["user"] += record["mean_user_time"] * count
            acc["wait"] += record["mean_kernel_wait"] * count
            acc["bytes"] += record["total_bytes"]
            acc["start"] = min(acc["start"], start)
            acc["end"] = max(acc["end"], end)

    # -- upward forwarding ----------------------------------------------

    def _forwarder(self, ctx):
        while not self._stopped:
            yield from ctx.sleep(self.forward_interval)
            yield from self._forward_up(ctx)

    def _forward_up(self, ctx):
        costs = self.node.kernel.costs
        zone_node = self.zone_node
        sketch_rows = []
        for key in sorted(self._pending_sketches):
            sketch, start, end = self._pending_sketches[key]
            request_class, metric = key
            sketch_rows.append(
                sketch.to_row(zone_node, request_class, metric, start, end)
            )
        self._pending_sketches = {}
        summary_rows = []
        for request_class in sorted(self._pending_classes):
            acc = self._pending_classes[request_class]
            count = acc["count"]
            if not count:
                continue
            summary_rows.append((
                zone_node, request_class, acc["start"], acc["end"], count,
                acc["latency"] / count, acc["kernel"] / count,
                acc["user"] / count, acc["wait"] / count, acc["bytes"],
            ))
        self._pending_classes = {}
        stats_rows = []
        if self._member_last:
            # One zone-health heartbeat: newest member timestamp
            # (reference timescale), resource fields summed across the
            # zone.  Kept across windows so quiet zones still report —
            # the parent's staleness detector watches the *zone*, the
            # zone's own detector watches members.
            newest = 0.0
            busy = user = kernel = 0.0
            run_queue = ctx_switches = backlog = pending = 0
            for node, record in self._member_last.items():
                newest = max(newest, self._to_reference(node, record["ts"]))
                busy += record["cpu_busy"]
                user += record["cpu_user"]
                kernel += record["cpu_kernel"]
                run_queue += record["run_queue"]
                ctx_switches += record["ctx_switches"]
                backlog += record["rx_backlog_bytes"]
                pending += record["pending_interactions"]
            stats_rows.append((zone_node, newest, busy, user, kernel,
                               run_queue, ctx_switches, backlog, pending))
        for fmt_spec, rows in ((SKETCH_FORMAT, sketch_rows),
                               (CLASS_SUMMARY_FORMAT, summary_rows),
                               (NODE_STATS_FORMAT, stats_rows)):
            if not rows:
                continue
            fmt = self.out_registry.register(*fmt_spec)
            count = len(rows)
            yield from ctx.compute(
                costs.frame_encode_base + costs.record_encode * count
            )
            blob = encoding.encode_frame(fmt, rows)
            yield from self.publisher.publish(ctx, fmt, blob, "sysprof-frame")
            self.rows_forwarded += count
        self.forwards += 1

    # -- reporting -------------------------------------------------------

    def stats(self):
        result = {
            "records_received": self.records_received,
            "interactions": len(self.interactions),
            "class_summaries": len(self.class_summaries),
            "nodes_reporting": sorted(self.node_stats),
            "frames_received": self.frames_received_base
            + self.frame_decoder.frames_decoded,
            "decode_errors": self.decode_errors,
            "ingress_bytes": self.bytes_received,
            "sketch_rows": self.sketches.rows_ingested,
            "sketch_series": len(self.sketches.series),
            "sketch_merges": self.sketch_merges,
            "forwards": self.forwards,
            "rows_forwarded": self.rows_forwarded,
            "queries_served": self.queries_served,
            "restarts": self.restarts,
        }
        for key, value in self.publisher.stats().items():
            result[key] = value
        return result


class FederationTree:
    """Registry of a SysProf installation's zone GPAs."""

    def __init__(self):
        self.zones = {}  # zone name -> ZoneGpa, parents before children

    def add(self, zone_gpa):
        if zone_gpa.zone in self.zones:
            raise ValueError("duplicate zone name: {}".format(zone_gpa.zone))
        self.zones[zone_gpa.zone] = zone_gpa
        return zone_gpa

    def zone(self, name):
        return self.zones[name]

    def all_zones(self):
        return list(self.zones.values())

    def top_level(self):
        """Zones forwarding straight to the root (``sysprof/`` prefix)."""
        return [z for z in self.zones.values() if z.parent_prefix == "sysprof/"]

    def root_candidates(self):
        """Pseudo-node names the root tier sees for its direct children."""
        return [z.zone_node for z in self.top_level()]

    def locate_member(self, node_name):
        """The zone GPA whose members include ``node_name`` (None if flat)."""
        for zone_gpa in self.zones.values():
            if node_name in zone_gpa.members:
                return zone_gpa
        return None

    def start(self):
        for zone_gpa in self.zones.values():
            zone_gpa.start()

    def stop(self):
        for zone_gpa in self.zones.values():
            zone_gpa.stop()
