"""Federation tree: zone-level GPAs with bounded root bandwidth.

A flat SysProf install fans every daemon's frames into one global
aggregation point, so root ingress grows linearly with node count.  The
federation tree scales this out (ROADMAP item 1): each rack's daemons
publish on a zone-scoped channel prefix (``sysprof@<zone>/``) consumed
by a :class:`ZoneGpa`, which merges quantile sketches and class
summaries locally and forwards *condensed* frames upward on a
configurable interval over the same frame wire — merged
``sysprof.sketch`` rows, per-class ``sysprof.class_summary`` rollups,
and a single zone-health ``sysprof.nodestats`` heartbeat, all under the
zone pseudo-node name ``zone:<name>``.  Root ingress then scales with
zones × classes, not nodes × classes, and a zone-GPA kill degrades one
zone's staleness rather than the cluster's.

Zones nest: a child zone's parent prefix is its parent zone's channel
prefix, so 3-tier trees (leaf zones → super-zones → root) compose from
the same class.  Upward publication reuses the daemon's exact
endpoint/backoff machinery via
:class:`~repro.core.publisher.ChannelPublisher`.

Partition tolerance: every upward publisher can carry a
:class:`ParentLink` — a reparent/return state machine.  When the parent
tier goes quiet (publish failures past ``loss_failures``, or a lease
timeout after the first failure), the link fails over to the zone's
configured standby prefix (or escalates to the root prefix), then
probes the original parent with seeded-jitter exponential backoff and
returns once it answers.  :class:`FederationTree` tracks which tier is
currently *adopting* each failed-over member so staleness detection and
blame descent follow the rewired path without double-counting.
"""

from dataclasses import dataclass, field
from typing import Optional

from repro.core import encoding
from repro.core.channels import SYSPROF_PORT_BASE
from repro.core.lpa import CLASS_SUMMARY_FORMAT, NODE_STATS_FORMAT, SKETCH_FORMAT
from repro.core.publisher import ChannelPublisher
from repro.core.tier import AnalyzerTier
from repro.observability.sketches import QuantileSketch

#: Prefix for zone pseudo-node names in upward-forwarded rows.  The
#: resulting name must fit the record formats' ``str16`` node field, so
#: zone names are capped at 11 characters.
ZONE_NODE_PREFIX = "zone:"


#: The root tier's channel prefix (flat installs and the top of the tree).
ROOT_PREFIX = "sysprof/"


def zone_channel_prefix(zone):
    """The channel prefix a zone's member daemons publish on."""
    return "sysprof@{}/".format(zone)


@dataclass
class ZoneSpec:
    """Declarative description of one zone for ``SysProf.install``."""

    name: str
    gpa_node: str
    members: list = field(default_factory=list)
    children: list = field(default_factory=list)  # nested ZoneSpecs
    forward_interval: Optional[float] = None  # None -> SysProfConfig default
    # Zone that covers for this one when its GPA dies: members (and
    # child zones) reparent to the standby's channel prefix instead of
    # escalating straight to the root.  None -> escalate to root.
    standby: Optional[str] = None


class ParentLink:
    """Reparent/return state machine for one tier's upward publisher.

    Wraps a :class:`~repro.core.publisher.ChannelPublisher`.  The
    publisher notifies the link of every send outcome; the link holds a
    *lease* on the parent (renewed by successful sends) and, once the
    parent looks dead — ``loss_failures`` consecutive failures, or
    ``lease_timeout`` seconds past the first unacknowledged failure —
    switches the publisher onto the next fallback prefix (standby zone,
    then root).  Descriptor re-send comes for free: the new endpoints
    have no entry in the publisher's socket-identity format map.

    While failed over, the link probes the primary endpoint with
    exponential backoff times seeded jitter (a lazy RNG substream drawn
    only after a failure, so fault-free runs stay byte-identical) and
    returns as soon as the primary accepts a connection — the probe
    socket is adopted as the live publish socket.

    With no fallbacks (a top-level zone whose parent *is* the root) the
    link still enters failover as a probe-only state: it revives the
    abandoned endpoint when the root returns, fixing the permanent
    blackout a spent retry budget used to cause.
    """

    #: Any tier channel works for probing — all of a tier's channels
    #: share one (node, port) endpoint.
    PROBE_FORMAT = "sysprof.nodestats"

    def __init__(self, name, publisher, hub, primary_prefix,
                 standby_prefix=None, standby_zone=None,
                 root_prefix=ROOT_PREFIX, loss_failures=3, lease_timeout=1.0,
                 probe_base=0.5, probe_cap=4.0, probe_jitter=0.5,
                 on_reparent=None, on_return=None):
        self.name = name
        self.publisher = publisher
        self.hub = hub
        self.primary_prefix = primary_prefix
        self.loss_failures = max(1, int(loss_failures))
        self.lease_timeout = float(lease_timeout)
        self.probe_base = probe_base
        self.probe_cap = probe_cap
        self.probe_jitter = probe_jitter
        self.on_reparent = on_reparent  # fn(zone_name_or_None) on target switch
        self.on_return = on_return      # fn() when back on the primary
        # Fallback ladder: (prefix, zone name or None for the root).
        self._fallbacks = []
        if standby_prefix and standby_prefix != primary_prefix:
            self._fallbacks.append((standby_prefix, standby_zone))
        if root_prefix != primary_prefix and all(
                prefix != root_prefix for prefix, _zone in self._fallbacks):
            self._fallbacks.append((root_prefix, None))
        self.state = "primary"
        self._target_index = -1  # index into _fallbacks while failed over
        self._consecutive_failures = 0
        self._first_failure_at = None
        self._failover_at = None
        self._next_probe_at = 0.0
        self._probe_round = 0
        self._rng = None
        self.last_ok = None
        self.reparents = 0
        self.escalations = 0
        self.returns = 0
        self.probes = 0
        self.probe_failures = 0
        self.coverage_gap_s = 0.0  # summed failover-window seconds
        self.events = []  # [{"at", "event", "target", "reason"}]
        self.listeners = []  # host-side fns: fn(link_name, event_dict)

    # -- publisher callbacks --------------------------------------------

    def note_success(self, now):
        """A send reached the current target: renew the lease."""
        self.last_ok = now
        self._consecutive_failures = 0
        self._first_failure_at = None

    def note_failure(self, now):
        """A send or connect toward the current target failed."""
        self._consecutive_failures += 1
        if self._first_failure_at is None:
            self._first_failure_at = now
        if self._consecutive_failures >= self.loss_failures:
            self._advance(now, reason="retry-budget")

    def check(self, ctx):
        """Called at the top of every publish cycle.  Zero yields while
        healthy; drives the lease timeout and the paced return probe."""
        now = ctx.now
        if (self._first_failure_at is not None
                and now - self._first_failure_at >= self.lease_timeout):
            self._advance(now, reason="lease-timeout")
        if self.state != "failover" or now < self._next_probe_at:
            return
        yield from self._probe_primary(ctx)

    # -- state transitions ----------------------------------------------

    def _advance(self, now, reason):
        self._consecutive_failures = 0
        self._first_failure_at = None
        if self.state == "primary":
            self.state = "failover"
            self._failover_at = now
            self._probe_round = 0
            self._schedule_probe(now)
            self.reparents += 1
            if self._fallbacks:
                self._target_index = 0
                prefix, zone = self._fallbacks[0]
                self.publisher.channel_prefix = prefix
                self._record(now, "reparent", zone or "root", reason)
                if self.on_reparent is not None:
                    self.on_reparent(zone)
            else:
                self._record(now, "probe-only", "primary", reason)
        elif self._target_index + 1 < len(self._fallbacks):
            # The standby died too: escalate one rung up the ladder.
            self._target_index += 1
            prefix, zone = self._fallbacks[self._target_index]
            self.publisher.channel_prefix = prefix
            self.escalations += 1
            self._record(now, "escalate", zone or "root", reason)
            if self.on_reparent is not None:
                self.on_reparent(zone)

    def _probe_primary(self, ctx):
        self.probes += 1
        self._probe_round += 1
        self._schedule_probe(ctx.now)
        endpoints = self.hub.subscribers(self.primary_prefix + self.PROBE_FORMAT)
        if not endpoints:
            self.probe_failures += 1
            return
        endpoint = endpoints[0]
        try:
            sock = yield from ctx.connect(*endpoint)
        except Exception:
            self.probe_failures += 1
            yield from ctx.kcompute(
                self.publisher.node.kernel.costs.daemon_reconnect
            )
            return
        self._return_to_primary(ctx.now, endpoint, sock)

    def _return_to_primary(self, now, endpoint, sock):
        was_reparented = self._target_index >= 0
        self.publisher.channel_prefix = self.primary_prefix
        # The probe connection becomes the live socket; the fresh
        # descriptor set means every format is re-sent to the reborn
        # parent (its decode registry died with the old process).
        self.publisher.adopt_socket(endpoint, sock)
        self.state = "primary"
        self._target_index = -1
        self._consecutive_failures = 0
        self._first_failure_at = None
        if self._failover_at is not None:
            self.coverage_gap_s += now - self._failover_at
            self._failover_at = None
        self.returns += 1
        self._record(now, "return", "primary", "probe-connected")
        if was_reparented and self.on_return is not None:
            self.on_return()

    def _schedule_probe(self, now):
        delay = min(
            self.probe_cap,
            self.probe_base * (2.0 ** min(self._probe_round, 8)),
        )
        if self.probe_jitter:
            delay *= 1.0 + self.probe_jitter * self._jitter_rng().random()
        self._next_probe_at = now + delay

    def _jitter_rng(self):
        """Lazy seeded substream — only ever drawn after a parent loss,
        so fault-free digests are unchanged; seeded per link, so a rack
        of members spreads its return probes instead of stampeding."""
        if self._rng is None:
            self._rng = self.publisher.node.cluster.streams.stream(
                "reparent.{}".format(self.name)
            )
        return self._rng

    def _record(self, now, event, target, reason):
        entry = {"at": now, "event": event, "target": target, "reason": reason}
        self.events.append(entry)
        # Listeners (the service layer's reparent stream) are observers:
        # they run on the host side and must not touch the simulation.
        for fn in list(self.listeners):
            fn(self.name, entry)

    # -- reporting -------------------------------------------------------

    def stats(self):
        gap = self.coverage_gap_s
        return {
            "failed_over": 1 if self.state == "failover" else 0,
            "reparents": self.reparents,
            "escalations": self.escalations,
            "returns": self.returns,
            "probes": self.probes,
            "probe_failures": self.probe_failures,
            "coverage_gap_s": round(gap, 6),
        }


class ZoneGpa(AnalyzerTier):
    """One federation tier: ingests a zone's frames, forwards condensed
    rollups to the parent tier."""

    task_name = "zone-gpa"
    conn_task_name = "zone-gpa-conn"

    def __init__(self, zone, node, hub, clock_table=None, port=SYSPROF_PORT_BASE,
                 history=20000, stale_threshold=1.0, parent_prefix="sysprof/",
                 forward_interval=0.5,
                 reconnect_backoff_base=0.05, reconnect_backoff_cap=2.0,
                 reconnect_backoff_jitter=0.25, reconnect_max_retries=12):
        zone_node = ZONE_NODE_PREFIX + zone
        if len(zone_node) > 16:
            raise ValueError(
                "zone name {!r} too long for the str16 node field".format(zone)
            )
        super().__init__(
            node, hub, clock_table=clock_table, port=port, history=history,
            stale_threshold=stale_threshold,
            channel_prefix=zone_channel_prefix(zone),
        )
        self.zone = zone
        self.zone_node = zone_node
        self.parent_prefix = parent_prefix
        self.forward_interval = forward_interval
        self.members = []  # monitored node names (filled by the installer)
        self.children = []  # nested zone names (filled by the installer)
        self.standby = None  # standby zone name (filled by the installer)
        self.publisher = ChannelPublisher(
            node, hub, channel_prefix=parent_prefix,
            rng_label="zonegpa.backoff.{}".format(node.name),
            reconnect_backoff_base=reconnect_backoff_base,
            reconnect_backoff_cap=reconnect_backoff_cap,
            reconnect_backoff_jitter=reconnect_backoff_jitter,
            reconnect_max_retries=reconnect_max_retries,
            pid_fn=lambda: self._forward_task.pid if self._forward_task else 0,
        )
        # Formats this tier *produces* (separate from the ingest registry,
        # which is rebuilt on restart as descriptors are re-learned).
        self.out_registry = encoding.FormatRegistry()
        # Condensation state accumulated since the last forward; exact:
        # sketch merges are lossless bucket additions, summaries are
        # count-weighted.  Dies with the process on kill().
        self._pending_sketches = {}  # (class, metric) -> [sketch, start, end]
        self._pending_classes = {}  # class -> weighted accumulator
        self._member_last = {}  # member node -> latest nodestats record
        self._forward_task = None
        self.forwards = 0
        self.rows_forwarded = 0
        self.forward_failures = 0
        self.sketch_merges = 0

    # -- lifecycle -------------------------------------------------------

    @property
    def parent_link(self):
        return self.publisher.parent_link

    def attach_parent_link(self, link):
        """Install a :class:`ParentLink` on the upward publisher."""
        self.publisher.parent_link = link
        return link

    def _start_aux(self):
        self._forward_task = self.node.spawn("zone-gpa-fwd", self._forwarder)
        self._forward_task.category = "analyzer"

    def _aux_tasks(self):
        return [self._forward_task]

    def stop(self):
        flush_needed = (
            not self._stopped and self._server_task is not None
            and bool(self._pending_sketches or self._pending_classes)
        )
        super().stop()
        if flush_needed:
            # The forwarder exits at its next wakeup without another
            # forward pass, so rows condensed since the last interval
            # would silently die with the shutdown.  Flush them once.
            task = self.node.spawn("zone-gpa-flush", self._forward_up)
            task.category = "analyzer"

    def _on_killed(self):
        self._forward_task = None
        self._pending_sketches = {}
        self._pending_classes = {}
        self._member_last = {}
        # Upward sockets died with the process; the parent tier observes
        # resets and our next forward reconnects + re-sends descriptors.
        self.publisher.forget_all()

    def release_member(self, node_name):
        """Drop an adopted member's traces when it returns to its own
        zone, so the heartbeat sums and staleness view stop counting it."""
        super().release_member(node_name)
        self._member_last.pop(node_name, None)

    # -- ingest-side condensation ---------------------------------------

    def ingest(self, format_name, records):
        super().ingest(format_name, records)
        if format_name == "sysprof.sketch":
            self._accumulate_sketches(records)
        elif format_name == "sysprof.class_summary":
            self._accumulate_summaries(records)
        elif format_name == "sysprof.nodestats":
            for record in records:
                self._member_last[record["node"]] = record

    def _to_reference(self, node, ts):
        table = self.store.clock_table
        if table is not None and table.known(node):
            return table.to_reference(node, ts)
        return ts

    def _accumulate_sketches(self, records):
        """Merge incoming sketch rows into the pending per-(class, metric)
        rollup at ingest time — windows are never re-read from the store,
        so nothing is dropped or double-counted across forward intervals."""
        pending = self._pending_sketches
        for record in records:
            key = (record["request_class"], record["metric"])
            sketch = QuantileSketch.from_row(record)
            node = record["node"]
            start = self._to_reference(node, record["window_start"])
            end = self._to_reference(node, record["window_end"])
            entry = pending.get(key)
            if entry is None:
                pending[key] = [sketch, start, end]
            else:
                entry[0].merge(sketch)
                entry[1] = min(entry[1], start)
                entry[2] = max(entry[2], end)
                self.sketch_merges += 1

    def _accumulate_summaries(self, records):
        pending = self._pending_classes
        for record in records:
            count = record["count"]
            node = record["node"]
            start = self._to_reference(node, record["window_start"])
            end = self._to_reference(node, record["window_end"])
            acc = pending.get(record["request_class"])
            if acc is None:
                acc = pending[record["request_class"]] = {
                    "count": 0, "latency": 0.0, "kernel": 0.0, "user": 0.0,
                    "wait": 0.0, "bytes": 0, "start": start, "end": end,
                }
            acc["count"] += count
            acc["latency"] += record["mean_latency"] * count
            acc["kernel"] += record["mean_kernel_time"] * count
            acc["user"] += record["mean_user_time"] * count
            acc["wait"] += record["mean_kernel_wait"] * count
            acc["bytes"] += record["total_bytes"]
            acc["start"] = min(acc["start"], start)
            acc["end"] = max(acc["end"], end)

    # -- upward forwarding ----------------------------------------------

    def _forwarder(self, ctx):
        while True:
            yield from ctx.sleep(self.forward_interval)
            if self._stopped:
                break
            yield from self._forward_up(ctx)

    def _forward_up(self, ctx):
        costs = self.node.kernel.costs
        zone_node = self.zone_node
        # Detach the pending windows but keep them at hand: a failed or
        # abandoned upward publish re-merges them into the (possibly
        # already refilling) next interval instead of dropping them.
        pending_sketches = self._pending_sketches
        self._pending_sketches = {}
        sketch_rows = []
        for key in sorted(pending_sketches):
            sketch, start, end = pending_sketches[key]
            request_class, metric = key
            sketch_rows.append(
                sketch.to_row(zone_node, request_class, metric, start, end)
            )
        pending_classes = self._pending_classes
        self._pending_classes = {}
        summary_rows = []
        for request_class in sorted(pending_classes):
            acc = pending_classes[request_class]
            count = acc["count"]
            if not count:
                continue
            summary_rows.append((
                zone_node, request_class, acc["start"], acc["end"], count,
                acc["latency"] / count, acc["kernel"] / count,
                acc["user"] / count, acc["wait"] / count, acc["bytes"],
            ))
        self._evict_stale_members(ctx.now)
        stats_rows = []
        if self._member_last:
            # One zone-health heartbeat: newest member timestamp
            # (reference timescale), resource fields summed across the
            # zone.  Kept across windows so quiet zones still report —
            # the parent's staleness detector watches the *zone*, the
            # zone's own detector watches members.
            newest = 0.0
            busy = user = kernel = 0.0
            run_queue = ctx_switches = backlog = pending = 0
            for node, record in self._member_last.items():
                newest = max(newest, self._to_reference(node, record["ts"]))
                busy += record["cpu_busy"]
                user += record["cpu_user"]
                kernel += record["cpu_kernel"]
                run_queue += record["run_queue"]
                ctx_switches += record["ctx_switches"]
                backlog += record["rx_backlog_bytes"]
                pending += record["pending_interactions"]
            stats_rows.append((zone_node, newest, busy, user, kernel,
                               run_queue, ctx_switches, backlog, pending))
        # The heartbeat needs no retention: _member_last is not consumed
        # by a forward, so the next interval re-reports the zone anyway.
        for fmt_spec, rows, retained in (
                (SKETCH_FORMAT, sketch_rows, pending_sketches),
                (CLASS_SUMMARY_FORMAT, summary_rows, pending_classes),
                (NODE_STATS_FORMAT, stats_rows, None)):
            if not rows:
                continue
            fmt = self.out_registry.register(*fmt_spec)
            count = len(rows)
            yield from ctx.compute(
                costs.frame_encode_base + costs.record_encode * count
            )
            blob = encoding.encode_frame(fmt, rows)
            delivered = yield from self.publisher.publish(
                ctx, fmt, blob, "sysprof-frame"
            )
            if delivered:
                self.rows_forwarded += count
            elif self.hub.subscribers(self.publisher.channel_prefix + fmt.name):
                # A parent exists but the window never reached it (dead
                # peer, backoff window, abandoned endpoint): keep the
                # rollup for the next interval.  With no subscriber at
                # all nothing downstream wants the rows — drop them as
                # before so pending state cannot grow without bound.
                self.forward_failures += 1
                if retained is not None:
                    self._retain(fmt.name, retained)
        self.forwards += 1

    def _evict_stale_members(self, now_ref):
        """Satellite of the heartbeat sum: a crashed member's final
        nodestats must not inflate the summed zone-health fields forever.
        Members quiet past the stale threshold leave the heartbeat (the
        zone's own ``stale_nodes()`` already flagged them)."""
        for node in list(self._member_last):
            record = self._member_last[node]
            if now_ref - self._to_reference(node, record["ts"]) > self.stale_threshold:
                del self._member_last[node]

    def _retain(self, format_name, retained):
        """Re-merge an undelivered condensation window into the pending
        state (which may already hold rows ingested mid-publish)."""
        if format_name == "sysprof.sketch":
            pending = self._pending_sketches
            for key, entry in retained.items():
                current = pending.get(key)
                if current is None:
                    pending[key] = entry
                else:
                    current[0].merge(entry[0])
                    current[1] = min(current[1], entry[1])
                    current[2] = max(current[2], entry[2])
        else:
            pending = self._pending_classes
            for request_class, acc in retained.items():
                current = pending.get(request_class)
                if current is None:
                    pending[request_class] = acc
                else:
                    for field_name in ("count", "latency", "kernel",
                                       "user", "wait", "bytes"):
                        current[field_name] += acc[field_name]
                    current["start"] = min(current["start"], acc["start"])
                    current["end"] = max(current["end"], acc["end"])

    # -- reporting -------------------------------------------------------

    def stats(self):
        result = {
            "records_received": self.records_received,
            "interactions": len(self.interactions),
            "class_summaries": len(self.class_summaries),
            "nodes_reporting": sorted(self.node_stats),
            "frames_received": self.frames_received_base
            + self.frame_decoder.frames_decoded,
            "decode_errors": self.decode_errors,
            "ingress_bytes": self.bytes_received,
            "sketch_rows": self.sketches.rows_ingested,
            "sketch_series": len(self.sketches.series),
            "sketch_merges": self.sketch_merges,
            "forwards": self.forwards,
            "rows_forwarded": self.rows_forwarded,
            "forward_failures": self.forward_failures,
            "queries_served": self.queries_served,
            "restarts": self.restarts,
        }
        for key, value in self.publisher.stats().items():
            result[key] = value
        return result


class FederationTree:
    """Registry of a SysProf installation's zone GPAs.

    Also the adoption ledger for reparenting: while a member (or child
    zone pseudo-node) is failed over, :attr:`adopted` maps it to the
    zone currently covering for its parent (``None`` = the root).  The
    ledger keeps staleness and blame descent on the rewired path, and
    releases the adopter's per-member state on return so nothing is
    double-counted.
    """

    def __init__(self):
        self.zones = {}  # zone name -> ZoneGpa, parents before children
        self.root_gpa = None  # set by SysProf.install when a root exists
        self.adopted = {}  # member/pseudo-node -> adopting zone (None=root)

    def add(self, zone_gpa):
        if zone_gpa.zone in self.zones:
            raise ValueError("duplicate zone name: {}".format(zone_gpa.zone))
        self.zones[zone_gpa.zone] = zone_gpa
        return zone_gpa

    # -- reparenting ledger ---------------------------------------------

    def _adopter_tier(self, zone):
        return self.zones.get(zone) if zone is not None else self.root_gpa

    def note_adopted(self, member, zone):
        """``member`` now publishes to ``zone`` (None = the root prefix)."""
        if member in self.adopted and self.adopted[member] != zone:
            # Escalation: the previous adopter (a dead standby) must not
            # keep the member's last rows in its heartbeat sums.
            previous = self._adopter_tier(self.adopted[member])
            if previous is not None:
                previous.release_member(member)
        self.adopted[member] = zone

    def note_returned(self, member):
        """``member`` is back on its primary parent; scrub the adopter."""
        if member not in self.adopted:
            return
        zone = self.adopted.pop(member)
        tier = self._adopter_tier(zone)
        if tier is not None:
            tier.release_member(member)

    def adopted_members(self, zone):
        """Members currently publishing into ``zone`` as their standby."""
        return sorted(m for m, z in self.adopted.items() if z == zone)

    def root_adopted(self):
        """Members currently escalated straight to the root prefix."""
        return sorted(m for m, z in self.adopted.items() if z is None)

    def zone(self, name):
        return self.zones[name]

    def all_zones(self):
        return list(self.zones.values())

    def top_level(self):
        """Zones forwarding straight to the root (``sysprof/`` prefix)."""
        return [z for z in self.zones.values() if z.parent_prefix == ROOT_PREFIX]

    def root_candidates(self):
        """Pseudo-node names the root tier sees for its direct children."""
        return [z.zone_node for z in self.top_level()]

    def locate_member(self, node_name):
        """The zone GPA whose members include ``node_name`` (None if flat)."""
        for zone_gpa in self.zones.values():
            if node_name in zone_gpa.members:
                return zone_gpa
        return None

    def start(self):
        for zone_gpa in self.zones.values():
            zone_gpa.start()

    def stop(self):
        for zone_gpa in self.zones.values():
            zone_gpa.stop()
