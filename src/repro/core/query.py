"""Remote GPA queries.

Paper §2: "Other nodes in the system can query the GPA to determine
information about a particular interaction or about the system as a
whole."  This module provides the query side of that interface: any task
on any node opens a connection to the GPA's port and exchanges
``sysprof-query`` / ``sysprof-result`` messages.  Queries and results are
small structured payloads; result sets reuse the GPA's in-memory records.

Supported query kinds:

* ``node_summary``   — aggregate interaction metrics for one node;
* ``server_load``    — latest utilization/queue snapshot for one node;
* ``interactions``   — filtered interaction records (bounded count);
* ``stats``          — the GPA's own counters.
"""

_QUERY_BYTES = 160

# Process-global aggregate over every client instance, so the metrics
# registry can expose query activity without holding client references
# (clients are short-lived task-local objects).
_CLIENT_TOTALS = {"clients": 0, "queries_sent": 0}


def client_stats():
    """Aggregate ``stats()`` across all :class:`GpaQueryClient` objects."""
    return dict(_CLIENT_TOTALS)


class GpaQueryError(Exception):
    """The GPA rejected or failed a remote query."""


def remote_query(ctx, gpa_node, kind, port=9100, **params):
    """Generator: run one query against the GPA from any task.

    Opens a connection per call (callers doing many queries should use
    :class:`GpaQueryClient`).  Returns the decoded result object.
    """
    client = GpaQueryClient(ctx, gpa_node, port=port)
    yield from client.connect()
    result = yield from client.query(kind, **params)
    yield from client.close()
    return result


class GpaQueryClient:
    """A persistent query connection to the GPA."""

    def __init__(self, ctx, gpa_node, port=9100):
        self.ctx = ctx
        self.gpa_node = gpa_node
        self.port = port
        self.sock = None
        self.queries_sent = 0
        _CLIENT_TOTALS["clients"] += 1

    def connect(self):
        self.sock = yield from self.ctx.connect(self.gpa_node, self.port)
        return self

    def query(self, kind, **params):
        if self.sock is None:
            raise GpaQueryError("query client is not connected")
        yield from self.ctx.send_message(
            self.sock, _QUERY_BYTES, kind="sysprof-query",
            meta={"kind": kind, "params": params},
        )
        self.queries_sent += 1
        _CLIENT_TOTALS["queries_sent"] += 1
        reply = yield from self.ctx.recv_message(self.sock)
        if reply is None:
            raise GpaQueryError("GPA closed the connection")
        meta = reply.meta or {}
        if meta.get("error"):
            raise GpaQueryError(meta["error"])
        return meta.get("result")

    def close(self):
        if self.sock is not None:
            yield from self.ctx.close(self.sock)
            self.sock = None


def execute_query(gpa, kind, params):
    """GPA-side dispatch; returns ``(result, size_estimate_bytes)``."""
    params = params or {}
    if kind == "node_summary":
        result = gpa.node_summary(params["node"])
        return result, 256
    if kind == "server_load":
        result = gpa.server_load(params["node"])
        return result, 256
    if kind == "stats":
        return gpa.stats(), 256
    if kind == "interactions":
        limit = int(params.pop("limit", 50))
        records = gpa.query_interactions(
            node=params.get("node"),
            request_class=params.get("request_class"),
            since=params.get("since"),
            client_ip=params.get("client_ip"),
            server_ip=params.get("server_ip"),
        )[-limit:]
        return records, 64 + 180 * len(records)
    raise GpaQueryError("unknown query kind: {!r}".format(kind))
