"""Kprof: the SysProf kernel monitoring interface.

Kprof implements the kernel's :class:`~repro.ossim.tracepoints.Tracepoints`
interface.  Analyzers (LPAs/CPAs) register callbacks for sets of event
types, optionally guarded by predicates (pid, port range, arbitrary field
tests).  When no analyzer subscribes to an event type it costs nothing —
"when none of the analyzer(s) subscribes to events, all of them are
turned off, resulting in almost negligible perturbation".

Perturbation model: the kernel charges ``Kprof.cost(etype)`` to the
simulated CPU *before* firing, covering the probe itself plus every
subscribed callback's declared cost.  Callbacks run synchronously in the
fast path and must not block (they are plain functions, not processes).
"""

from collections import Counter

from repro.core.events import MonEvent, intern_etype
from repro.observability import tracer as _trace
from repro.ossim.tracepoints import EVENT_CLASSES, Tracepoints


class Subscription:
    __slots__ = ("name", "callback", "predicate", "fields_pred", "cost", "etypes")

    def __init__(self, name, callback, predicate, cost, etypes):
        self.name = name
        self.callback = callback
        self.predicate = predicate
        # Predicates built by the helpers below only read event *fields*
        # (via .get/[]/in, which plain dicts also support) and advertise
        # that with ``fields_only``.  fire() can then evaluate them on the
        # raw payload dict before paying for a MonEvent + clock read.
        self.fields_pred = (
            predicate if getattr(predicate, "fields_only", False) else None
        )
        self.cost = cost
        self.etypes = frozenset(etypes)

    def __repr__(self):
        return "<Subscription {} {} events>".format(self.name, len(self.etypes))


class Kprof(Tracepoints):
    """Per-node monitoring hub; install with :meth:`attach`."""

    def __init__(self, kernel, monitor_costs=None):
        self.kernel = kernel
        self.costs = monitor_costs or kernel.costs
        self._subs = {}  # etype -> [Subscription]
        # Copy-on-write view of _subs: etype -> tuple(Subscription), only
        # for un-masked types.  fire() iterates these immutable snapshots,
        # so subscribe/unsubscribe during delivery never mutates a list
        # mid-iteration and the per-fire list() copy is gone.
        self._snap = {}
        self._enabled = frozenset()
        self._cost_cache = {}
        self._split_cache = {}
        self._masked = set()  # event types force-disabled by the controller
        self.events_fired = Counter()
        self.events_delivered = 0
        self.events_suppressed = 0
        self.attached = False

    def attach(self):
        """Patch the kernel: install Kprof as its tracepoint implementation."""
        self.kernel.set_tracepoints(self)
        self.attached = True
        self.kernel.procfs.register("/proc/sysprof/kprof", self._render_stats)
        return self

    def _render_stats(self):
        lines = ["kprof node={}".format(self.kernel.name)]
        lines.append("suppressed={}".format(self.events_suppressed))
        lines.append("masked={}".format(",".join(sorted(self._masked)) or "-"))
        for etype in sorted(self.events_fired):
            lines.append("fired {}={}".format(etype, self.events_fired[etype]))
        return "\n".join(lines) + "\n"

    def detach(self):
        """Restore the unpatched kernel (all probes compiled out)."""
        from repro.ossim.tracepoints import NULL_TRACEPOINTS

        self.kernel.set_tracepoints(NULL_TRACEPOINTS)
        self.attached = False

    # ------------------------------------------------------------------
    # subscription management
    # ------------------------------------------------------------------

    def subscribe(self, etypes, callback, predicate=None, cost=None, name="lpa"):
        """Deliver events of the given types to ``callback(event)``.

        ``cost`` is the simulated CPU seconds one invocation costs
        (defaults to the cost model's ``lpa_callback``).  Returns the
        :class:`Subscription`, which is the unsubscribe handle.
        """
        etypes = self._expand(etypes)
        if cost is None:
            cost = self.costs.lpa_callback
        sub = Subscription(name, callback, predicate, cost, etypes)
        for etype in etypes:
            intern_etype(etype)
            self._subs.setdefault(etype, []).append(sub)
        self._rebuild()
        return sub

    def unsubscribe(self, sub):
        for etype in sub.etypes:
            subs = self._subs.get(etype)
            if subs and sub in subs:
                subs.remove(sub)
                if not subs:
                    del self._subs[etype]
        self._rebuild()

    def mask(self, etypes):
        """Force-disable event types regardless of subscriptions (controller)."""
        self._masked.update(self._expand(etypes))
        self._rebuild()

    def unmask(self, etypes):
        self._masked.difference_update(self._expand(etypes))
        self._rebuild()

    def _rebuild(self):
        """Refresh the copy-on-write dispatch tables after any mutation."""
        masked = self._masked
        self._snap = {
            etype: tuple(subs)
            for etype, subs in self._subs.items()
            if etype not in masked
        }
        self._enabled = frozenset(self._snap)
        self._cost_cache.clear()
        self._split_cache.clear()

    @staticmethod
    def _expand(etypes):
        """Expand event class names ('network') into their member types."""
        if isinstance(etypes, str):
            etypes = [etypes]
        expanded = []
        for etype in etypes:
            if etype in EVENT_CLASSES:
                expanded.extend(EVENT_CLASSES[etype])
            else:
                expanded.append(etype)
        return expanded

    # ------------------------------------------------------------------
    # Tracepoints interface (hot path)
    # ------------------------------------------------------------------

    def enabled(self, etype):
        return etype in self._enabled

    def cost(self, etype):
        cached = self._cost_cache.get(etype)
        if cached is not None:
            return cached
        if etype not in self._enabled:
            total = self.costs.probe_disabled
        else:
            total = self.costs.probe_fire
            for sub in self._snap[etype]:
                total += sub.cost
        self._cost_cache[etype] = total
        return total

    def cost_split(self, etype):
        cached = self._split_cache.get(etype)
        if cached is not None:
            return cached
        if etype not in self._enabled:
            split = (self.costs.probe_disabled, 0.0)
        else:
            analyzer = 0.0
            for sub in self._snap[etype]:
                analyzer += sub.cost
            split = (self.costs.probe_fire, analyzer)
        self._split_cache[etype] = split
        return split

    def fire(self, etype, sim_ts=None, **fields):
        """Deliver one tracepoint hit to the current subscribers.

        Accounting is per (event, subscription) attempt: every attempt is
        either *delivered* or *suppressed* by a predicate, and
        ``events_fired`` counts attempts so ``fired == delivered +
        suppressed`` always holds (checked in :meth:`stats`).
        """
        if etype not in self._enabled:
            return
        # ``event`` is built lazily: if every subscription rejects via a
        # fields-only predicate, neither the MonEvent nor the clock read
        # ever happens.
        event = None
        delivered = 0
        suppressed = 0
        snap = self._snap[etype]
        for sub in snap:
            predicate = sub.predicate
            if predicate is not None:
                if event is None and sub.fields_pred is not None:
                    if not predicate(fields):
                        suppressed += 1
                        continue
                else:
                    if event is None:
                        event = self._make_event(etype, sim_ts, fields)
                    if not predicate(event):
                        suppressed += 1
                        continue
            if event is None:
                event = self._make_event(etype, sim_ts, fields)
            sub.callback(event)
            delivered += 1
        self.events_fired[etype] += delivered + suppressed
        self.events_delivered += delivered
        self.events_suppressed += suppressed
        if _trace.enabled and delivered + suppressed:
            _trace.active().probe(
                self.kernel.name, etype, fields.get("pid"),
                self.kernel.sim.now if sim_ts is None else sim_ts,
            )

    def _make_event(self, etype, sim_ts, fields):
        sim_now = self.kernel.sim.now if sim_ts is None else sim_ts
        ts = self.kernel.clock.local_time(sim_now)
        return MonEvent(etype, ts, self.kernel.name, fields)

    # ------------------------------------------------------------------

    def stats(self):
        fired_total = sum(self.events_fired.values())
        if fired_total != self.events_delivered + self.events_suppressed:
            raise AssertionError(
                "kprof accounting broken: fired={} != delivered={} + "
                "suppressed={}".format(
                    fired_total, self.events_delivered, self.events_suppressed
                )
            )
        return {
            "fired": dict(self.events_fired),
            "delivered": self.events_delivered,
            "suppressed": self.events_suppressed,
            "subscribed_types": sorted(self._subs),
            "masked": sorted(self._masked),
        }


# ----------------------------------------------------------------------
# predicate helpers ("events can be pruned on the basis of process IDs,
# group IDs, or other such predicates")
#
# All of them read only event *fields* through .get/[]/in, so they work
# on a raw payload dict as well as a MonEvent; ``fields_only = True``
# advertises that and lets Kprof.fire() reject events before building a
# MonEvent at all.  Hand-written predicates that touch .ts/.node/.etype
# must NOT set the flag.
# ----------------------------------------------------------------------

def pid_predicate(pids):
    """Keep only events whose pid/sock_pid is in ``pids``."""
    pids = frozenset(pids)

    def check(event):
        pid = event.get("pid", event.get("sock_pid"))
        return pid in pids

    check.fields_only = True
    return check


def exclude_port_range(low, high):
    """Drop network events touching ports in [low, high] (e.g. SysProf's own
    dissemination traffic)."""

    def check(event):
        for key in ("src_port", "dst_port"):
            port = event.get(key)
            if port is not None and low <= port <= high:
                return False
        return True

    check.fields_only = True
    return check


def field_predicate(name, allowed):
    """Keep events whose field ``name`` is in ``allowed``."""
    allowed = frozenset(allowed)

    def check(event):
        return event.get(name) in allowed

    check.fields_only = True
    return check


def all_of(*predicates):
    """Conjunction of predicates."""

    def check(event):
        return all(p(event) for p in predicates)

    check.fields_only = all(
        getattr(p, "fields_only", False) for p in predicates
    )
    return check
