"""Message and interaction extraction from packet-level events.

Paper §2 ("Messages and Interactions"): for nodes A and B identified by
their (IP, port) pairs, *"a series of packets from node_A to node_B
without any intervening packets in the opposite direction constitute one
message.  An interaction consists of a message pair in the opposite
direction."*

The tracker consumes per-packet observations (direction, timestamp,
size) plus socket-delivery observations, maintains one state machine per
flow, and emits :class:`InteractionRecord` objects the moment a
request/response message pair completes.  No application knowledge is
used — only packet direction flips — which is exactly the paper's
black-box online technique (interleaved requests on one flow are
mis-segmented, a limitation the paper states explicitly).
"""

from itertools import count

_interaction_ids = count(1)


class MessageStats:
    """One unidirectional message reconstructed from a packet run."""

    __slots__ = (
        "src",
        "dst",
        "packets",
        "bytes",
        "first_ts",
        "last_ts",
        "first_rx_ts",
        "deliver_ts",
        "kind",
        "pid",
        "task_sample",
    )

    def __init__(self, src, dst, ts, kind=None):
        self.src = src
        self.dst = dst
        self.packets = 0
        self.bytes = 0
        self.first_ts = ts
        self.last_ts = ts
        self.first_rx_ts = None  # earliest driver-level timestamp (inbound)
        self.deliver_ts = None  # when the application read it (inbound)
        self.kind = kind
        self.pid = None
        self.task_sample = None

    def extend(self, ts, size, pid=None):
        self.packets += 1
        self.bytes += size
        self.last_ts = ts
        if pid:
            self.pid = pid

    @property
    def direction(self):
        return (self.src, self.dst)

    def __repr__(self):
        return "<Message {}->{} {}p {}B>".format(
            self.src, self.dst, self.packets, self.bytes
        )


class InteractionRecord:
    """A request/response pair observed at one node, with resource metrics."""

    __slots__ = (
        "interaction_id",
        "node",
        "client",
        "server",
        "request",
        "response",
        "start_ts",
        "end_ts",
        "kernel_wait",
        "kernel_cpu",
        "user_time",
        "io_blocked",
        "ctx_switches",
        "disk_ops",
        "server_pid",
        "server_name",
        "request_class",
    )

    def __init__(self, node, request, response):
        self.interaction_id = next(_interaction_ids)
        self.node = node
        self.client = request.src
        self.server = request.dst
        self.request = request
        self.response = response
        self.start_ts = request.first_ts
        self.end_ts = response.last_ts
        self.kernel_wait = 0.0
        self.kernel_cpu = 0.0
        self.user_time = 0.0
        self.io_blocked = 0.0
        self.ctx_switches = 0
        self.disk_ops = 0
        self.server_pid = 0
        self.server_name = ""
        self.request_class = request.kind or ""

    @property
    def total_latency(self):
        """Wall time the interaction spent at this node."""
        return self.end_ts - self.start_ts

    @property
    def kernel_time(self):
        """Kernel-level time at this node: receive-buffer residency plus
        kernel-mode CPU (for kernel daemons the I/O block time is kernel
        time too — "no time was spent by the request at the user level")."""
        return self.kernel_wait + self.kernel_cpu

    def as_dict(self):
        return {
            "interaction_id": self.interaction_id,
            "node": self.node,
            "client_ip": self.client[0],
            "client_port": self.client[1],
            "server_ip": self.server[0],
            "server_port": self.server[1],
            "start_ts": self.start_ts,
            "end_ts": self.end_ts,
            "req_packets": self.request.packets,
            "req_bytes": self.request.bytes,
            "resp_packets": self.response.packets,
            "resp_bytes": self.response.bytes,
            "kernel_wait": self.kernel_wait,
            "kernel_cpu": self.kernel_cpu,
            "kernel_time": self.kernel_time,
            "user_time": self.user_time,
            "io_blocked": self.io_blocked,
            "ctx_switches": self.ctx_switches,
            "disk_ops": self.disk_ops,
            "server_pid": self.server_pid,
            "server_name": self.server_name,
            "request_class": self.request_class,
            "total_latency": self.total_latency,
        }

    def as_row(self):
        """Preordered wire row: values in ``lpa.INTERACTION_FORMAT`` field
        order, so the dissemination path packs with zero dict lookups.
        ``tests/core/test_interactions.py`` pins the alignment."""
        return (
            self.interaction_id,
            self.node,
            self.client[0],
            self.client[1],
            self.server[0],
            self.server[1],
            self.start_ts,
            self.end_ts,
            self.request.packets,
            self.request.bytes,
            self.response.packets,
            self.response.bytes,
            self.kernel_wait,
            self.kernel_cpu,
            self.kernel_time,
            self.user_time,
            self.io_blocked,
            self.ctx_switches,
            self.disk_ops,
            self.server_pid,
            self.server_name,
            self.request_class,
            self.total_latency,
        )

    def __repr__(self):
        return "<Interaction #{} {}->{} total={:.6f}s>".format(
            self.interaction_id, self.client, self.server, self.total_latency
        )


class FlowState:
    """Per-flow extraction state."""

    __slots__ = (
        "key",
        "current",
        "closed",
        "undelivered",
        "last_activity",
        "pending_first_rx",
    )

    def __init__(self, key):
        self.key = key
        self.current = None
        self.closed = []
        self.undelivered = []
        self.last_activity = 0.0
        self.pending_first_rx = None


class InteractionTracker:
    """Turns a packet observation stream into interaction records.

    ``local_ip`` identifies which endpoint is "this node": inbound
    messages (dst == local) are requests when they open an interaction.
    ``emit`` is called with each completed :class:`InteractionRecord`.
    """

    def __init__(self, node_name, local_ip, emit, idle_timeout=1.0):
        self.node_name = node_name
        self.local_ip = local_ip
        self.emit = emit
        self.idle_timeout = idle_timeout
        self.flows = {}
        self.interactions_emitted = 0
        self.messages_closed = 0
        self.unpaired_messages = 0

    # ------------------------------------------------------------------
    # observations
    # ------------------------------------------------------------------

    def note_rx_start(self, src, dst, ts):
        """Driver-level sighting of an inbound packet (earliest timestamp).

        Recorded before socket-level enqueue so that a message's
        ``first_rx_ts`` reflects when its first packet hit the node, not
        when protocol processing finished.
        """
        key = self._flow_key(src, dst)
        flow = self.flows.get(key)
        if flow is None:
            flow = self.flows[key] = FlowState(key)
        message = flow.current
        starting_new = message is None or message.direction != (src, dst)
        if starting_new and flow.pending_first_rx is None:
            flow.pending_first_rx = ts

    def on_packet(self, src, dst, ts, size, kind=None, pid=None, sampler=None):
        """One data packet between ``src`` and ``dst`` (address tuples).

        ``sampler`` is invoked lazily only when this packet opens a new
        message, to snapshot the owning task's resource accounting at the
        message boundary.
        """
        key = self._flow_key(src, dst)
        flow = self.flows.get(key)
        if flow is None:
            flow = self.flows[key] = FlowState(key)
        flow.last_activity = ts
        message = flow.current
        if message is None or message.direction != (src, dst):
            if message is not None:
                self._close_message(flow, message)
            message = MessageStats(src, dst, ts, kind=kind)
            flow.current = message
            if sampler is not None:
                message.task_sample = sampler()
            if dst[0] == self.local_ip:
                flow.undelivered.append(message)
                if flow.pending_first_rx is not None:
                    message.first_rx_ts = flow.pending_first_rx
            flow.pending_first_rx = None
        message.extend(ts, size, pid=pid)

    def on_deliver(self, src, dst, ts, task_sample=None):
        """The local application read a completed inbound message."""
        key = self._flow_key(src, dst)
        flow = self.flows.get(key)
        if flow is None:
            return
        while flow.undelivered:
            message = flow.undelivered[0]
            if message.deliver_ts is None:
                message.deliver_ts = ts
                message.task_sample = task_sample
                return
            flow.undelivered.pop(0)

    def flush(self, flow_key=None):
        """Close any open message(s) and emit pending interactions.

        Online operation emits interactions as soon as the next request's
        first packet closes the previous response; ``flush`` handles flow
        teardown / end-of-run.
        """
        keys = [flow_key] if flow_key is not None else list(self.flows)
        for key in keys:
            flow = self.flows.get(key)
            if flow is None:
                continue
            if flow.current is not None:
                self._close_message(flow, flow.current)
                flow.current = None
            self._pair(flow)
            if flow.closed:
                self.unpaired_messages += len(flow.closed)
                flow.closed.clear()

    def expire_idle(self, now):
        """Flush flows idle longer than ``idle_timeout`` and forget them."""
        stale = [
            key
            for key, flow in self.flows.items()
            if now - flow.last_activity > self.idle_timeout
        ]
        for key in stale:
            self.flush(key)
            del self.flows[key]
        return len(stale)

    # ------------------------------------------------------------------

    def _flow_key(self, src, dst):
        return (src, dst) if src <= dst else (dst, src)

    def _close_message(self, flow, message):
        self.messages_closed += 1
        flow.closed.append(message)
        self._pair(flow)

    def _pair(self, flow):
        while len(flow.closed) >= 2:
            request = flow.closed.pop(0)
            response = flow.closed.pop(0)
            if request.direction == response.direction:
                # Should not happen (alternation by construction); guard anyway.
                self.unpaired_messages += 1
                flow.closed.insert(0, response)
                continue
            record = InteractionRecord(self.node_name, request, response)
            self.interactions_emitted += 1
            self.emit(record)


def pending_interactions(tracker):
    """Load signal: inbound requests seen but not yet answered.

    Counts undelivered inbound messages across the tracker's open flows —
    the queue-depth metric sampled by :class:`~repro.core.lpa.NodeStatsLPA`
    and sketched per request class by :class:`~repro.core.lpa.SketchLPA`.
    """
    pending = 0
    for flow in tracker.flows.values():
        pending += sum(
            1 for message in flow.undelivered if message.deliver_ts is None
        )
    return pending
