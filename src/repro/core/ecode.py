"""E-Code: runtime compilation of custom analyzer programs.

The paper downloads Custom Performance Analyzers into the kernel as
E-Code, "a language subset of C, compiled through run-time code
generation".  This module implements that capability: a lexer, a
recursive-descent parser, and a compiler that turns the AST into Python
closures.  The language is deliberately small and *safe*: no pointers,
no loops without bounds guards (a configurable step budget aborts
runaways), no access to anything but the event's fields, the program's
own globals, and a whitelist of pure builtins.

Grammar (EBNF-ish)::

    program    := { declaration | function }
    declaration:= ("int" | "double") ident [ "=" expr ] ";"
                | ("int" | "double") ident "[" intlit "]" ";"   (fixed array)
    function   := ("int" | "double" | "void") ident "(" params ")" block
    params     := [ ("event" | "int" | "double") ident { "," ... } ]
    block      := "{" { statement } "}"
    statement  := declaration | assign ";" | "if" ... | "while" ...
                | "return" [ expr ] ";" | block | expr ";"
    assign     := ident [ "[" expr "]" ] ("=" | "+=" | "-=" | "*=" | "/=") expr
    expr       := ternary-free C expression over || && == != < <= > >=
                  + - * / % ! and unary minus, with calls, field access,
                  and bounds-checked array indexing (``hist[i]``)

Arrays are fixed-size, zero-initialized, and bounds-checked — enough for
in-kernel histograms without any pointer surface.
"""

import re

from repro.sim.errors import SimError


class ECodeError(SimError):
    """Lexing, parsing, compilation, or runtime error in an E-Code program."""


class ECodeBudgetExceeded(ECodeError):
    """The program exceeded its execution step budget."""


# ----------------------------------------------------------------------
# lexer
# ----------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*|/\*.*?\*/)
  | (?P<number>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+|\d+(?:[eE][+-]?\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<op>\|\||&&|==|!=|<=|>=|\+=|-=|\*=|/=|[-+*/%<>=!;,(){}.\[\]])
    """,
    re.VERBOSE | re.DOTALL,
)

KEYWORDS = frozenset(
    ("int", "double", "void", "event", "if", "else", "while", "return")
)


class Token:
    __slots__ = ("kind", "value", "line")

    def __init__(self, kind, value, line):
        self.kind = kind
        self.value = value
        self.line = line

    def __repr__(self):
        return "Token({}, {!r}, line {})".format(self.kind, self.value, self.line)


def tokenize(source):
    tokens = []
    pos = 0
    line = 1
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise ECodeError(
                "lex error at line {}: unexpected {!r}".format(line, source[pos])
            )
        line += source[pos:match.end()].count("\n")
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        kind = match.lastgroup
        value = match.group()
        if kind == "ident" and value in KEYWORDS:
            kind = "keyword"
        tokens.append(Token(kind, value, line))
    tokens.append(Token("eof", "", line))
    return tokens


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------

class Node:
    __slots__ = ()


class Program(Node):
    __slots__ = ("globals", "functions")

    def __init__(self, globals_, functions):
        self.globals = globals_  # list of (name, type, init_expr_or_None)
        self.functions = functions  # name -> Function


class Function(Node):
    __slots__ = ("name", "ret_type", "params", "body")

    def __init__(self, name, ret_type, params, body):
        self.name = name
        self.ret_type = ret_type
        self.params = params  # list of (name, type)
        self.body = body


class Block(Node):
    __slots__ = ("statements",)

    def __init__(self, statements):
        self.statements = statements


class Declare(Node):
    __slots__ = ("name", "var_type", "init")

    def __init__(self, name, var_type, init):
        self.name = name
        self.var_type = var_type
        self.init = init


class Assign(Node):
    __slots__ = ("name", "op", "expr")

    def __init__(self, name, op, expr):
        self.name = name
        self.op = op
        self.expr = expr


class IndexAssign(Node):
    __slots__ = ("name", "index", "op", "expr")

    def __init__(self, name, index, op, expr):
        self.name = name
        self.index = index
        self.op = op
        self.expr = expr


class If(Node):
    __slots__ = ("cond", "then", "otherwise")

    def __init__(self, cond, then, otherwise):
        self.cond = cond
        self.then = then
        self.otherwise = otherwise


class While(Node):
    __slots__ = ("cond", "body")

    def __init__(self, cond, body):
        self.cond = cond
        self.body = body


class Return(Node):
    __slots__ = ("expr",)

    def __init__(self, expr):
        self.expr = expr


class ExprStatement(Node):
    __slots__ = ("expr",)

    def __init__(self, expr):
        self.expr = expr


class Number(Node):
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


class StringLit(Node):
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


class Name(Node):
    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name


class Index(Node):
    __slots__ = ("name", "index")

    def __init__(self, name, index):
        self.name = name
        self.index = index


class Field(Node):
    __slots__ = ("base", "field")

    def __init__(self, base, field):
        self.base = base
        self.field = field


class Unary(Node):
    __slots__ = ("op", "operand")

    def __init__(self, op, operand):
        self.op = op
        self.operand = operand


class Binary(Node):
    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right):
        self.op = op
        self.left = left
        self.right = right


class Call(Node):
    __slots__ = ("name", "args")

    def __init__(self, name, args):
        self.name = name
        self.args = args


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------

class Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    def peek(self, offset=0):
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self):
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind, value=None):
        token = self.advance()
        if token.kind != kind or (value is not None and token.value != value):
            raise ECodeError(
                "parse error at line {}: expected {} {!r}, got {!r}".format(
                    token.line, kind, value if value is not None else "", token.value
                )
            )
        return token

    def accept(self, kind, value=None):
        token = self.peek()
        if token.kind == kind and (value is None or token.value == value):
            return self.advance()
        return None

    # -- top level ------------------------------------------------------

    def parse_program(self):
        globals_ = []
        functions = {}
        while self.peek().kind != "eof":
            token = self.peek()
            if token.kind != "keyword" or token.value not in ("int", "double", "void"):
                raise ECodeError(
                    "parse error at line {}: expected declaration or function, got {!r}".format(
                        token.line, token.value
                    )
                )
            type_token = self.advance()
            name = self.expect("ident").value
            if self.peek().value == "(":
                functions[name] = self._function_rest(name, type_token.value)
            else:
                if type_token.value == "void":
                    raise ECodeError("void variable {!r}".format(name))
                if self.accept("op", "["):
                    size_token = self.expect("number")
                    self.expect("op", "]")
                    self.expect("op", ";")
                    globals_.append(
                        (name, "{}[{}]".format(type_token.value, size_token.value),
                         None)
                    )
                    continue
                init = None
                if self.accept("op", "="):
                    init = self.parse_expr()
                self.expect("op", ";")
                globals_.append((name, type_token.value, init))
        return Program(globals_, functions)

    def _function_rest(self, name, ret_type):
        self.expect("op", "(")
        params = []
        if self.peek().value != ")":
            while True:
                ptype = self.expect("keyword").value
                if ptype not in ("int", "double", "event"):
                    raise ECodeError("bad parameter type {!r}".format(ptype))
                pname = self.expect("ident").value
                params.append((pname, ptype))
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        body = self.parse_block()
        return Function(name, ret_type, params, body)

    # -- statements -------------------------------------------------------

    def parse_block(self):
        self.expect("op", "{")
        statements = []
        while self.peek().value != "}":
            statements.append(self.parse_statement())
        self.expect("op", "}")
        return Block(statements)

    def parse_statement(self):
        token = self.peek()
        if token.kind == "keyword":
            if token.value in ("int", "double"):
                self.advance()
                name = self.expect("ident").value
                if self.accept("op", "["):
                    size_token = self.expect("number")
                    self.expect("op", "]")
                    self.expect("op", ";")
                    return Declare(
                        name, "{}[{}]".format(token.value, size_token.value), None
                    )
                init = None
                if self.accept("op", "="):
                    init = self.parse_expr()
                self.expect("op", ";")
                return Declare(name, token.value, init)
            if token.value == "if":
                self.advance()
                self.expect("op", "(")
                cond = self.parse_expr()
                self.expect("op", ")")
                then = self.parse_statement()
                otherwise = None
                if self.accept("keyword", "else"):
                    otherwise = self.parse_statement()
                return If(cond, then, otherwise)
            if token.value == "while":
                self.advance()
                self.expect("op", "(")
                cond = self.parse_expr()
                self.expect("op", ")")
                return While(cond, self.parse_statement())
            if token.value == "return":
                self.advance()
                expr = None
                if self.peek().value != ";":
                    expr = self.parse_expr()
                self.expect("op", ";")
                return Return(expr)
        if token.value == "{":
            return self.parse_block()
        # indexed assignment: name[expr] op= expr ;
        if token.kind == "ident" and self.peek(1).value == "[":
            saved = self.pos
            name = self.advance().value
            self.expect("op", "[")
            index = self.parse_expr()
            self.expect("op", "]")
            if self.peek().value in ("=", "+=", "-=", "*=", "/="):
                op = self.advance().value
                expr = self.parse_expr()
                self.expect("op", ";")
                return IndexAssign(name, index, op, expr)
            self.pos = saved  # plain expression like h[i];
        # assignment or expression statement
        if token.kind == "ident" and self.peek(1).value in ("=", "+=", "-=", "*=", "/="):
            name = self.advance().value
            op = self.advance().value
            expr = self.parse_expr()
            self.expect("op", ";")
            return Assign(name, op, expr)
        expr = self.parse_expr()
        self.expect("op", ";")
        return ExprStatement(expr)

    # -- expressions (precedence climbing) ---------------------------------

    _PRECEDENCE = {
        "||": 1, "&&": 2,
        "==": 3, "!=": 3,
        "<": 4, "<=": 4, ">": 4, ">=": 4,
        "+": 5, "-": 5,
        "*": 6, "/": 6, "%": 6,
    }

    def parse_expr(self, min_precedence=1):
        left = self.parse_unary()
        while True:
            token = self.peek()
            precedence = self._PRECEDENCE.get(token.value)
            if token.kind != "op" or precedence is None or precedence < min_precedence:
                return left
            self.advance()
            right = self.parse_expr(precedence + 1)
            left = Binary(token.value, left, right)

    def parse_unary(self):
        token = self.peek()
        if token.value in ("-", "!"):
            self.advance()
            return Unary(token.value, self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self):
        node = self.parse_primary()
        while True:
            if self.accept("op", "."):
                field = self.expect("ident").value
                node = Field(node, field)
            elif self.peek().value == "[" and isinstance(node, Name):
                self.advance()
                index = self.parse_expr()
                self.expect("op", "]")
                node = Index(node.name, index)
            else:
                return node

    def parse_primary(self):
        token = self.advance()
        if token.kind == "number":
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return Number(float(text))
            return Number(int(text))
        if token.kind == "string":
            return StringLit(
                token.value[1:-1].replace('\\"', '"').replace("\\\\", "\\")
            )
        if token.kind == "ident":
            if self.peek().value == "(":
                self.advance()
                args = []
                if self.peek().value != ")":
                    while True:
                        args.append(self.parse_expr())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                return Call(token.value, args)
            return Name(token.value)
        if token.value == "(":
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        raise ECodeError(
            "parse error at line {}: unexpected {!r}".format(token.line, token.value)
        )


# ----------------------------------------------------------------------
# compiler / runtime
# ----------------------------------------------------------------------

_BUILTINS = {
    "abs": abs,
    "len": len,
    "min": min,
    "max": max,
    "floor": lambda x: float(int(x // 1)),
    "sqrt": lambda x: x ** 0.5,
}


class _ReturnSignal(Exception):
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


class ECodeInstance:
    """One loaded analyzer: its own globals, callable functions."""

    def __init__(self, program, step_budget):
        self.program = program
        self.step_budget = step_budget
        self._steps = step_budget
        self.globals = {}
        for name, var_type, init in program.globals:
            if "[" in var_type:
                self.globals[name] = _make_array(var_type)
                continue
            value = self._eval(init, {}) if init is not None else 0
            self.globals[name] = int(value) if var_type == "int" else float(value)

    def call(self, fname, *args):
        function = self.program.functions.get(fname)
        if function is None:
            raise ECodeError("no such function: {}".format(fname))
        if len(args) != len(function.params):
            raise ECodeError(
                "{}() takes {} args, got {}".format(
                    fname, len(function.params), len(args)
                )
            )
        local = {pname: arg for (pname, _ptype), arg in zip(function.params, args)}
        self._steps = self.step_budget
        try:
            self._exec_block(function.body, local)
        except _ReturnSignal as signal:
            return signal.value
        return None

    def has_function(self, fname):
        return fname in self.program.functions

    # -- execution ------------------------------------------------------

    def _tick(self):
        self._steps -= 1
        if self._steps <= 0:
            raise ECodeBudgetExceeded("E-Code step budget exhausted")

    def _exec_block(self, block, local):
        for statement in block.statements:
            self._exec(statement, local)

    def _exec(self, node, local):
        self._tick()
        kind = type(node)
        if kind is Declare:
            if "[" in node.var_type:
                local[node.name] = _make_array(node.var_type)
                return
            value = self._eval(node.init, local) if node.init is not None else 0
            local[node.name] = int(value) if node.var_type == "int" else float(value)
        elif kind is Assign:
            value = self._eval(node.expr, local)
            target = local if node.name in local else self.globals
            if node.name not in target:
                raise ECodeError("assignment to undeclared {!r}".format(node.name))
            if node.op == "=":
                target[node.name] = value
            elif node.op == "+=":
                target[node.name] += value
            elif node.op == "-=":
                target[node.name] -= value
            elif node.op == "*=":
                target[node.name] *= value
            else:
                target[node.name] = _divide(target[node.name], value)
        elif kind is IndexAssign:
            array = self._lookup_array(node.name, local)
            position = self._array_position(array, node.index, local)
            value = self._eval(node.expr, local)
            if node.op == "=":
                array[position] = value
            elif node.op == "+=":
                array[position] += value
            elif node.op == "-=":
                array[position] -= value
            elif node.op == "*=":
                array[position] *= value
            else:
                array[position] = _divide(array[position], value)
        elif kind is If:
            if self._eval(node.cond, local):
                self._exec(node.then, local)
            elif node.otherwise is not None:
                self._exec(node.otherwise, local)
        elif kind is While:
            while self._eval(node.cond, local):
                self._tick()
                self._exec(node.body, local)
        elif kind is Return:
            raise _ReturnSignal(
                self._eval(node.expr, local) if node.expr is not None else None
            )
        elif kind is Block:
            self._exec_block(node, local)
        elif kind is ExprStatement:
            self._eval(node.expr, local)
        else:
            raise ECodeError("cannot execute node {!r}".format(node))

    def _eval(self, node, local):
        self._tick()
        kind = type(node)
        if kind is Number or kind is StringLit:
            return node.value
        if kind is Name:
            if node.name in local:
                return local[node.name]
            if node.name in self.globals:
                return self.globals[node.name]
            raise ECodeError("undefined name {!r}".format(node.name))
        if kind is Index:
            array = self._lookup_array(node.name, local)
            return array[self._array_position(array, node.index, local)]
        if kind is Field:
            base = self._eval(node.base, local)
            return _field_access(base, node.field)
        if kind is Unary:
            value = self._eval(node.operand, local)
            return -value if node.op == "-" else (0 if value else 1)
        if kind is Binary:
            return self._binary(node, local)
        if kind is Call:
            if node.name in self.program.functions:
                return self.call(node.name, *[self._eval(a, local) for a in node.args])
            builtin = _BUILTINS.get(node.name)
            if builtin is None:
                raise ECodeError("unknown function {!r}".format(node.name))
            return builtin(*[self._eval(a, local) for a in node.args])
        raise ECodeError("cannot evaluate node {!r}".format(node))

    def _lookup_array(self, name, local):
        value = local.get(name, self.globals.get(name))
        if not isinstance(value, list):
            raise ECodeError("{!r} is not an array".format(name))
        return value

    def _array_position(self, array, index_node, local):
        position = self._eval(index_node, local)
        if not isinstance(position, int):
            position = int(position)
        if not 0 <= position < len(array):
            raise ECodeError(
                "array index {} out of bounds [0, {})".format(position, len(array))
            )
        return position

    def _binary(self, node, local):
        op = node.op
        if op == "&&":
            return 1 if self._eval(node.left, local) and self._eval(node.right, local) else 0
        if op == "||":
            return 1 if self._eval(node.left, local) or self._eval(node.right, local) else 0
        left = self._eval(node.left, local)
        right = self._eval(node.right, local)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return _divide(left, right)
        if op == "%":
            if right == 0:
                raise ECodeError("modulo by zero")
            return left % right
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<":
            return 1 if left < right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">":
            return 1 if left > right else 0
        return 1 if left >= right else 0


def _make_array(var_type):
    """Build the zero-filled backing list for 'int[N]' / 'double[N]'."""
    base, _, rest = var_type.partition("[")
    size = int(rest.rstrip("]"))
    if size <= 0 or size > 65536:
        raise ECodeError("array size out of range: {}".format(size))
    return [0] * size if base == "int" else [0.0] * size


def _divide(left, right):
    if right == 0:
        raise ECodeError("division by zero")
    if isinstance(left, int) and isinstance(right, int):
        return left // right
    return left / right


def _field_access(base, field):
    """Restricted field access: only monitoring event payloads."""
    if hasattr(base, "fields") and hasattr(base, "etype"):
        if field == "etype":
            return base.etype
        if field == "ts":
            return base.ts
        if field == "node":
            return base.node
        return base.fields.get(field, 0)
    if isinstance(base, dict):
        return base.get(field, 0)
    raise ECodeError("field access on non-event value: .{}".format(field))


class ECodeProgram:
    """A compiled E-Code program; instantiate per deployment."""

    def __init__(self, ast, source):
        self.ast = ast
        self.source = source

    @classmethod
    def compile(cls, source):
        tokens = tokenize(source)
        ast = Parser(tokens).parse_program()
        return cls(ast, source)

    def instantiate(self, step_budget=100000):
        return ECodeInstance(self.ast, step_budget)

    @property
    def function_names(self):
        return sorted(self.ast.functions)
