"""Custom Performance Analyzers: E-Code programs loaded into the kernel.

"In addition to the statically defined LPAs, custom analyzers can be
dynamically created and downloaded into the kernel.  CPAs function just
like normal LPAs, including registering of callbacks with Kprof and
indicating the set of events they wish to receive."

Program conventions:

* ``void handle(event e)`` — called for every subscribed event (required);
* ``double metric_<name>()`` — zero-arg functions whose return values are
  emitted as ``(key, value)`` records on each eviction cycle;
* globals persist across calls (the analyzer's state).
"""

from repro.core.ecode import ECodeError, ECodeProgram
from repro.core.lpa import LocalPerformanceAnalyzer

CPA_FORMAT = (
    "sysprof.cpa",
    (
        ("node", "str16"),
        ("analyzer", "str24"),
        ("ts", "f64"),
        ("key", "str24"),
        ("value", "f64"),
    ),
)


class CustomAnalyzer(LocalPerformanceAnalyzer):
    """An LPA whose analysis function is a runtime-compiled E-Code program."""

    record_format = CPA_FORMAT

    def __init__(self, kernel, kprof, source, etypes, name="cpa",
                 buffer_capacity=64, predicate=None, cost=None,
                 on_buffer_full=None, step_budget=100000):
        super().__init__(
            kernel, kprof, name,
            buffer_capacity=buffer_capacity, on_buffer_full=on_buffer_full,
        )
        self.program = ECodeProgram.compile(source)
        self.instance = self.program.instantiate(step_budget=step_budget)
        if not self.instance.has_function("handle"):
            raise ECodeError("CPA program must define handle(event e)")
        self.etypes = list(etypes)
        self.predicate = predicate
        self.cost = cost
        self.events_handled = 0
        self.errors = 0
        self._metric_functions = [
            fname for fname in self.program.function_names
            if fname.startswith("metric_")
        ]

    def _subscribe(self):
        self._add_subscription(
            self.etypes, self._on_event, predicate=self.predicate, cost=self.cost
        )

    def _on_event(self, event):
        try:
            self.instance.call("handle", event)
            self.events_handled += 1
        except ECodeError:
            # A buggy downloaded analyzer must never crash the kernel:
            # count and continue (the controller can inspect and unload).
            self.errors += 1

    def metrics(self):
        """Evaluate all metric_* functions -> {key: value}."""
        values = {}
        for fname in self._metric_functions:
            try:
                values[fname[len("metric_"):]] = float(self.instance.call(fname))
            except ECodeError:
                self.errors += 1
        return values

    def read_global(self, name):
        return self.instance.globals[name]

    def evict(self):
        now = self.kernel.clock.local_time(self.kernel.sim.now)
        for key, value in sorted(self.metrics().items()):
            # Preordered row: CPA_FORMAT field order.
            self.buffer.append((self.kernel.name, self.name, now, key, value))
        return super().evict()

    def stats(self):
        base = super().stats()
        base.update({"handled": self.events_handled, "errors": self.errors})
        return base
