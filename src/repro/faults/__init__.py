"""Deterministic, schedule-driven fault injection — failures are a
first-class workload, the machinery behind the §3.2-style failure
diagnosis runs in ``docs/failures.md``.  A :class:`FaultSchedule` scripts
crash/restart, link and partition windows at simulated times, and a
:class:`FaultInjector` arms them against a cluster (and optionally a
SysProf installation).  All randomness comes from named substreams of
the cluster's seeded RNG, drawn only when a fault actually needs it, so
same-seed runs are bit-identical — including runs with an empty
schedule, which are byte-for-byte the runs without an injector at all.
"""

from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultEvent, FaultSchedule, ScheduleError

__all__ = ["FaultEvent", "FaultInjector", "FaultSchedule", "ScheduleError"]
