"""Arms a :class:`~repro.faults.schedule.FaultSchedule` against a cluster.

The injector translates scripted events into simulator callbacks at arm
time, so firing them costs no model CPU anywhere — faults are acts of
god, not workload.  Each fired event is appended to ``injector.log``
with its actual simulated time for post-run assertions.

Connection teardown semantics: the socket layer has no retransmission,
so a connection straddling a downed link or a partition boundary can
never make progress again — in-flight bytes are gone and flow-control
credits would leak, wedging the sender forever.  The injector therefore
aborts such connections on both ends when the fault lands (standing in
for the retransmission-timeout expiry a real TCP stack would hit),
delivering EOF to readers and :class:`~repro.sim.errors.ConnectionReset`
to writers.
"""

from repro.faults import schedule as sched
from repro.ossim.task import BAND_KERNEL, BAND_USER
from repro.sim.errors import SimError

#: Duty-cycle slice for cpu_hog tasks: short enough that sub-unity
#: utilizations interleave with the victim under the 10ms round-robin
#: quantum, long enough to keep the event count per hog small.
_HOG_BURST = 0.005


class FaultInjector:
    """Schedules and fires faults; one per run."""

    def __init__(self, cluster, sysprof=None, rng_name="faults.jitter"):
        self.cluster = cluster
        self.sysprof = sysprof
        self.rng_name = rng_name
        self.log = []  # [{"at": fired_time, "kind": ..., "target": ...}]
        self.fired = 0
        self.hogs_spawned = 0
        self.injected = 0  # events added mid-run via inject()
        self._armed = False
        self._rng = None
        self._handlers = {
            sched.KIND_DAEMON_KILL: self._do_daemon_kill,
            sched.KIND_DAEMON_RESTART: self._do_daemon_restart,
            sched.KIND_GPA_KILL: self._do_gpa_kill,
            sched.KIND_GPA_RESTART: self._do_gpa_restart,
            sched.KIND_ZONE_GPA_KILL: self._do_zone_gpa_kill,
            sched.KIND_ZONE_GPA_RESTART: self._do_zone_gpa_restart,
            sched.KIND_NODE_CRASH: self._do_node_crash,
            sched.KIND_LINK_DOWN: self._do_link_down,
            sched.KIND_LINK_UP: self._do_link_up,
            sched.KIND_PARTITION: self._do_partition,
            sched.KIND_HEAL: self._do_heal,
            sched.KIND_CPU_HOG: self._do_cpu_hog,
            sched.KIND_PARENT_PARTITION: self._do_parent_partition,
        }
        if sysprof is not None and getattr(sysprof, "metrics", None) is not None:
            sysprof.metrics.register_source("sysprof.faults", self.stats)

    # ------------------------------------------------------------------

    def arm(self, schedule):
        """Validate ``schedule`` and register every event with the sim.

        Jittered events resolve their one RNG draw here, in schedule
        order, so the draw sequence — hence the whole run — depends only
        on (seed, schedule).  A schedule with no jittered events never
        touches the RNG at all.
        """
        if self._armed:
            raise SimError("injector already armed")
        schedule.validate()
        sim = self.cluster.sim
        for event in schedule.events():
            at = event.at
            if event.jitter:
                at += event.jitter * self._jitter_rng().random()
            if at < sim.now:
                raise SimError(
                    "fault {} at {} is in the past (now {})".format(
                        event.kind, at, sim.now
                    )
                )
            sim.schedule(at - sim.now, self._fire, event)
        self._armed = True
        return self

    def inject(self, schedule, base=None):
        """Register more events mid-run (the service control plane).

        Unlike :meth:`arm` — a one-shot for the scripted pre-run plan —
        this may be called any number of times while the simulation is
        live.  Event ``at`` offsets are relative to ``base`` (default:
        the current simulated time), so an ``at=0.5`` event injected at
        t=10 fires at t=10.5.  Determinism note: an inject is a control
        input; two runs issuing the same injects at the same simulated
        times replay identically, and a run with no injects is untouched.
        """
        schedule.validate()
        sim = self.cluster.sim
        if base is None:
            base = sim.now
        registered = []
        for event in schedule.events():
            at = base + event.at
            if event.jitter:
                at += event.jitter * self._jitter_rng().random()
            if at < sim.now:
                raise SimError(
                    "fault {} at {} is in the past (now {})".format(
                        event.kind, at, sim.now
                    )
                )
            sim.schedule(at - sim.now, self._fire, event)
            registered.append({"kind": event.kind, "target": event.target,
                               "at": at})
        self.injected += len(registered)
        return registered

    def _jitter_rng(self):
        if self._rng is None:
            self._rng = self.cluster.streams.stream(self.rng_name)
        return self._rng

    def _fire(self, event):
        self._handlers[event.kind](event)
        self.fired += 1
        self.log.append(
            {
                "at": self.cluster.sim.now,
                "kind": event.kind,
                "target": event.target,
            }
        )

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------

    def _monitor(self, name):
        if self.sysprof is None:
            raise SimError("daemon faults need a SysProf installation")
        return self.sysprof.monitor(name)

    def _do_daemon_kill(self, event):
        self._monitor(event.target).daemon.kill(
            "fault:{}".format(event.kind)
        )

    def _do_daemon_restart(self, event):
        self._monitor(event.target).daemon.restart()

    def _do_gpa_kill(self, event):
        if self.sysprof is None or self.sysprof.gpa is None:
            raise SimError("gpa faults need an installed GPA")
        self.sysprof.gpa.kill("fault:{}".format(event.kind))

    def _do_gpa_restart(self, event):
        self.sysprof.gpa.restart()

    def _zone(self, name):
        if self.sysprof is None or self.sysprof.federation is None:
            raise SimError("zone faults need a federated SysProf installation")
        try:
            return self.sysprof.federation.zone(name)
        except KeyError:
            raise SimError("unknown federation zone: {!r}".format(name)) from None

    def _do_zone_gpa_kill(self, event):
        self._zone(event.target).kill("fault:{}".format(event.kind))

    def _do_zone_gpa_restart(self, event):
        self._zone(event.target).restart()

    def _do_node_crash(self, event):
        node = self.cluster.node(event.target)
        # Monitoring components on the node get their bookkeeping torn
        # down first (pending notification waiters, publish sockets);
        # kernel.crash then kills whatever tasks remain.
        if self.sysprof is not None:
            monitor = self.sysprof.monitors.get(event.target)
            if monitor is not None:
                monitor.daemon.kill("fault:{}".format(event.kind))
            gpa = self.sysprof.gpa
            if gpa is not None and gpa.node.name == event.target:
                gpa.kill("fault:{}".format(event.kind))
        node.crash("fault:{}".format(event.kind))

    def _do_link_down(self, event):
        ip = self.cluster.node(event.target).ip
        self.cluster.fabric.set_link_admin(ip, False)
        self._abort_connections(
            lambda sock: (sock.local.ip == ip) != (sock.remote.ip == ip)
        )

    def _do_link_up(self, event):
        ip = self.cluster.node(event.target).ip
        self.cluster.fabric.set_link_admin(ip, True)

    def _do_partition(self, event):
        groups = [
            [self.cluster.node(name).ip for name in group]
            for group in event.params["groups"]
        ]
        self._partition_ips(groups)

    def _do_parent_partition(self, event):
        """Cut a zone off from its parent tier (see FaultSchedule).

        ``uplink`` puts the whole zone subtree (members + GPA node) on
        one side; ``gpa`` isolates just the zone's GPA node, forcing the
        members to reparent."""
        zone = self._zone(event.target)
        scope = event.params.get("scope", "uplink")
        island = {zone.node.name}
        if scope == "uplink":
            island.update(zone.members)
        rest = [
            name for name in self.cluster.nodes if name not in island
        ]
        self._partition_ips([
            [self.cluster.node(name).ip for name in sorted(island)],
            [self.cluster.node(name).ip for name in rest],
        ])

    def _partition_ips(self, groups):
        self.cluster.fabric.partition(*groups)
        crosses = self.cluster.fabric.switch.crosses_partition
        self._abort_connections(
            lambda sock: crosses(sock.local.ip, sock.remote.ip)
        )

    def _do_heal(self, event):
        self.cluster.fabric.heal()

    def _do_cpu_hog(self, event):
        node = self.cluster.node(event.target)
        duration = float(event.params["duration"])
        utilization = float(event.params.get("utilization", 1.0))
        band_name = event.params.get("band", "kernel")
        band = BAND_KERNEL if band_name == "kernel" else BAND_USER

        def hog(ctx):
            # Duty-cycle loop: burn ``utilization`` of each slice, sleep
            # the rest.  The burn itself is ordinary task CPU, so the
            # ledger attributes it to the workload — a hog is a
            # misbehaving application, not a monitoring cost.
            end = ctx.now + duration
            burn = _HOG_BURST * utilization
            idle = _HOG_BURST - burn
            while ctx.now < end:
                if band == BAND_KERNEL:
                    yield from ctx.kcompute(burn)
                else:
                    yield from ctx.compute(burn)
                if idle > 0.0:
                    yield from ctx.sleep(idle)

        node.spawn("cpu-hog", hog, band=band)
        self.hogs_spawned += 1

    def _abort_connections(self, crossing):
        """RTO stand-in: abort every established connection the fault cut."""
        for node in self.cluster.nodes.values():
            for sock in list(node.kernel._sockets.values()):
                if sock.remote is not None and crossing(sock):
                    sock.abort()

    # ------------------------------------------------------------------

    def summary(self):
        """Fired-event counts by kind (for reports and tests)."""
        counts = {}
        for entry in self.log:
            counts[entry["kind"]] = counts.get(entry["kind"], 0) + 1
        return counts

    def stats(self):
        """Counters for the metrics registry (``sysprof.faults``)."""
        return {"fired": self.fired, "hogs_spawned": self.hogs_spawned,
                "injected": self.injected}
