"""Fault schedules: what breaks, when, and for how long.

A schedule is pure data — building one touches no simulator state and
draws no randomness, so schedules can be constructed, serialized,
diffed, and replayed.  The :class:`~repro.faults.injector.FaultInjector`
resolves it against a live cluster at arm time.
"""

KIND_DAEMON_KILL = "daemon_kill"
KIND_DAEMON_RESTART = "daemon_restart"
KIND_GPA_KILL = "gpa_kill"
KIND_GPA_RESTART = "gpa_restart"
KIND_ZONE_GPA_KILL = "zone_gpa_kill"
KIND_ZONE_GPA_RESTART = "zone_gpa_restart"
KIND_NODE_CRASH = "node_crash"
KIND_LINK_DOWN = "link_down"
KIND_LINK_UP = "link_up"
KIND_PARTITION = "partition"
KIND_HEAL = "heal"
KIND_CPU_HOG = "cpu_hog"
KIND_PARENT_PARTITION = "parent_partition"

KINDS = frozenset(
    {
        KIND_DAEMON_KILL,
        KIND_DAEMON_RESTART,
        KIND_GPA_KILL,
        KIND_GPA_RESTART,
        KIND_ZONE_GPA_KILL,
        KIND_ZONE_GPA_RESTART,
        KIND_NODE_CRASH,
        KIND_LINK_DOWN,
        KIND_LINK_UP,
        KIND_PARTITION,
        KIND_HEAL,
        KIND_CPU_HOG,
        KIND_PARENT_PARTITION,
    }
)

#: Valid ``scope`` values for parent_partition.  ``uplink`` cuts the
#: whole zone subtree (members + zone GPA) off from the rest of the
#: cluster — the zone's *upward* forwards fail while members still reach
#: their zone GPA.  ``gpa`` isolates only the zone GPA node, so members
#: lose their parent tier and must reparent.
PARENT_PARTITION_SCOPES = ("uplink", "gpa")

# Kinds whose target names a node; the rest target the whole fabric/GPA.
_NODE_TARGET_KINDS = frozenset(
    {
        KIND_DAEMON_KILL,
        KIND_DAEMON_RESTART,
        KIND_NODE_CRASH,
        KIND_LINK_DOWN,
        KIND_LINK_UP,
        KIND_CPU_HOG,
    }
)

# Kinds whose target names a federation zone.
_ZONE_TARGET_KINDS = frozenset(
    {KIND_ZONE_GPA_KILL, KIND_ZONE_GPA_RESTART, KIND_PARENT_PARTITION}
)


class ScheduleError(ValueError):
    """A schedule entry is malformed (unknown kind, bad time, bad target)."""


class FaultEvent:
    """One scripted fault: ``kind`` hits ``target`` at simulated time ``at``.

    ``jitter`` adds up to that many seconds of seeded random delay,
    resolved with exactly one RNG draw at arm time (zero jitter draws
    nothing).  ``seq`` preserves authoring order among same-time events.
    """

    __slots__ = ("at", "kind", "target", "params", "jitter", "seq")

    def __init__(self, at, kind, target=None, params=None, jitter=0.0, seq=0):
        self.at = float(at)
        self.kind = kind
        self.target = target
        self.params = dict(params or {})
        self.jitter = float(jitter)
        self.seq = seq

    def validate(self):
        if self.kind not in KINDS:
            raise ScheduleError("unknown fault kind: {!r}".format(self.kind))
        if self.at < 0.0:
            raise ScheduleError(
                "fault time must be >= 0, got {}".format(self.at)
            )
        if self.jitter < 0.0:
            raise ScheduleError("jitter must be >= 0")
        if self.kind in _NODE_TARGET_KINDS and not self.target:
            raise ScheduleError("{} requires a target node".format(self.kind))
        if self.kind in _ZONE_TARGET_KINDS and not self.target:
            raise ScheduleError("{} requires a target zone".format(self.kind))
        if self.kind == KIND_PARTITION:
            groups = self.params.get("groups")
            if not groups or not all(group for group in groups):
                raise ScheduleError("partition requires non-empty groups")
        if self.kind == KIND_PARENT_PARTITION:
            scope = self.params.get("scope", "uplink")
            if scope not in PARENT_PARTITION_SCOPES:
                raise ScheduleError(
                    "parent_partition scope must be one of {}, got {!r}".format(
                        PARENT_PARTITION_SCOPES, scope
                    )
                )
        if self.kind == KIND_CPU_HOG:
            if float(self.params.get("duration", 0.0)) <= 0.0:
                raise ScheduleError("cpu_hog requires duration > 0")
            utilization = float(self.params.get("utilization", 1.0))
            if not 0.0 < utilization <= 1.0:
                raise ScheduleError(
                    "cpu_hog utilization must be in (0, 1], got {}".format(
                        utilization
                    )
                )

    def to_dict(self):
        entry = {"at": self.at, "kind": self.kind}
        if self.target is not None:
            entry["target"] = self.target
        if self.params:
            entry["params"] = {
                key: [list(group) for group in value] if key == "groups" else value
                for key, value in self.params.items()
            }
        if self.jitter:
            entry["jitter"] = self.jitter
        return entry

    def __repr__(self):
        return "<FaultEvent t={:.3f} {} {}>".format(
            self.at, self.kind, self.target or self.params or ""
        )


class FaultSchedule:
    """An ordered script of :class:`FaultEvent`.

    Builder methods return ``self`` for chaining; ``*_outage`` /
    ``partition_window`` helpers script the down *and* up sides of a
    failure window in one call.
    """

    def __init__(self):
        self._events = []

    def __len__(self):
        return len(self._events)

    def __repr__(self):
        return "<FaultSchedule {} events>".format(len(self._events))

    def add(self, at, kind, target=None, params=None, jitter=0.0):
        event = FaultEvent(
            at, kind, target=target, params=params, jitter=jitter,
            seq=len(self._events),
        )
        event.validate()
        self._events.append(event)
        return self

    # -- daemon / GPA process faults ------------------------------------

    def kill_daemon(self, at, node, jitter=0.0):
        return self.add(at, KIND_DAEMON_KILL, target=node, jitter=jitter)

    def restart_daemon(self, at, node, jitter=0.0):
        return self.add(at, KIND_DAEMON_RESTART, target=node, jitter=jitter)

    def daemon_outage(self, start, duration, node, jitter=0.0):
        self.kill_daemon(start, node, jitter=jitter)
        return self.restart_daemon(start + duration, node, jitter=jitter)

    def kill_gpa(self, at, jitter=0.0):
        return self.add(at, KIND_GPA_KILL, jitter=jitter)

    def restart_gpa(self, at, jitter=0.0):
        return self.add(at, KIND_GPA_RESTART, jitter=jitter)

    def gpa_outage(self, start, duration, jitter=0.0):
        self.kill_gpa(start, jitter=jitter)
        return self.restart_gpa(start + duration, jitter=jitter)

    # -- zone GPA faults (federated installs) ----------------------------

    def kill_zone_gpa(self, at, zone, jitter=0.0):
        return self.add(at, KIND_ZONE_GPA_KILL, target=zone, jitter=jitter)

    def restart_zone_gpa(self, at, zone, jitter=0.0):
        return self.add(at, KIND_ZONE_GPA_RESTART, target=zone, jitter=jitter)

    def zone_outage(self, start, duration, zone, jitter=0.0):
        """Kill one zone's aggregation tier for ``duration`` seconds; the
        parent tier should see only that zone's pseudo-node go stale."""
        self.kill_zone_gpa(start, zone, jitter=jitter)
        return self.restart_zone_gpa(start + duration, zone, jitter=jitter)

    # -- whole-node crash ------------------------------------------------

    def crash_node(self, at, node, jitter=0.0):
        return self.add(at, KIND_NODE_CRASH, target=node, jitter=jitter)

    # -- resource contention ---------------------------------------------

    def cpu_hog(self, at, node, duration, utilization=1.0, band="kernel",
                jitter=0.0):
        """A runaway task burns ``utilization`` of one core on ``node``
        for ``duration`` seconds.  ``band`` is ``"kernel"`` or ``"user"``;
        kernel-band hogs compete with in-kernel services (nfsd, sysprofd)
        under the round-robin quantum, which is the degradation the
        online diagnosis engine is built to catch."""
        return self.add(
            at, KIND_CPU_HOG, target=node,
            params={
                "duration": float(duration),
                "utilization": float(utilization),
                "band": band,
            },
            jitter=jitter,
        )

    # -- network faults --------------------------------------------------

    def link_down(self, at, node, jitter=0.0):
        return self.add(at, KIND_LINK_DOWN, target=node, jitter=jitter)

    def link_up(self, at, node, jitter=0.0):
        return self.add(at, KIND_LINK_UP, target=node, jitter=jitter)

    def link_outage(self, start, duration, node, jitter=0.0):
        self.link_down(start, node, jitter=jitter)
        return self.link_up(start + duration, node, jitter=jitter)

    def partition(self, at, groups, jitter=0.0):
        groups = [list(group) for group in groups]
        return self.add(at, KIND_PARTITION, params={"groups": groups}, jitter=jitter)

    def heal(self, at, jitter=0.0):
        return self.add(at, KIND_HEAL, jitter=jitter)

    def partition_window(self, start, duration, groups, jitter=0.0):
        self.partition(start, groups, jitter=jitter)
        return self.heal(start + duration, jitter=jitter)

    # -- federation parent loss ------------------------------------------

    def parent_partition(self, at, zone, scope="uplink", jitter=0.0):
        """Cut a federation zone off from its parent tier.

        ``scope="uplink"`` partitions the whole zone subtree (members +
        zone GPA) from the rest of the cluster: members still reach
        their zone GPA, but the zone's upward forwards fail — the
        retention path must hold condensation windows until heal.
        ``scope="gpa"`` isolates only the zone's GPA node: members lose
        their parent and must reparent to the standby / root."""
        return self.add(
            at, KIND_PARENT_PARTITION, target=zone,
            params={"scope": scope}, jitter=jitter,
        )

    def parent_partition_window(self, start, duration, zone, scope="uplink",
                                jitter=0.0):
        self.parent_partition(start, zone, scope=scope, jitter=jitter)
        return self.heal(start + duration, jitter=jitter)

    # -- access / serialization ------------------------------------------

    def events(self):
        """Events in firing order (time, then authoring order)."""
        return sorted(self._events, key=lambda event: (event.at, event.seq))

    def validate(self):
        for event in self._events:
            event.validate()
        return self

    def to_dict(self):
        return {"events": [event.to_dict() for event in self.events()]}

    @classmethod
    def from_dict(cls, data):
        schedule = cls()
        for entry in data.get("events", ()):
            schedule.add(
                entry["at"],
                entry["kind"],
                target=entry.get("target"),
                params=entry.get("params"),
                jitter=entry.get("jitter", 0.0),
            )
        return schedule
