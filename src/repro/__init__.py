"""Reproduction of Agarwala & Schwan, "SysProf: Online Distributed
Behavior Diagnosis through Fine-grain System Monitoring" (ICDCS 2006),
built on a deterministic discrete-event simulation of a Linux-like
cluster.  The toolkit (§2) attaches to the simulated kernels exactly
where the real system patched Linux, and monitoring work is charged to
the same simulated CPUs as the workload, so the paper's overhead and
case-study results (§3) are emergent rather than scripted.

Quickstart::

    from repro import Cluster, SysProf, SysProfConfig

    cluster = Cluster(seed=1)
    server = cluster.add_node("server")
    client = cluster.add_node("client")
    mgmt = cluster.add_node("mgmt")
    # ... spawn application tasks on the nodes ...
    sysprof = SysProf(cluster)
    sysprof.install(monitored=["server"], gpa_node="mgmt")
    sysprof.start()
    cluster.run(until=10.0)
    sysprof.flush()
    print(sysprof.gpa.node_summary("server"))

See ``examples/`` for complete programs and ``DESIGN.md`` for the system
inventory and the paper-experiment index.
"""

from repro.cluster import Cluster, Node, NodeClock, synchronize
from repro.core import (
    CustomAnalyzer,
    GlobalPerformanceAnalyzer,
    InteractionLPA,
    Kprof,
    SysProf,
    SysProfConfig,
)
from repro.ossim import CostModel
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "CostModel",
    "CustomAnalyzer",
    "GlobalPerformanceAnalyzer",
    "InteractionLPA",
    "Kprof",
    "Node",
    "NodeClock",
    "Simulator",
    "SysProf",
    "SysProfConfig",
    "__version__",
    "synchronize",
]
