"""Network interface card: rate-limited TX ring, RX handoff to the kernel."""

from repro.sim.errors import SimError
from repro.sim.resources import Store


class Nic:
    """A NIC attached to one node.

    TX side: the kernel enqueues packets onto the ring; a pump process
    serializes them onto the attached port at line rate.  A bounded ring
    models device queueing — when it is full the kernel-side enqueue
    blocks (the waitable returned by :meth:`enqueue` completes on space),
    which is how transmit backpressure reaches the socket layer.

    RX side: the fabric calls :meth:`receive`; the NIC hands the packet to
    the kernel's registered ``rx_handler`` (interrupt context).
    """

    def __init__(self, sim, ip, tx_ring_slots=256, name=None):
        self.sim = sim
        self.ip = ip
        self.name = name or "nic-{}".format(ip)
        self._ring = Store(sim, capacity=tx_ring_slots)
        self._port = None  # set when attached to a switch/fabric
        self.rx_handler = None
        self.tx_packets = 0
        self.rx_packets = 0
        self.rx_dropped = 0
        sim.process(self._pump(), name="{}-tx".format(self.name))

    def attach(self, port):
        """Connect the NIC's TX side to a fabric/switch port (a Link)."""
        self._port = port

    def enqueue(self, packet):
        """Kernel TX: returns a waitable that succeeds once the ring accepts."""
        packet.sent_at = self.sim.now
        return self._ring.put(packet)

    def try_enqueue(self, packet):
        """Non-blocking TX used by best-effort senders; False when ring full."""
        packet.sent_at = self.sim.now
        return self._ring.try_put(packet)

    @property
    def tx_backlog(self):
        return len(self._ring)

    def receive(self, packet):
        """Fabric-side delivery; dispatches to the kernel RX handler."""
        self.rx_packets += 1
        if self.rx_handler is None:
            self.rx_dropped += 1
            return
        self.rx_handler(packet)

    def _pump(self):
        while True:
            packet = yield self._ring.get()
            if self._port is None:
                raise SimError("NIC {} transmitting while unattached".format(self.name))
            self.tx_packets += 1
            yield self._port.transmit_blocking(packet)
