"""Cluster network fabric: names, addresses, and the LAN topology."""

from repro.netsim.packet import Address
from repro.netsim.nic import Nic
from repro.netsim.switch import Switch


class Fabric:
    """The LAN connecting a cluster's nodes.

    The default shape is a single switch (the original flat LAN).  For
    spine/leaf clusters, :meth:`add_switch` stamps out leaf switches
    trunked to the root switch (which then plays the spine role), and
    :meth:`create_nic` takes a ``switch=`` argument to place a NIC behind
    a specific leaf.  Responsible for IP assignment and NIC creation.
    Experiments ask the fabric for link statistics (utilization,
    queueing) to report network health alongside SysProf's own
    measurements.
    """

    def __init__(self, sim, bandwidth_bps=1_000_000_000, latency=50e-6,
                 loss_rate=0.0, rng=None, name="lan0"):
        self.sim = sim
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.latency = latency
        self.loss_rate = loss_rate
        self._rng = rng
        self.switch = Switch(
            sim, bandwidth_bps, latency, loss_rate=loss_rate, rng=rng,
            name="{}-sw".format(name),
        )
        self.switches = {self.switch.name: self.switch}
        self._next_host = 1
        self.nics = {}
        self._switch_of = {}  # ip -> the switch its NIC hangs off

    def allocate_ip(self):
        ip = "10.0.0.{}".format(self._next_host)
        self._next_host += 1
        return ip

    def add_switch(self, name, bandwidth_bps=None, latency=None,
                   forward_delay=None, uplink_to=None, trunk_latency=None):
        """Create a leaf switch trunked up to ``uplink_to`` (default: root).

        Returns the new switch; pass it to :meth:`create_nic` via
        ``switch=`` to place NICs behind it.
        """
        if name in self.switches:
            raise ValueError("duplicate switch name: {}".format(name))
        parent = uplink_to or self.switch
        sw = Switch(
            self.sim,
            bandwidth_bps or self.bandwidth_bps,
            self.latency if latency is None else latency,
            forward_delay=(self.switch.forward_delay
                           if forward_delay is None else forward_delay),
            loss_rate=self.loss_rate, rng=self._rng, name=name,
        )
        sw.connect(parent, bandwidth_bps=bandwidth_bps,
                   latency=trunk_latency, uplink=True)
        self.switches[name] = sw
        return sw

    def create_nic(self, ip=None, bandwidth_bps=None, latency=None, switch=None):
        """Create a NIC, attach it to a switch, and return it."""
        ip = ip or self.allocate_ip()
        if ip in self.nics:
            raise ValueError("duplicate IP on fabric: {}".format(ip))
        sw = switch or self.switch
        nic = Nic(self.sim, ip)
        sw.attach(nic, bandwidth_bps=bandwidth_bps, latency=latency)
        self.nics[ip] = nic
        self._switch_of[ip] = sw
        return nic

    def switch_of(self, ip):
        """The switch whose port serves ``ip`` (root switch if unknown)."""
        return self._switch_of.get(ip, self.switch)

    def address(self, ip, port):
        return Address(ip, port)

    def path_latency(self, src_ip, dst_ip):
        """One-way propagation + forwarding latency between two IPs.

        For a flat fabric this is the classic ``2·latency + forward_delay``
        (NIC→switch, switch forward, switch→NIC).  Across a switch tree it
        sums each hop's trunk latency and per-switch forwarding delay up
        to the lowest common ancestor and back down.
        """
        s_src = self.switch_of(src_ip)
        s_dst = self.switch_of(dst_ip)
        if s_src is s_dst:
            return 2.0 * s_src.latency + s_src.forward_delay
        chain_src = [s_src]
        sw = s_src
        while sw.parent is not None:
            sw = sw.parent
            chain_src.append(sw)
        chain_dst = [s_dst]
        sw = s_dst
        while sw.parent is not None:
            sw = sw.parent
            chain_dst.append(sw)
        depth_src = {id(s): i for i, s in enumerate(chain_src)}
        lca_down = next(
            (i for i, s in enumerate(chain_dst) if id(s) in depth_src), None)
        if lca_down is None:
            raise ValueError("no path between {} and {}".format(src_ip, dst_ip))
        lca = chain_dst[lca_down]
        lca_up = depth_src[id(lca)]
        total = s_src.latency + s_dst.latency + lca.forward_delay
        for sw in chain_src[:lca_up]:
            total += sw.forward_delay + sw.uplink_latency
        for sw in chain_dst[:lca_down]:
            total += sw.forward_delay + sw.uplink_latency
        return total

    # -- failure injection hooks ----------------------------------------

    def set_link_admin(self, ip, up):
        """Raise/lower both directions of the port serving ``ip``."""
        self.switch_of(ip).set_port_admin(ip, up)

    def link_admin(self, ip):
        return self.switch_of(ip).port_admin(ip)

    def partition(self, *groups):
        """Partition the fabric into isolated IP groups; see Switch.partition.

        The mapping is applied to every switch so cross-group packets are
        dropped at the first hop regardless of which leaf they enter.
        """
        for sw in self.switches.values():
            sw.partition(*groups)

    def heal(self):
        for sw in self.switches.values():
            sw.heal()

    def reachable(self, src_ip, dst_ip):
        """Whether a packet from ``src_ip`` can currently reach ``dst_ip``.

        Consulted by connection establishment (the handshake is simulated
        as a latency wait, not wire packets, so it must ask the fabric
        instead of discovering the outage the hard way).
        """
        if src_ip == dst_ip:
            return True
        if self.switch.crosses_partition(src_ip, dst_ip):
            return False
        for ip in (src_ip, dst_ip):
            if ip in self.nics and not self.switch_of(ip).port_admin(ip):
                return False
        return True

    def stats(self):
        forwarded = sum(sw.forwarded for sw in self.switches.values())
        unroutable = sum(sw.unroutable for sw in self.switches.values())
        dropped = sum(sw.partition_dropped for sw in self.switches.values())
        return {
            "forwarded": forwarded,
            "unroutable": unroutable,
            "partition_dropped": dropped,
            "switches": len(self.switches),
            "ports": {
                ip: self._switch_of[ip].port_stats(ip) for ip in self.nics
            },
        }
