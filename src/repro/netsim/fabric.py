"""Cluster network fabric: names, addresses, and the LAN topology."""

from repro.netsim.packet import Address
from repro.netsim.nic import Nic
from repro.netsim.switch import Switch


class Fabric:
    """The LAN connecting a cluster's nodes through one switch.

    Responsible for IP assignment and NIC creation.  Experiments ask the
    fabric for link statistics (utilization, queueing) to report network
    health alongside SysProf's own measurements.
    """

    def __init__(self, sim, bandwidth_bps=1_000_000_000, latency=50e-6,
                 loss_rate=0.0, rng=None, name="lan0"):
        self.sim = sim
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.latency = latency
        self.switch = Switch(
            sim, bandwidth_bps, latency, loss_rate=loss_rate, rng=rng,
            name="{}-sw".format(name),
        )
        self._next_host = 1
        self.nics = {}

    def allocate_ip(self):
        ip = "10.0.0.{}".format(self._next_host)
        self._next_host += 1
        return ip

    def create_nic(self, ip=None, bandwidth_bps=None, latency=None):
        """Create a NIC, attach it to the switch, and return it."""
        ip = ip or self.allocate_ip()
        if ip in self.nics:
            raise ValueError("duplicate IP on fabric: {}".format(ip))
        nic = Nic(self.sim, ip)
        self.switch.attach(nic, bandwidth_bps=bandwidth_bps, latency=latency)
        self.nics[ip] = nic
        return nic

    def address(self, ip, port):
        return Address(ip, port)

    # -- failure injection hooks ----------------------------------------

    def set_link_admin(self, ip, up):
        """Raise/lower both directions of the port serving ``ip``."""
        self.switch.set_port_admin(ip, up)

    def link_admin(self, ip):
        return self.switch.port_admin(ip)

    def partition(self, *groups):
        """Partition the switch into isolated IP groups; see Switch.partition."""
        self.switch.partition(*groups)

    def heal(self):
        self.switch.heal()

    def reachable(self, src_ip, dst_ip):
        """Whether a packet from ``src_ip`` can currently reach ``dst_ip``.

        Consulted by connection establishment (the handshake is simulated
        as a latency wait, not wire packets, so it must ask the fabric
        instead of discovering the outage the hard way).
        """
        if src_ip == dst_ip:
            return True
        if self.switch.crosses_partition(src_ip, dst_ip):
            return False
        for ip in (src_ip, dst_ip):
            if ip in self.nics and not self.switch.port_admin(ip):
                return False
        return True

    def stats(self):
        return {
            "forwarded": self.switch.forwarded,
            "unroutable": self.switch.unroutable,
            "partition_dropped": self.switch.partition_dropped,
            "ports": {ip: self.switch.port_stats(ip) for ip in self.nics},
        }
