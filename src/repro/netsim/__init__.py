"""Network fabric simulation: store-and-forward Ethernet links and
switches, per-packet NIC processing with interrupt-driven receive
paths, and the flow keys SysProf uses to pair messages into
interactions.  Per-layer packet-processing CPU is charged to the
simulated kernels, which is what makes the §3.1 iperf overhead
numbers emergent rather than hard-coded."""

from repro.netsim.packet import Address, FlowKey, Packet
from repro.netsim.link import Link
from repro.netsim.nic import Nic
from repro.netsim.switch import Switch
from repro.netsim.fabric import Fabric

__all__ = ["Address", "Fabric", "FlowKey", "Link", "Nic", "Packet", "Switch"]
