"""Network fabric simulation: packets, NICs, links, and switches."""

from repro.netsim.packet import Address, FlowKey, Packet
from repro.netsim.link import Link
from repro.netsim.nic import Nic
from repro.netsim.switch import Switch
from repro.netsim.fabric import Fabric

__all__ = ["Address", "Fabric", "FlowKey", "Link", "Nic", "Packet", "Switch"]
