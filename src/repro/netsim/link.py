"""Point-to-point unidirectional link with serialization, latency, and loss."""

from repro.sim.resources import Store


class Link:
    """One direction of a wire.

    Packets are serialized at ``bandwidth_bps`` (one at a time,
    store-and-forward) then arrive at ``deliver`` after the propagation
    ``latency``.  ``loss_rate`` drops packets after serialization, as a
    real lossy medium would.

    Two admission styles:

    * :meth:`transmit` — fire-and-forget, packet waits in the link queue
      (used by switch output ports, where queueing is the model).
    * :meth:`transmit_blocking` — returns a waitable that triggers when
      serialization finishes, so the caller (a NIC TX ring pump) can apply
      backpressure instead of queueing unboundedly.
    """

    def __init__(self, sim, bandwidth_bps, latency, deliver, loss_rate=0.0, rng=None, name="link"):
        if bandwidth_bps <= 0:
            raise ValueError("link bandwidth must be positive")
        if loss_rate and rng is None:
            raise ValueError("loss_rate requires an rng stream")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.latency = latency
        self.loss_rate = loss_rate
        self.name = name
        self._deliver = deliver
        self._rng = rng
        self._queue = Store(sim)
        self.admin_up = True
        self.tx_packets = 0
        self.tx_bytes = 0
        self.dropped = 0
        self.admin_dropped = 0
        self.busy_time = 0.0
        sim.process(self._pump(), name="{}-pump".format(name))

    def set_admin(self, up):
        """Administratively raise/lower the link.

        Distinct from ``loss_rate``: while down, every packet is dropped
        deterministically after serialization (the wire still clocks bits
        out; they just go nowhere), counted in ``admin_dropped``.
        """
        self.admin_up = bool(up)

    def transmit(self, packet):
        """Queue a packet for transmission (never blocks the caller)."""
        self._queue.put((packet, None))

    def transmit_blocking(self, packet):
        """Queue a packet; the returned waitable fires when it leaves the wire."""
        done = self.sim.waitable()
        self._queue.put((packet, done))
        return done

    @property
    def queue_depth(self):
        return len(self._queue)

    def serialization_delay(self, packet):
        return packet.wire_size * 8.0 / self.bandwidth_bps

    def utilization(self, now):
        return self.busy_time / now if now > 0 else 0.0

    def _pump(self):
        while True:
            packet, done = yield self._queue.get()
            delay = self.serialization_delay(packet)
            yield self.sim.timeout(delay)
            self.busy_time += delay
            self.tx_packets += 1
            self.tx_bytes += packet.wire_size
            if done is not None:
                done.succeed(packet)
            if not self.admin_up:
                self.admin_dropped += 1
                continue
            if self.loss_rate and self._rng.random() < self.loss_rate:
                self.dropped += 1
                continue
            self.sim.schedule(self.latency, self._deliver, packet)
