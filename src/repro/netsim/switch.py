"""Output-queued Ethernet-like switch."""

from repro.netsim.link import Link


class Switch:
    """A store-and-forward switch with per-output-port serialization.

    Each attached NIC gets an uplink (NIC → switch, owned by the NIC's TX
    pump) and a downlink (switch → NIC, owned by the switch).  Forwarding
    looks up the destination IP and enqueues on that port's downlink; the
    downlink's queue is where receive-side congestion forms.
    """

    def __init__(self, sim, bandwidth_bps, latency, forward_delay=5e-6, name="sw0",
                 loss_rate=0.0, rng=None):
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.latency = latency
        self.forward_delay = forward_delay
        self.name = name
        self.loss_rate = loss_rate
        self._rng = rng
        self._downlinks = {}  # ip -> Link towards that NIC
        self._uplinks = {}  # ip -> Link from that NIC into the switch
        self.forwarded = 0
        self.unroutable = 0

    def attach(self, nic, bandwidth_bps=None, latency=None):
        """Attach a NIC; per-port bandwidth/latency may override the default."""
        bw = bandwidth_bps or self.bandwidth_bps
        lat = latency if latency is not None else self.latency
        downlink = Link(
            self.sim, bw, lat, nic.receive,
            loss_rate=self.loss_rate, rng=self._rng,
            name="{}->{}".format(self.name, nic.ip),
        )
        uplink = Link(
            self.sim, bw, lat, self._forward,
            loss_rate=self.loss_rate, rng=self._rng,
            name="{}->{}".format(nic.ip, self.name),
        )
        self._downlinks[nic.ip] = downlink
        self._uplinks[nic.ip] = uplink
        nic.attach(uplink)
        return downlink

    def _forward(self, packet):
        downlink = self._downlinks.get(packet.dst.ip)
        if downlink is None:
            self.unroutable += 1
            return
        self.forwarded += 1
        if self.forward_delay:
            self.sim.schedule(self.forward_delay, downlink.transmit, packet)
        else:
            downlink.transmit(packet)

    def port_stats(self, ip):
        """TX/queue statistics for the downlink serving ``ip``."""
        link = self._downlinks[ip]
        return {
            "tx_packets": link.tx_packets,
            "tx_bytes": link.tx_bytes,
            "queued": link.queue_depth,
            "busy_time": link.busy_time,
        }
