"""Output-queued Ethernet-like switch."""

from repro.netsim.link import Link


class Switch:
    """A store-and-forward switch with per-output-port serialization.

    Each attached NIC gets an uplink (NIC → switch, owned by the NIC's TX
    pump) and a downlink (switch → NIC, owned by the switch).  Forwarding
    looks up the destination IP and enqueues on that port's downlink; the
    downlink's queue is where receive-side congestion forms.

    Switches compose into spine/leaf trees via :meth:`connect`: a trunk
    link pair joins two switches, remote IPs learned from children are
    advertised up the tree, and anything still unknown rides the
    ``default_route`` toward the uplink.  Every forwarding decision is a
    constant number of dict lookups regardless of port or switch count.
    """

    def __init__(self, sim, bandwidth_bps, latency, forward_delay=5e-6, name="sw0",
                 loss_rate=0.0, rng=None):
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.latency = latency
        self.forward_delay = forward_delay
        self.name = name
        self.loss_rate = loss_rate
        self._rng = rng
        self._downlinks = {}  # ip -> Link towards that NIC
        self._uplinks = {}  # ip -> Link from that NIC into the switch
        self._routes = {}  # remote ip -> trunk Link toward the owning switch
        self._trunks = {}  # peer switch name -> trunk Link to that peer
        self._partition = {}  # ip -> group index; unmapped ips are unrestricted
        self.parent = None  # uplink peer switch, when part of a tree
        self.uplink_latency = 0.0  # one-way latency of the trunk to the parent
        self.default_route = None  # trunk Link used for unknown destinations
        self.forwarded = 0
        self.unroutable = 0
        self.partition_dropped = 0

    def attach(self, nic, bandwidth_bps=None, latency=None):
        """Attach a NIC; per-port bandwidth/latency may override the default."""
        bw = bandwidth_bps or self.bandwidth_bps
        lat = latency if latency is not None else self.latency
        downlink = Link(
            self.sim, bw, lat, nic.receive,
            loss_rate=self.loss_rate, rng=self._rng,
            name="{}->{}".format(self.name, nic.ip),
        )
        uplink = Link(
            self.sim, bw, lat, self._forward,
            loss_rate=self.loss_rate, rng=self._rng,
            name="{}->{}".format(nic.ip, self.name),
        )
        self._downlinks[nic.ip] = downlink
        self._uplinks[nic.ip] = uplink
        nic.attach(uplink)
        self._advertise(nic.ip)
        return downlink

    def connect(self, peer, bandwidth_bps=None, latency=None, uplink=True):
        """Trunk this switch to ``peer`` with a bidirectional link pair.

        With ``uplink=True`` (the default) ``peer`` becomes this switch's
        parent: unknown destinations follow the trunk up, and every IP
        already attached below this switch is advertised up the tree so
        descent stays a single dict hit at each hop.
        """
        bw = bandwidth_bps or self.bandwidth_bps
        lat = latency if latency is not None else self.latency
        to_peer = Link(
            self.sim, bw, lat, peer._forward,
            loss_rate=self.loss_rate, rng=self._rng,
            name="{}=>{}".format(self.name, peer.name),
        )
        to_self = Link(
            self.sim, bw, lat, self._forward,
            loss_rate=peer.loss_rate, rng=peer._rng,
            name="{}=>{}".format(peer.name, self.name),
        )
        self._trunks[peer.name] = to_peer
        peer._trunks[self.name] = to_self
        if uplink:
            if self.parent is not None:
                raise ValueError("switch {} already has an uplink".format(self.name))
            self.parent = peer
            self.uplink_latency = lat
            self.default_route = to_peer
        for ip in list(self._downlinks):
            self._advertise(ip)
        for ip in list(self._routes):
            self._advertise(ip)
        return to_peer

    def _advertise(self, ip):
        """Teach every ancestor switch which trunk leads back to ``ip``."""
        child, parent = self, self.parent
        while parent is not None:
            parent._routes[ip] = parent._trunks[child.name]
            child, parent = parent, parent.parent

    def set_port_admin(self, ip, up):
        """Raise/lower both directions of the port serving ``ip``."""
        if ip not in self._downlinks:
            raise KeyError("no port for ip {}".format(ip))
        self._downlinks[ip].set_admin(up)
        self._uplinks[ip].set_admin(up)

    def port_admin(self, ip):
        """True when both directions of the port serving ``ip`` are up."""
        return self._downlinks[ip].admin_up and self._uplinks[ip].admin_up

    def partition(self, *groups):
        """Split attached IPs into isolated groups (cross-group drops).

        Each argument is an iterable of IPs forming one side.  IPs left
        out of every group keep full connectivity — so a management node
        can still see both halves of a split, as in the real incidents
        the paper diagnoses.
        """
        mapping = {}
        for index, group in enumerate(groups):
            for ip in group:
                if ip in mapping:
                    raise ValueError("ip {} in more than one group".format(ip))
                mapping[ip] = index
        self._partition = mapping

    def heal(self):
        """Remove any active partition."""
        self._partition = {}

    def crosses_partition(self, src_ip, dst_ip):
        """True when a packet between the two IPs would be dropped."""
        if not self._partition:
            return False
        src_group = self._partition.get(src_ip)
        dst_group = self._partition.get(dst_ip)
        if src_group is None or dst_group is None:
            return False
        return src_group != dst_group

    def _forward(self, packet):
        dst_ip = packet.dst.ip
        out = self._downlinks.get(dst_ip)
        if out is None:
            out = self._routes.get(dst_ip) or self.default_route
        if out is None:
            self.unroutable += 1
            return
        if self.crosses_partition(packet.src.ip, packet.dst.ip):
            self.partition_dropped += 1
            return
        self.forwarded += 1
        if self.forward_delay:
            self.sim.schedule(self.forward_delay, out.transmit, packet)
        else:
            out.transmit(packet)

    def port_stats(self, ip):
        """TX/queue statistics for the downlink serving ``ip``."""
        link = self._downlinks[ip]
        return {
            "tx_packets": link.tx_packets,
            "tx_bytes": link.tx_bytes,
            "queued": link.queue_depth,
            "busy_time": link.busy_time,
        }
