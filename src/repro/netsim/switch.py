"""Output-queued Ethernet-like switch."""

from repro.netsim.link import Link


class Switch:
    """A store-and-forward switch with per-output-port serialization.

    Each attached NIC gets an uplink (NIC → switch, owned by the NIC's TX
    pump) and a downlink (switch → NIC, owned by the switch).  Forwarding
    looks up the destination IP and enqueues on that port's downlink; the
    downlink's queue is where receive-side congestion forms.
    """

    def __init__(self, sim, bandwidth_bps, latency, forward_delay=5e-6, name="sw0",
                 loss_rate=0.0, rng=None):
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.latency = latency
        self.forward_delay = forward_delay
        self.name = name
        self.loss_rate = loss_rate
        self._rng = rng
        self._downlinks = {}  # ip -> Link towards that NIC
        self._uplinks = {}  # ip -> Link from that NIC into the switch
        self._partition = {}  # ip -> group index; unmapped ips are unrestricted
        self.forwarded = 0
        self.unroutable = 0
        self.partition_dropped = 0

    def attach(self, nic, bandwidth_bps=None, latency=None):
        """Attach a NIC; per-port bandwidth/latency may override the default."""
        bw = bandwidth_bps or self.bandwidth_bps
        lat = latency if latency is not None else self.latency
        downlink = Link(
            self.sim, bw, lat, nic.receive,
            loss_rate=self.loss_rate, rng=self._rng,
            name="{}->{}".format(self.name, nic.ip),
        )
        uplink = Link(
            self.sim, bw, lat, self._forward,
            loss_rate=self.loss_rate, rng=self._rng,
            name="{}->{}".format(nic.ip, self.name),
        )
        self._downlinks[nic.ip] = downlink
        self._uplinks[nic.ip] = uplink
        nic.attach(uplink)
        return downlink

    def set_port_admin(self, ip, up):
        """Raise/lower both directions of the port serving ``ip``."""
        if ip not in self._downlinks:
            raise KeyError("no port for ip {}".format(ip))
        self._downlinks[ip].set_admin(up)
        self._uplinks[ip].set_admin(up)

    def port_admin(self, ip):
        """True when both directions of the port serving ``ip`` are up."""
        return self._downlinks[ip].admin_up and self._uplinks[ip].admin_up

    def partition(self, *groups):
        """Split attached IPs into isolated groups (cross-group drops).

        Each argument is an iterable of IPs forming one side.  IPs left
        out of every group keep full connectivity — so a management node
        can still see both halves of a split, as in the real incidents
        the paper diagnoses.
        """
        mapping = {}
        for index, group in enumerate(groups):
            for ip in group:
                if ip in mapping:
                    raise ValueError("ip {} in more than one group".format(ip))
                mapping[ip] = index
        self._partition = mapping

    def heal(self):
        """Remove any active partition."""
        self._partition = {}

    def crosses_partition(self, src_ip, dst_ip):
        """True when a packet between the two IPs would be dropped."""
        if not self._partition:
            return False
        src_group = self._partition.get(src_ip)
        dst_group = self._partition.get(dst_ip)
        if src_group is None or dst_group is None:
            return False
        return src_group != dst_group

    def _forward(self, packet):
        downlink = self._downlinks.get(packet.dst.ip)
        if downlink is None:
            self.unroutable += 1
            return
        if self.crosses_partition(packet.src.ip, packet.dst.ip):
            self.partition_dropped += 1
            return
        self.forwarded += 1
        if self.forward_delay:
            self.sim.schedule(self.forward_delay, downlink.transmit, packet)
        else:
            downlink.transmit(packet)

    def port_stats(self, ip):
        """TX/queue statistics for the downlink serving ``ip``."""
        link = self._downlinks[ip]
        return {
            "tx_packets": link.tx_packets,
            "tx_bytes": link.tx_bytes,
            "queued": link.queue_depth,
            "busy_time": link.busy_time,
        }
