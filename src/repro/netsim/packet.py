"""Packets and endpoint addressing.

Addresses are ``(ip, port)`` pairs exactly as in the paper's definition of
communicating nodes: "node_A (identified by {node_A IP, node_A port} pair)".
A :class:`FlowKey` canonicalizes the two endpoints of a conversation so
that both directions of a flow hash to the same key — the basis of the
message/interaction extraction in :mod:`repro.core.interactions`.
"""

from itertools import count


class Address(tuple):
    """An ``(ip, port)`` endpoint."""

    __slots__ = ()

    def __new__(cls, ip, port):
        return super().__new__(cls, (ip, int(port)))

    @property
    def ip(self):
        return self[0]

    @property
    def port(self):
        return self[1]

    def __repr__(self):
        return "{}:{}".format(self[0], self[1])


class FlowKey(tuple):
    """Direction-independent identifier of a conversation between two endpoints."""

    __slots__ = ()

    def __new__(cls, addr_a, addr_b):
        ends = sorted([tuple(addr_a), tuple(addr_b)])
        return super().__new__(cls, (ends[0], ends[1]))

    @property
    def low(self):
        return Address(*self[0])

    @property
    def high(self):
        return Address(*self[1])

    def __repr__(self):
        return "flow({}<->{})".format(Address(*self[0]), Address(*self[1]))


_packet_ids = count(1)


class Packet:
    """A network packet.

    ``size`` counts payload bytes; ``wire_size`` adds header overhead.
    ``message`` optionally references the application message the packet
    is a segment of (delivered to the destination socket when the last
    segment arrives).  ``frames`` supports train aggregation: one simulated
    packet standing in for ``frames`` back-to-back MTU frames, with all
    serialization and per-packet CPU costs scaled accordingly.
    """

    __slots__ = (
        "packet_id",
        "src",
        "dst",
        "size",
        "kind",
        "message",
        "seq",
        "is_last",
        "frames",
        "sent_at",
        "meta",
    )

    HEADER_BYTES = 66  # Ethernet + IP + TCP headers

    def __init__(
        self,
        src,
        dst,
        size,
        kind="data",
        message=None,
        seq=0,
        is_last=True,
        frames=1,
        meta=None,
    ):
        self.packet_id = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.size = int(size)
        self.kind = kind
        self.message = message
        self.seq = seq
        self.is_last = is_last
        self.frames = frames
        self.sent_at = None
        self.meta = meta

    @property
    def wire_size(self):
        return self.size + self.HEADER_BYTES * self.frames

    @property
    def flow_key(self):
        return FlowKey(self.src, self.dst)

    def __repr__(self):
        return "<Packet #{} {}->{} {}B {}>".format(
            self.packet_id, self.src, self.dst, self.size, self.kind
        )
