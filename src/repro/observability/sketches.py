"""Mergeable log-bucketed quantile sketches for streaming diagnosis.

The online diagnosis engine needs per-request-class latency and
queue-depth distributions at the GPA without shipping every interaction
record: a node at 10k req/s and a node at 10 req/s must cost the same
dissemination bandwidth.  This module provides the standard answer — a
DDSketch-style quantile sketch over logarithmic buckets:

* ``bucket(v) = ceil(log(v) / log(gamma))`` with
  ``gamma = (1 + alpha) / (1 - alpha)``, so any quantile estimate is
  within *relative* error ``alpha`` of the true value (the benchmark
  asserts ``p99`` error well under 2% at the default ``alpha = 0.01``);
* two sketches over the same ``alpha`` merge by adding bucket counts —
  merging windows from many nodes is exact (the merged sketch equals
  the sketch of the concatenated stream);
* the bucket table is bounded: when it exceeds ``max_buckets`` the two
  *lowest* buckets collapse into one, sacrificing low-quantile
  resolution first and preserving the tail percentiles SLOs care about.

A sketch serializes to one fixed-width row (``SKETCH_FORMAT`` in
:mod:`repro.core.lpa`) whose bucket table is a run-length string packed
by :func:`repro.core.encoding.pack_count_runs`; :meth:`to_row` collapses
until the payload fits, so a sketch row always has bounded size.

Everything here is host-side arithmetic: the *simulated* CPU cost of
updates and merges is charged separately (``CostModel.sketch_update`` /
``sketch_merge``) by the LPA and GPA code that drives these objects.
"""

import math
import os
from collections import deque

try:
    if os.environ.get("REPRO_NO_NUMPY"):
        raise ImportError("numpy disabled via REPRO_NO_NUMPY")
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via REPRO_NO_NUMPY
    _np = None

#: Metrics the interaction sketch emitter maintains per request class.
SKETCH_METRICS = ("latency", "qdepth")

#: Width of the bucket-table string field in ``SKETCH_FORMAT`` rows.
SKETCH_PAYLOAD_WIDTH = 2560

#: Values at or below this are counted in the zero bucket (exact).
MIN_TRACKABLE = 1e-9


class QuantileSketch:
    """A mergeable quantile sketch with bounded relative error.

    ``alpha`` is the relative-accuracy guarantee; ``max_buckets`` bounds
    memory and wire size by collapsing the lowest buckets together.
    """

    __slots__ = (
        "alpha", "gamma", "_inv_log_gamma", "max_buckets", "buckets",
        "zero_count", "count", "min_value", "max_value", "sum_value",
        "collapses", "_floor",
    )

    def __init__(self, alpha=0.01, max_buckets=256):
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1), got {}".format(alpha))
        if max_buckets < 2:
            raise ValueError("max_buckets must be >= 2")
        self.alpha = float(alpha)
        self.gamma = (1.0 + self.alpha) / (1.0 - self.alpha)
        self._inv_log_gamma = 1.0 / math.log(self.gamma)
        self.max_buckets = int(max_buckets)
        self.buckets = {}  # bucket index -> count
        self.zero_count = 0
        self.count = 0
        self.min_value = math.inf
        self.max_value = -math.inf
        self.sum_value = 0.0
        self.collapses = 0
        # Once a collapse has happened, new values below the collapsed
        # floor clamp into it instead of reopening low buckets (otherwise
        # a low-heavy stream collapses on every insert).
        self._floor = None

    # -- update ----------------------------------------------------------

    def add(self, value, count=1):
        """Record ``value`` (``count`` times).  Non-positive values land
        in the exact zero bucket."""
        if count < 1:
            raise ValueError("count must be >= 1")
        value = float(value)
        if value > MIN_TRACKABLE:
            index = math.ceil(math.log(value) * self._inv_log_gamma)
            if self._floor is not None and index < self._floor:
                index = self._floor
            self.buckets[index] = self.buckets.get(index, 0) + count
            if len(self.buckets) > self.max_buckets:
                self._collapse_lowest()
        else:
            value = 0.0
            self.zero_count += count
        self.count += count
        self.sum_value += value * count
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        return self

    def update_many(self, values):
        """Record a batch of values (vectorized when numpy is present).

        The numpy kernel computes every bucket index in one
        ``np.log``/``np.ceil`` pass and aggregates per-bucket counts with
        ``np.bincount``; without numpy it degrades to a plain
        :meth:`add` loop.  Counts, ``zero_count``, ``min_value`` and
        ``max_value`` are exactly what the loop would produce.  Two
        deliberate deviations keep the kernel fast, and are why the
        *in-simulation* SketchLPA sticks to scalar :meth:`add` (see
        docs/performance.md): ``np.log`` may differ from ``math.log`` by
        one ulp (a value sitting exactly on a bucket boundary can land
        one bucket over, still within the ``alpha`` guarantee), and
        ``sum_value`` accumulates in numpy's pairwise order rather than
        strict stream order.  Batch consumers — benchmarks, the
        profiling harness, offline analysis — don't care; trace-hash
        determinism does.
        """
        if _np is None:
            add = self.add
            for value in values:
                add(value)
            return self
        arr = _np.asarray(values, dtype=_np.float64)
        if arr.ndim != 1:
            raise ValueError("update_many expects a 1-d sequence of values")
        total = arr.size
        if total == 0:
            return self
        positive = arr[arr > MIN_TRACKABLE]
        zeros = total - positive.size
        if positive.size:
            indices = _np.ceil(
                _np.log(positive) * self._inv_log_gamma
            ).astype(_np.int64)
            if self._floor is not None:
                _np.maximum(indices, self._floor, out=indices)
            low = int(indices.min())
            high = int(indices.max())
            buckets = self.buckets
            # bincount wants a dense range; fall back to unique counting
            # when the index span dwarfs the sample count (tiny alpha
            # over a huge dynamic range).
            if high - low < 4 * indices.size + 1024:
                counts = _np.bincount(indices - low)
                for offset, count in enumerate(counts.tolist()):
                    if count:
                        index = low + offset
                        buckets[index] = buckets.get(index, 0) + count
            else:
                uniq, counts = _np.unique(indices, return_counts=True)
                for index, count in zip(uniq.tolist(), counts.tolist()):
                    buckets[index] = buckets.get(index, 0) + count
            while len(buckets) > self.max_buckets:
                self._collapse_lowest()
            self.sum_value += float(positive.sum())
            batch_min = float(positive.min())
            batch_max = float(positive.max())
            if zeros:
                batch_min = 0.0
                batch_max = max(batch_max, 0.0)
            if batch_min < self.min_value:
                self.min_value = batch_min
            if batch_max > self.max_value:
                self.max_value = batch_max
        elif zeros:
            if 0.0 < self.min_value:
                self.min_value = 0.0
            if 0.0 > self.max_value:
                self.max_value = 0.0
        self.zero_count += zeros
        self.count += total
        return self

    def merge(self, other):
        """Fold ``other`` into this sketch (same ``alpha`` required)."""
        if abs(other.alpha - self.alpha) > 1e-12:
            raise ValueError(
                "cannot merge sketches with different alpha "
                "({} vs {})".format(self.alpha, other.alpha)
            )
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count
        while len(self.buckets) > self.max_buckets:
            self._collapse_lowest()
        self.zero_count += other.zero_count
        self.count += other.count
        self.sum_value += other.sum_value
        if other.count:
            self.min_value = min(self.min_value, other.min_value)
            self.max_value = max(self.max_value, other.max_value)
        return self

    def _collapse_lowest(self):
        """Merge the two lowest buckets (low quantiles blur; the tail —
        what SLO rules read — keeps full resolution)."""
        ordered = sorted(self.buckets)
        lowest, second = ordered[0], ordered[1]
        self.buckets[second] += self.buckets.pop(lowest)
        self._floor = second
        self.collapses += 1

    # -- query -----------------------------------------------------------

    def _value(self, index):
        """Midpoint estimate for a bucket: within ``alpha`` of any true
        value in ``(gamma**(i-1), gamma**i]``."""
        return 2.0 * self.gamma ** index / (self.gamma + 1.0)

    def quantile(self, q):
        """The q-quantile estimate (``q`` in [0, 1]); None when empty."""
        if self.count == 0:
            return None
        q = min(1.0, max(0.0, float(q)))
        rank = q * (self.count - 1)
        cumulative = self.zero_count
        if cumulative > rank:
            return 0.0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative > rank:
                return self._value(index)
        return self.max_value

    def percentile(self, p):
        """``p`` in [0, 100] — convenience over :meth:`quantile`."""
        return self.quantile(p / 100.0)

    @property
    def mean(self):
        return self.sum_value / self.count if self.count else 0.0

    def copy(self):
        duplicate = QuantileSketch(alpha=self.alpha, max_buckets=self.max_buckets)
        duplicate.buckets = dict(self.buckets)
        duplicate.zero_count = self.zero_count
        duplicate.count = self.count
        duplicate.min_value = self.min_value
        duplicate.max_value = self.max_value
        duplicate.sum_value = self.sum_value
        duplicate.collapses = self.collapses
        duplicate._floor = self._floor
        return duplicate

    # -- wire format ------------------------------------------------------

    def to_row(self, node, request_class, metric, window_start, window_end,
               width=SKETCH_PAYLOAD_WIDTH):
        """Serialize as one ``SKETCH_FORMAT``-ordered row tuple.

        Collapses lowest buckets until the run-length payload fits in
        ``width`` characters, so the row is always encodable into the
        fixed-width string field regardless of how spread the data is.
        """
        # Deferred import: repro.core.lpa imports this module, so a
        # top-level import of repro.core here would be circular.
        from repro.core.encoding import pack_count_runs

        base, payload = pack_count_runs(self.buckets)
        while len(payload) > width and len(self.buckets) > 1:
            self._collapse_lowest()
            base, payload = pack_count_runs(self.buckets)
        empty = self.count == 0
        return (
            node,
            request_class,
            metric,
            float(window_start),
            float(window_end),
            self.count,
            self.zero_count,
            0.0 if empty else self.min_value,
            0.0 if empty else self.max_value,
            self.sum_value,
            self.alpha,
            base,
            payload,
        )

    @classmethod
    def from_row(cls, record, max_buckets=None):
        """Rebuild a sketch from a decoded ``SKETCH_FORMAT`` record dict."""
        from repro.core.encoding import unpack_count_runs

        buckets = unpack_count_runs(record["base_index"], record["buckets"])
        sketch = cls(
            alpha=record["alpha"],
            max_buckets=max_buckets or max(256, len(buckets)),
        )
        sketch.buckets = buckets
        sketch.zero_count = int(record["zero_count"])
        sketch.count = int(record["count"])
        sketch.sum_value = float(record["sum_value"])
        if sketch.count:
            sketch.min_value = float(record["min_value"])
            sketch.max_value = float(record["max_value"])
        return sketch

    def __repr__(self):
        return "<QuantileSketch n={} buckets={} alpha={}>".format(
            self.count, len(self.buckets), self.alpha
        )


class SketchStore:
    """The GPA's windowed sketch series, merged on demand.

    Each ingested ``SKETCH_FORMAT`` record is one eviction window from
    one node; the store keeps a bounded history per ``(node,
    request_class, metric)`` keyed by the window-end time corrected to
    the reference clock, so SLO rules can merge "the last N seconds"
    across nodes regardless of local clock skew.
    """

    def __init__(self, clock_table=None, history=256):
        self.clock_table = clock_table
        self.history = history
        self.series = {}  # (node, request_class, metric) -> deque[(end_ref, sketch)]
        self.rows_ingested = 0

    def ingest(self, record):
        """Store one decoded sketch record (a dict of SKETCH_FORMAT fields)."""
        node = record["node"]
        end = record["window_end"]
        if self.clock_table is not None and self.clock_table.known(node):
            end = self.clock_table.to_reference(node, end)
        key = (node, record["request_class"], record["metric"])
        windows = self.series.get(key)
        if windows is None:
            windows = self.series[key] = deque(maxlen=self.history)
        windows.append((end, QuantileSketch.from_row(record)))
        self.rows_ingested += 1

    def clear(self):
        """Drop in-memory windows (GPA restart: history dies with the
        process; ``rows_ingested`` stays cumulative like every counter)."""
        self.series.clear()

    # -- views ------------------------------------------------------------

    def classes(self, metric="latency"):
        """Request classes with at least one stored window."""
        return sorted({
            key[1] for key in self.series if key[2] == metric
        })

    def nodes(self, request_class=None, metric="latency"):
        return sorted({
            key[0]
            for key in self.series
            if key[2] == metric
            and (request_class is None or key[1] == request_class)
        })

    def merged(self, request_class=None, metric="latency", node=None,
               since=None, alpha=None):
        """One sketch merging every matching window (``None`` matches all).

        ``since`` keeps only windows that *ended* at or after that
        reference time — the engine's sliding lookback.  Returns an empty
        sketch (count 0) when nothing matches.
        """
        merged = None
        for (key_node, key_class, key_metric), windows in sorted(self.series.items()):
            if key_metric != metric:
                continue
            if request_class is not None and key_class != request_class:
                continue
            if node is not None and key_node != node:
                continue
            for end, sketch in windows:
                if since is not None and end < since:
                    continue
                if merged is None:
                    merged = sketch.copy()
                else:
                    merged.merge(sketch)
        if merged is None:
            merged = QuantileSketch(alpha=alpha or 0.01)
        return merged

    def latest_window_end(self, node=None):
        """Most recent corrected window-end seen (None when empty)."""
        latest = None
        for (key_node, _cls, _metric), windows in self.series.items():
            if node is not None and key_node != node:
                continue
            if windows:
                end = windows[-1][0]
                if latest is None or end > latest:
                    latest = end
        return latest

    def stats(self):
        return {
            "rows_ingested": self.rows_ingested,
            "series": len(self.series),
        }
