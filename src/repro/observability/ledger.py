"""Per-category attribution of simulated CPU time.

Every charge retiring on a simulated CPU (:class:`repro.ossim.cpu.Cpu`)
is tagged with one of the :data:`CATEGORIES` below, so the paper's
overhead claims — "monitoring perturbation is the CPU the probes,
analyzers, and the dissemination daemon steal from the workload" —
become queryable numbers per node instead of deltas between two runs.

Attribution resolution, in precedence order:

1. ``task.category`` — sticky task identity.  SysProf's own tasks (the
   dissemination daemon, the GPA) carry it, so *all* their CPU time —
   including syscall and network-stack work done on their behalf —
   counts toward monitoring.
2. Call-site attribution passed to ``Cpu.submit(..., attribution=...)``:
   either a single category string, or a tuple of ``(category,
   seconds)`` pairs summing to the submitted amount for composite
   charges (e.g. syscall entry = kernel fixed cost + probe + subscribed
   analyzer callbacks).  Only the *first* pair is overridden by
   ``task.category`` — probe/analyzer portions are monitoring cost no
   matter who pays them.
3. The default: ``workload``.

Purity contract: the ledger is host-side bookkeeping.  Charging it
consumes no simulated CPU, schedules no events, and reads no random
streams; installing it cannot change a same-seed trace hash.  The
per-node category sums equal ``kernel.cpu.busy_time`` exactly (the
retire step hands the ledger precisely the seconds it added to
``busy_time``; remainders are assigned to the last pair so float error
cannot accumulate).

Installation is process-global so experiments need no config plumbing::

    from repro.observability import ledger
    led = ledger.install()
    ...  # build clusters, run workloads
    led.breakdown("proxy")   # {"workload": ..., "probe": ..., ...}
    ledger.uninstall()

Kernels read :func:`active` once at construction, so install *before*
building the cluster.
"""

CATEGORIES = (
    "workload",
    "probe",
    "analyzer",
    "dissemination",
    "syscall",
    "netstack",
    "blockio",
    "idle",
)

#: The categories that are SysProf's own cost (the paper's "overhead").
MONITORING_CATEGORIES = ("probe", "analyzer", "dissemination")

_active = None


def install(ledger=None):
    """Make ``ledger`` (default: a fresh :class:`CpuLedger`) the process
    ledger.  Kernels built afterwards attach to it.  Returns it."""
    global _active
    if ledger is None:
        ledger = CpuLedger()
    _active = ledger
    return ledger


def uninstall():
    """Stop attributing; kernels built afterwards carry no ledger."""
    global _active
    _active = None


def active():
    """The installed :class:`CpuLedger`, or ``None``."""
    return _active


class CpuLedger:
    """Accumulates ``(node, category) -> simulated CPU seconds``."""

    def __init__(self):
        self._nodes = {}  # node name -> {category: seconds}
        self._kernels = {}  # node name -> Kernel (for idle/busy context)

    # -- write side (called from the CPU retire step) -------------------

    def attach_kernel(self, kernel):
        """Register a kernel so breakdowns can report idle time."""
        self._kernels[kernel.name] = kernel
        self._nodes.setdefault(kernel.name, {})

    def charge(self, node, category, seconds):
        """Attribute ``seconds`` of simulated CPU on ``node``."""
        categories = self._nodes.get(node)
        if categories is None:
            categories = self._nodes[node] = {}
        categories[category] = categories.get(category, 0.0) + seconds

    # -- read side ------------------------------------------------------

    def nodes(self):
        return sorted(self._nodes)

    def breakdown(self, node=None, include_idle=True):
        """Per-category seconds: one dict for ``node``, or ``{node: dict}``
        for all nodes.  ``idle`` is derived at query time from the
        attached kernel (``now * cores - busy``), never accumulated."""
        if node is not None:
            return self._one(node, include_idle)
        return {name: self._one(name, include_idle) for name in sorted(self._nodes)}

    def _one(self, node, include_idle):
        out = {category: 0.0 for category in CATEGORIES if category != "idle"}
        out.update(self._nodes.get(node, {}))
        kernel = self._kernels.get(node)
        if include_idle and kernel is not None:
            span = kernel.sim.now * kernel.cpu_count
            out["idle"] = max(0.0, span - kernel.cpu.busy_time)
        return out

    def busy_total(self, node):
        """Sum of all non-idle charges (equals ``cpu.busy_time``)."""
        return sum(self._nodes.get(node, {}).values())

    def monitoring_time(self, node):
        """Seconds charged to SysProf's own categories on ``node``."""
        categories = self._nodes.get(node, {})
        return sum(categories.get(c, 0.0) for c in MONITORING_CATEGORIES)

    def monitoring_share(self, node):
        """Monitoring seconds as a fraction of the node's busy time."""
        busy = self.busy_total(node)
        return self.monitoring_time(node) / busy if busy > 0.0 else 0.0

    def table(self, nodes=None):
        """Rows ``(node, category..., busy, monitoring %)`` for CLI output."""
        names = list(nodes) if nodes is not None else self.nodes()
        rows = []
        for name in names:
            breakdown = self._one(name, include_idle=False)
            busy = self.busy_total(name)
            row = [name]
            row.extend(breakdown.get(c, 0.0) * 1e3 for c in CATEGORIES if c != "idle")
            row.append(busy * 1e3)
            row.append(100.0 * self.monitoring_share(name))
            rows.append(tuple(row))
        return rows

    def __repr__(self):
        return "<CpuLedger {} nodes>".format(len(self._nodes))
