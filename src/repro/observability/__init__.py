"""Observability for the simulated cluster itself: SysProf's
evaluation (paper §3) argues that fine-grain monitoring is
cheap because capture, analysis, and dissemination are charged to the
same CPUs as the workload.  This package makes that claim *directly
measurable* instead of hand-derived: a per-category simulated-CPU
attribution ledger (:mod:`repro.observability.ledger`), a span tracer
over simulated time exporting Chrome trace-event JSON for Perfetto
(:mod:`repro.observability.tracer`), and a :class:`MetricsRegistry`
unifying the ad-hoc per-component ``stats()`` dicts behind one named,
typed counter/gauge surface (:mod:`repro.observability.metrics`).
On top of those sit the paper's *online* diagnosis pieces (§1, §3.2):
mergeable log-bucketed quantile sketches shipped over the frame wire
format (:mod:`repro.observability.sketches`), declarative SLO rules
with hysteresis (:mod:`repro.observability.slo`), and the closed-loop
:class:`DiagnosisEngine` (:mod:`repro.observability.diagnosis`) that
blames a node/stage and drills monitoring down on it.
Everything here is host-side bookkeeping: it charges zero simulated CPU
and perturbs no event ordering, so same-seed traces are byte-identical
with observability on or off (enforced by
``tests/integration/test_observability_determinism.py``).
"""

from repro.observability.ledger import (
    CATEGORIES,
    MONITORING_CATEGORIES,
    CpuLedger,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    build_registry,
)
from repro.observability.tracer import SpanTracer, validate_chrome_trace
from repro.observability.sketches import (
    SKETCH_METRICS,
    SKETCH_PAYLOAD_WIDTH,
    QuantileSketch,
    SketchStore,
)
from repro.observability.slo import (
    Alert,
    ExternalRule,
    SloParseError,
    SloRule,
    parse_rules,
)
from repro.observability.diagnosis import DiagnosisEngine
from repro.observability.recorder import TimeSeriesRecorder
from repro.observability.anomaly import (
    AnomalyMonitor,
    SeriesDetector,
    default_detectors,
    robust_zscore,
)

__all__ = [
    "CATEGORIES",
    "MONITORING_CATEGORIES",
    "CpuLedger",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "build_registry",
    "SpanTracer",
    "validate_chrome_trace",
    "SKETCH_METRICS",
    "SKETCH_PAYLOAD_WIDTH",
    "QuantileSketch",
    "SketchStore",
    "Alert",
    "ExternalRule",
    "SloParseError",
    "SloRule",
    "parse_rules",
    "DiagnosisEngine",
    "TimeSeriesRecorder",
    "AnomalyMonitor",
    "SeriesDetector",
    "default_detectors",
    "robust_zscore",
]
