"""The online diagnosis engine: evaluate SLOs, blame, drill down.

Ties the streaming pieces into the paper's closed loop ("runtime
streaming analyses" that detect SLA violations *while the system runs*,
§1/§3.2):

1. frames arrive at the GPA and land in its sketch store / nodestats
   history; the GPA offers every ingested batch to
   :meth:`DiagnosisEngine.on_ingest`;
2. at most once per ``eval_interval`` of simulated time the engine
   measures every :class:`~repro.observability.slo.SloRule` against the
   merged sketches, the CPU ledger, and node staleness;
3. a rule that fires produces an :class:`~repro.observability.slo.Alert`
   carrying **blame** — the node with the highest mean local residency
   over the recent window and its dominant stage (kernel-wait /
   kernel-cpu / user / io-blocked), reusing
   :mod:`repro.analysis.bottleneck`;
4. the blamed node is **drilled down**: the engine asks the
   :class:`~repro.core.controller.Controller` to shrink that node's
   eviction interval and force per-interaction records, so diagnosis
   data sharpens exactly where the problem is; resolution restores the
   saved settings.

Purity contract: the engine is host-side analysis driven from the GPA's
ingest path — it charges no simulated CPU, schedules no events, and
reads no random streams, so an installed engine whose rules never fire
cannot change a same-seed trace hash.  (When a rule *does* fire, the
drill-down changes monitoring behavior — that perturbation is the
point, and it is measured via the ledger.)
"""

from repro.observability import ledger as _ledger
from repro.observability.slo import Alert, ExternalRule, parse_rules

#: Percentiles rendered in the dashboard's latency table.
DASHBOARD_PERCENTILES = (50.0, 90.0, 95.0, 99.0)


class DiagnosisEngine:
    """Online SLO evaluation with blame attribution and drill-down."""

    def __init__(self, sysprof, rules=(), ledger=None, lookback=2.0,
                 eval_interval=0.1, drill_factor=4,
                 drill_granularity="interaction", blame_window=None):
        self.sysprof = sysprof
        self.gpa = sysprof.gpa
        if self.gpa is None:
            raise ValueError("DiagnosisEngine needs an installed GPA")
        self.controller = sysprof.controller
        self.ledger = ledger if ledger is not None else _ledger.active()
        self.rules = parse_rules(rules)
        self.lookback = lookback
        self.eval_interval = eval_interval
        self.drill_factor = drill_factor
        self.drill_granularity = drill_granularity
        self.blame_window = blame_window if blame_window is not None else lookback
        self.alerts = []        # every Alert ever fired, in order
        self.active = {}        # rule name -> firing Alert
        self.drill_log = []     # one dict per drill-down episode
        self._drill_open = {}   # node -> open episode dict
        self.evaluations = 0
        self.alerts_fired = 0
        self.alerts_resolved = 0
        self.anomaly_alerts = 0
        self.retunes = 0
        self._last_eval = None
        self._alert_seq = 0     # monotone alert-id source (rule + anomaly)
        self._listeners = []    # fns called with fire/clear event dicts
        self.gpa.diagnosis = self
        if sysprof.metrics is not None:
            sysprof.metrics.register_source("sysprof.diagnosis", self.stats)

    def detach(self):
        """Unhook from the GPA's ingest path."""
        if self.gpa.diagnosis is self:
            self.gpa.diagnosis = None

    # ------------------------------------------------------------------
    # alert events (service subscriptions)
    # ------------------------------------------------------------------

    def add_listener(self, fn):
        """Call ``fn(event)`` on every alert transition.

        Events are plain dicts: ``{"type": "alert", "state": "fire" |
        "clear", "at": now, "alert": alert.as_dict()}``.  Listeners are
        host-side observers — they must not touch the simulator.
        """
        self._listeners.append(fn)
        return fn

    def remove_listener(self, fn):
        if fn in self._listeners:
            self._listeners.remove(fn)

    def _emit(self, event):
        for fn in list(self._listeners):
            fn(event)

    def _next_alert_id(self):
        self._alert_seq += 1
        return self._alert_seq

    # ------------------------------------------------------------------
    # ingest-driven evaluation
    # ------------------------------------------------------------------

    def on_ingest(self, format_name, records):
        """GPA hook: rate-limited evaluation as telemetry arrives."""
        if format_name not in ("sysprof.sketch", "sysprof.nodestats"):
            return
        now = self.gpa.node.sim.now
        if self._last_eval is not None and now - self._last_eval < self.eval_interval:
            return
        self.evaluate(now)

    def evaluate(self, now):
        """Measure every rule once and advance its alert state."""
        self._last_eval = now
        self.evaluations += 1
        for rule in self.rules:
            value = rule.measure(
                self.gpa, ledger=self.ledger, now=now,
                lookback=rule.lookback or self.lookback,
            )
            transition = rule.update(
                value, threshold=rule.effective_threshold(self.gpa)
            )
            if transition == "fire":
                self._on_fire(rule, value, now)
            elif transition == "clear":
                self._on_clear(rule, value, now)
        return self.active

    def _on_fire(self, rule, value, now):
        blame = self.blame(rule, now)
        alert = Alert(rule, now, value, blame=blame, id=self._next_alert_id())
        self.active[rule.name] = alert
        self.alerts.append(alert)
        self.alerts_fired += 1
        self._emit({"type": "alert", "state": "fire", "at": now,
                    "alert": alert.as_dict()})
        node = blame.get("node")
        if node:
            self._drill(node, now)

    def _on_clear(self, rule, value, now):
        alert = self.active.pop(rule.name, None)
        if alert is None:
            return
        alert.resolve(now, value)
        self.alerts_resolved += 1
        self._emit({"type": "alert", "state": "clear", "at": now,
                    "alert": alert.as_dict()})
        node = alert.blame.get("node")
        if node and not self._still_blamed(node):
            self._restore(node, now)

    # ------------------------------------------------------------------
    # live retune (service control plane)
    # ------------------------------------------------------------------

    def set_rules(self, texts, now=None):
        """Replace the rule set mid-run.

        Rules whose normalized text is unchanged keep their firing state
        and hysteresis counters; rules that disappear have any active
        alert resolved (and the blamed node's drill-down restored, if no
        other alert still blames it).  Returns the new rule names.
        """
        if now is None:
            now = self.gpa.node.sim.now
        seen = set()
        kept = []
        existing = {rule.name: rule for rule in self.rules}
        for rule in parse_rules(texts):
            if rule.name in seen:
                continue
            seen.add(rule.name)
            kept.append(existing.get(rule.name, rule))
        for name, rule in existing.items():
            if name not in seen and name in self.active:
                self._on_clear(rule, rule.last_value, now)
                rule.firing = False
        self.rules = kept
        self.retunes += 1
        return [rule.name for rule in self.rules]

    def add_rule(self, text):
        """Append one rule; raises on a duplicate (by normalized text)."""
        rule = parse_rules([text])[0]
        if any(existing.name == rule.name for existing in self.rules):
            raise ValueError("duplicate rule {!r}".format(rule.name))
        self.rules.append(rule)
        self.retunes += 1
        return rule.name

    def remove_rule(self, name, now=None):
        """Drop one rule by its normalized text; resolves its alert."""
        name = " ".join(name.split())
        for i, rule in enumerate(self.rules):
            if rule.name == name:
                if now is None:
                    now = self.gpa.node.sim.now
                if name in self.active:
                    self._on_clear(rule, rule.last_value, now)
                    rule.firing = False
                del self.rules[i]
                self.retunes += 1
                return True
        return False

    # ------------------------------------------------------------------
    # external (anomaly-originated) alerts
    # ------------------------------------------------------------------

    def external_fire(self, name, value, now=None, blame=None,
                      source="anomaly", drill=False):
        """Fire a synthetic alert through the normal lifecycle.

        Used by the anomaly detectors: the alert gets a unique engine id
        (so it can never collide with a rule alert on the same node),
        shows up in ``active``/``alerts``/the dashboard, and is emitted
        to listeners.  No drill-down unless ``drill=True`` — anomaly
        alerts default to pure observation so they cannot perturb a
        same-seed trace.  Idempotent while firing: a second fire of the
        same name returns the existing alert.
        """
        if now is None:
            now = self.gpa.node.sim.now
        rule = ExternalRule(name)
        if rule.name in self.active:
            return self.active[rule.name]
        alert = Alert(rule, now, value, blame=blame or {},
                      id=self._next_alert_id(), source=source)
        self.active[rule.name] = alert
        self.alerts.append(alert)
        self.alerts_fired += 1
        self.anomaly_alerts += 1
        self._emit({"type": "alert", "state": "fire", "at": now,
                    "alert": alert.as_dict()})
        if drill:
            node = (blame or {}).get("node")
            if node:
                self._drill(node, now)
        return alert

    def external_clear(self, name, value=None, now=None):
        """Resolve a synthetic alert fired via :meth:`external_fire`."""
        name = " ".join(name.split())
        alert = self.active.pop(name, None)
        if alert is None:
            return None
        if now is None:
            now = self.gpa.node.sim.now
        alert.resolve(now, value)
        self.alerts_resolved += 1
        self._emit({"type": "alert", "state": "clear", "at": now,
                    "alert": alert.as_dict()})
        node = alert.blame.get("node")
        if node and not self._still_blamed(node):
            self._restore(node, now)
        return alert

    def _still_blamed(self, node):
        return any(
            alert.blame.get("node") == node for alert in self.active.values()
        )

    # ------------------------------------------------------------------
    # blame attribution
    # ------------------------------------------------------------------

    def blame(self, rule, now):
        """Name the responsible node and its dominant stage."""
        if rule.kind == "staleness":
            return {"node": rule.node, "stage": "stale", "reason": "telemetry quiet"}
        if rule.kind == "cpu_share":
            return {"node": rule.node, "stage": rule.category,
                    "reason": "category share over threshold"}
        # Latency/qdepth: rank monitored nodes by recent local residency.
        # Deferred import — analysis pulls in the experiments package,
        # which imports repro.core; importing it at module load would
        # cycle through a partially-initialized core package.
        from repro.analysis.bottleneck import find_bottleneck

        since = now - self.blame_window
        federation = self.sysprof.federation
        if rule.node:
            tier = self._query_tier(rule.node)
            report = self._ranked(find_bottleneck, tier, [rule.node], since)
            path = []
        elif federation is not None and federation.zones:
            report, path = self._federated_descent(find_bottleneck, since)
        else:
            candidates = sorted(self.sysprof.monitors)
            report = self._ranked(find_bottleneck, self.gpa, candidates, since)
            path = []
        diagnosis = next(
            (d for d in report.nodes if d.node == report.bottleneck), None
        )
        blame = {
            "node": report.bottleneck if diagnosis else None,
            "stage": diagnosis.dominant_component if diagnosis else None,
            "reason": report.reason,
        }
        if path:
            blame["path"] = path
        return blame

    @staticmethod
    def _ranked(find_bottleneck, tier, candidates, since):
        report = find_bottleneck(tier, candidates, since=since)
        if report.bottleneck in ("", "unknown"):
            # No fine-grained records in the window (e.g. class-granularity
            # nodes); fall back to the whole history.
            report = find_bottleneck(tier, candidates)
        return report

    def _query_tier(self, node):
        """The tier holding raw records for ``node``: its zone GPA when
        federated (the root only sees condensed rollups), else the root.
        A reparented member's freshest records live at its *adopter*."""
        federation = self.sysprof.federation
        if federation is not None:
            if node in federation.adopted:
                adopter = federation._adopter_tier(federation.adopted[node])
                if adopter is not None:
                    return adopter
            zone_gpa = federation.locate_member(node)
            if zone_gpa is not None:
                return zone_gpa
        return self.gpa

    def _federated_descent(self, find_bottleneck, since):
        """Walk blame down the federation tree, root to leaf.

        Rank the root's direct children (zone pseudo-nodes, via their
        condensed class summaries); while the winner is a zone, descend
        into that zone GPA's store and rank its members plus nested
        zones.  Terminates at a real node two or more tiers below the
        root with its per-interaction stage breakdown intact.
        """
        from repro.core.federation import ZONE_NODE_PREFIX

        federation = self.sysprof.federation
        tier = self.gpa
        # Reparented members publish past their dead zone: the root sees
        # escalated members directly, a standby zone sees its adoptees —
        # blame must rank them alongside the tier's own children.
        candidates = federation.root_candidates() + federation.root_adopted()
        path = []
        while True:
            report = self._ranked(find_bottleneck, tier, candidates, since)
            winner = report.bottleneck
            zone = winner[len(ZONE_NODE_PREFIX):]
            if not winner.startswith(ZONE_NODE_PREFIX) or zone not in federation.zones:
                return report, path
            path.append(winner)
            tier = federation.zones[zone]
            candidates = (
                list(tier.members)
                + federation.adopted_members(tier.zone)
                + [ZONE_NODE_PREFIX + child for child in tier.children]
            )

    # ------------------------------------------------------------------
    # closed-loop drill-down
    # ------------------------------------------------------------------

    def _drill(self, node, now):
        if node in self._drill_open or node not in self.sysprof.monitors:
            return
        saved = self.controller.drill_down(
            node, factor=self.drill_factor,
            granularity=self.drill_granularity,
        )
        monitor = self.sysprof.monitors[node]
        episode = {
            "node": node,
            "raised_at": now,
            "restored_at": None,
            "interval_before": saved["eviction_interval"],
            "interval_during": monitor.daemon.eviction_interval,
        }
        if self.ledger is not None:
            episode["monitoring_before"] = self.ledger.monitoring_time(node)
            episode["busy_before"] = self.ledger.busy_total(node)
        self._drill_open[node] = episode
        self.drill_log.append(episode)

    def _restore(self, node, now):
        episode = self._drill_open.pop(node, None)
        if episode is None:
            return
        self.controller.restore(node)
        episode["restored_at"] = now
        if self.ledger is not None and "monitoring_before" in episode:
            episode["monitoring_during"] = (
                self.ledger.monitoring_time(node) - episode["monitoring_before"]
            )
            episode["busy_during"] = (
                self.ledger.busy_total(node) - episode["busy_before"]
            )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def dashboard(self, now=None):
        """Render the live text dashboard: percentile table, active
        alerts, and per-node CPU shares."""
        if now is None:
            now = self.gpa.node.sim.now
        since = now - self.lookback
        lines = ["== sysprof diagnosis @ t={:.2f}s ==".format(now)]
        classes = self.gpa.sketches.classes(metric="latency")
        header = "{:<18}{:>8}".format("class", "count") + "".join(
            "{:>9}".format("p{:g}".format(p)) for p in DASHBOARD_PERCENTILES
        )
        lines.append(header)
        for request_class in classes:
            sketch = self.gpa.sketches.merged(
                request_class=request_class, metric="latency", since=since
            )
            if sketch.count == 0:
                continue
            row = "{:<18}{:>8}".format(request_class, sketch.count) + "".join(
                "{:>9}".format("{:.2f}ms".format(sketch.percentile(p) * 1e3))
                for p in DASHBOARD_PERCENTILES
            )
            lines.append(row)
        if len(lines) == 2:
            lines.append("  (no sketch data in window)")
        lines.append("active alerts:")
        if self.active:
            for name in sorted(self.active):
                lines.append("  " + self.active[name].describe())
        else:
            lines.append("  (none)")
        lines.append("node CPU shares:")
        if self.ledger is not None:
            for node in self.ledger.nodes():
                breakdown = self.ledger.breakdown(node, include_idle=False)
                busy = sum(breakdown.values())
                if busy <= 0.0:
                    continue
                shares = "  ".join(
                    "{} {:.1%}".format(category, seconds / busy)
                    for category, seconds in sorted(breakdown.items())
                    if seconds > 0.0
                )
                # The ledger remembers every node that ever burned CPU —
                # including members since evicted from their tier's
                # nodestats history or killed by a fault.  Mark monitored
                # nodes whose telemetry has gone quiet instead of
                # rendering them as live rows.
                label = node
                if node in self.sysprof.monitors:
                    age = self._staleness(node, now)
                    if age is None or age > self.gpa.stale_threshold:
                        label += " (stale)"
                lines.append("  {:<12}{}".format(label, shares))
        else:
            lines.append("  (CPU ledger not installed)")
        if self._drill_open:
            lines.append(
                "drilled nodes: " + ", ".join(sorted(self._drill_open))
            )
        return "\n".join(lines)

    def _staleness(self, node, now):
        """Seconds since ``node``'s newest nodestats record (clock-
        corrected), or ``None`` when its tier has never heard from it."""
        tier = self._query_tier(node)
        history = getattr(tier, "node_stats", {}).get(node)
        if not history:
            return None
        last_ts = history[-1]["ts"]
        table = getattr(tier, "clock_table", None)
        if table is not None and table.known(node):
            last_ts = table.to_reference(node, last_ts)
        return max(0.0, now - last_ts)

    def stats(self):
        return {
            "rules": len(self.rules),
            "evaluations": self.evaluations,
            "alerts_fired": self.alerts_fired,
            "alerts_resolved": self.alerts_resolved,
            "anomaly_alerts": self.anomaly_alerts,
            "retunes": self.retunes,
            "active_alerts": len(self.active),
            "drilldowns": len(self.drill_log),
            "drilled_nodes": sorted(self._drill_open),
        }

    def __repr__(self):
        return "<DiagnosisEngine rules={} active={}>".format(
            len(self.rules), len(self.active)
        )
