"""A ring-buffer time-series store over the metrics registry.

The service layer pumps the simulator in bounded slices; at every slice
boundary the supervisor calls :meth:`TimeSeriesRecorder.sample`, which
takes one timestamped :meth:`~repro.observability.metrics.MetricsRegistry.snapshot`
and appends each selected metric's value to a fixed-capacity ring
buffer.  That history is what the streaming dashboard's sparklines and
the :mod:`~repro.observability.anomaly` detectors read — neither ever
touches the simulator, so recording is host-side pure: it charges no
simulated CPU, schedules no events, and cannot move a same-seed trace
digest.

Staleness: every point carries the snapshot's sample timestamp, and the
recorder additionally tracks when each series last *changed* value.  A
series whose value has been frozen for longer than a threshold (a dead
daemon's counters, an evicted member's gauges) is reported by
:meth:`stale` so the dashboard can mark it instead of silently
re-plotting the old number as if it were live.
"""

from collections import deque
from fnmatch import fnmatchcase

#: Default ring capacity per series (points, not seconds).
DEFAULT_CAPACITY = 512


class TimeSeriesRecorder:
    """Fixed-memory history of selected registry metrics."""

    def __init__(self, registry, capacity=DEFAULT_CAPACITY, include=None,
                 exclude=None):
        """``include``/``exclude`` are ``fnmatch`` patterns over metric
        names (e.g. ``sysprof.node.*.cpu_busy``); ``include=None`` keeps
        everything.  Excludes win over includes."""
        if capacity < 2:
            raise ValueError("capacity must be >= 2 (rates need two points)")
        self.registry = registry
        self.capacity = capacity
        self.include = tuple(include) if include else None
        self.exclude = tuple(exclude) if exclude else ()
        self._series = {}  # name -> deque[(ts, value)]
        self._kinds = {}  # name -> metric kind at last sample
        self._last_change = {}  # name -> ts the value last differed
        self._keep_cache = {}  # name -> bool (pattern match memo)
        self.samples = 0
        self.points_recorded = 0

    # -- recording ------------------------------------------------------

    def _keep(self, name):
        kept = self._keep_cache.get(name)
        if kept is None:
            kept = (
                self.include is None
                or any(fnmatchcase(name, pat) for pat in self.include)
            ) and not any(fnmatchcase(name, pat) for pat in self.exclude)
            self._keep_cache[name] = kept
        return kept

    def sample(self, now):
        """Scrape the registry once and append every selected metric.

        Returns the number of points recorded this scrape.  All points
        of one scrape share the snapshot's ``ts`` — see
        :meth:`MetricsRegistry.snapshot`.
        """
        snap = self.registry.snapshot(now)
        ts = snap["ts"]
        recorded = 0
        for name, (kind, value) in snap["metrics"].items():
            if not self._keep(name):
                continue
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = deque(maxlen=self.capacity)
                self._last_change[name] = ts
            elif series[-1][1] != value:
                self._last_change[name] = ts
            self._kinds[name] = kind
            series.append((ts, value))
            recorded += 1
        self.samples += 1
        self.points_recorded += recorded
        return recorded

    # -- reads ----------------------------------------------------------

    def names(self, pattern=None):
        """Recorded series names, optionally filtered by fnmatch pattern."""
        names = sorted(self._series)
        if pattern is None:
            return names
        return [name for name in names if fnmatchcase(name, pattern)]

    def kind(self, name):
        return self._kinds.get(name)

    def series(self, name, since=None):
        """``[(ts, value)]`` for one metric (empty if never recorded)."""
        points = self._series.get(name)
        if points is None:
            return []
        if since is None:
            return list(points)
        return [(ts, value) for ts, value in points if ts >= since]

    def values(self, name, since=None):
        return [value for _ts, value in self.series(name, since=since)]

    def latest(self, name):
        """Newest ``(ts, value)`` or ``None``."""
        points = self._series.get(name)
        return points[-1] if points else None

    def rate(self, name, since=None):
        """Per-interval derivative ``[(ts, dvalue/dt)]`` of one series.

        The natural reading for cumulative counters and busy-seconds
        gauges: the value's growth rate per simulated second between
        adjacent samples.  Zero-width intervals are skipped.
        """
        points = self.series(name, since=since)
        rates = []
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            dt = t1 - t0
            if dt > 0.0:
                rates.append((t1, (v1 - v0) / dt))
        return rates

    def stale(self, now, threshold):
        """``{name: seconds_frozen}`` for series unchanged past ``threshold``.

        "Frozen" means the recorded value has not moved — the signature
        of a source whose producer died while the registry keeps
        re-serving its last numbers.
        """
        out = {}
        for name, changed_at in self._last_change.items():
            age = now - changed_at
            if age > threshold:
                out[name] = age
        return out

    def stats(self):
        """Counters for the metrics registry (``sysprof.recorder``)."""
        return {
            "samples": self.samples,
            "points_recorded": self.points_recorded,
            "series": len(self._series),
        }

    def __repr__(self):
        return "<TimeSeriesRecorder series={} samples={}>".format(
            len(self._series), self.samples
        )
