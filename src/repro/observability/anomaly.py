"""Statistical anomaly detection over recorded metric series.

SLO rules (:mod:`repro.observability.slo`) state *known* objectives; the
detectors here catch the unknown ones — a metric drifting out of its own
recent distribution, or a counter suddenly growing much faster than it
used to — before any hand-written threshold trips.  Two detectors:

``zscore``
    Robust z-score of the newest sample against a trailing window:
    ``|x - median| / (1.4826 * MAD)``.  Median/MAD instead of mean/std
    so a single spike cannot drag its own baseline along and mask
    itself.  A constant window (MAD == 0) only flags a value that
    actually moved.

``rate``
    The same robust z-score applied to the per-interval derivative of a
    cumulative series (e.g. ``sysprof.node.*.cpu_busy`` busy-seconds):
    catches a CPU hog as a *slope* change within a couple of samples,
    long before a latency percentile climbs over an SLO threshold.

Each (detector, series) pair runs its own hysteresis — ``fire_after``
consecutive anomalous samples to fire, ``clear_after`` normal ones to
resolve — and surfaces through the existing alert lifecycle via
:meth:`DiagnosisEngine.external_fire` / ``external_clear``, so anomaly
alerts stream to the same subscribers, render on the same dashboard,
and carry engine-unique ids that cannot collide with rule alerts.
Detection reads only the :class:`~repro.observability.recorder.TimeSeriesRecorder`
ring buffers: host-side pure, no simulated CPU, no trace perturbation
(anomaly alerts never drill down).
"""

#: Scale factor making MAD a consistent estimator of the std deviation
#: for normal data.
MAD_SCALE = 1.4826

#: Prefix for anomaly alert names — keeps the rule namespace disjoint
#: from the SLO grammar (which never produces a name with this prefix).
ALERT_PREFIX = "anomaly:"


def _median(values):
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def robust_zscore(value, window):
    """``|value - median(window)| / (MAD_SCALE * MAD)`` (0.0 if flat).

    With a flat window the deviation scale is zero; any departure is
    infinitely surprising, so return ``inf`` when the value moved and
    ``0.0`` when it matches the constant.
    """
    if not window:
        return 0.0
    med = _median(window)
    mad = _median([abs(v - med) for v in window])
    if mad <= 0.0:
        return 0.0 if value == med else float("inf")
    return abs(value - med) / (MAD_SCALE * mad)


class SeriesDetector:
    """One detector bound to one metric name pattern.

    ``mode`` is ``"zscore"`` (level anomalies) or ``"rate"`` (slope
    anomalies on cumulative series).  ``window`` trailing samples form
    the baseline; the newest sample is scored against them and is
    anomalous when its robust z-score exceeds ``threshold``.
    """

    def __init__(self, pattern, mode="zscore", window=12, threshold=6.0,
                 fire_after=2, clear_after=3, min_baseline=5):
        if mode not in ("zscore", "rate"):
            raise ValueError("mode must be 'zscore' or 'rate'")
        if window < 2:
            raise ValueError("window must be >= 2")
        self.pattern = pattern
        self.mode = mode
        self.window = int(window)
        self.threshold = float(threshold)
        self.fire_after = max(1, int(fire_after))
        self.clear_after = max(1, int(clear_after))
        self.min_baseline = max(2, int(min_baseline))
        # Per-series hysteresis state.
        self._hits = {}    # name -> consecutive anomalous samples
        self._oks = {}     # name -> consecutive normal samples while firing
        self.firing = {}   # name -> score at fire time

    def _points(self, recorder, name):
        if self.mode == "rate":
            return [rate for _ts, rate in recorder.rate(name)]
        return recorder.values(name)

    def score(self, recorder, name):
        """Robust z-score of ``name``'s newest sample, or ``None``.

        ``None`` means not enough history yet: the baseline window (which
        excludes the newest sample) must hold at least ``min_baseline``
        points before a score is meaningful.
        """
        points = self._points(recorder, name)
        if len(points) < self.min_baseline + 1:
            return None
        newest = points[-1]
        baseline = points[-(self.window + 1):-1]
        return robust_zscore(newest, baseline)

    def observe(self, recorder, name):
        """Advance hysteresis for one series; ``"fire"``/``"clear"``/None."""
        value = self.score(recorder, name)
        anomalous = value is not None and value > self.threshold
        if name in self.firing:
            if anomalous:
                self._oks[name] = 0
            else:
                self._oks[name] = self._oks.get(name, 0) + 1
                if self._oks[name] >= self.clear_after:
                    del self.firing[name]
                    self._oks[name] = 0
                    return "clear"
            return None
        if anomalous:
            self._hits[name] = self._hits.get(name, 0) + 1
            if self._hits[name] >= self.fire_after:
                self.firing[name] = value
                self._hits[name] = 0
                return "fire"
        else:
            self._hits[name] = 0
        return None

    def alert_name(self, name):
        return "{}{}({})".format(ALERT_PREFIX, self.mode, name)

    def __repr__(self):
        return "<SeriesDetector {} {!r} firing={}>".format(
            self.mode, self.pattern, len(self.firing)
        )


def default_detectors():
    """The stock detector set the service supervisor installs.

    Slope watch on per-node CPU busy-seconds (the fastest observable
    signature of a CPU hog) and a level watch on daemon send errors.
    """
    return [
        SeriesDetector("sysprof.node.*.cpu_busy", mode="rate",
                       window=12, threshold=6.0),
        SeriesDetector("sysprof.daemon.*.send_errors", mode="zscore",
                       window=12, threshold=6.0),
    ]


class AnomalyMonitor:
    """Run detectors over a recorder and surface anomalies as alerts.

    Call :meth:`check` after every :meth:`TimeSeriesRecorder.sample`
    (the service supervisor does this at each slice boundary).  Fires
    and clears go through ``engine.external_fire`` / ``external_clear``
    when a :class:`~repro.observability.diagnosis.DiagnosisEngine` is
    attached, which gives them ids, listener events, and dashboard rows;
    without an engine the monitor still tracks ``active`` locally.
    """

    def __init__(self, recorder, detectors=None, engine=None):
        self.recorder = recorder
        self.detectors = (
            list(detectors) if detectors is not None else default_detectors()
        )
        self.engine = engine
        self.active = {}   # alert name -> score at fire
        self.checks = 0
        self.fired = 0
        self.cleared = 0

    def _blame(self, series_name):
        """Best-effort node attribution from the metric name.

        Registry names follow ``sysprof.<component>.<node>.<metric>``;
        the third dotted part is the node for the per-node families the
        stock detectors watch.
        """
        parts = series_name.split(".")
        node = parts[2] if len(parts) >= 4 else None
        return {"node": node, "stage": "anomaly", "reason": series_name}

    def check(self, now=None):
        """Score every (detector, matching series) pair once.

        Returns the list of transition events, each ``{"state": "fire" |
        "clear", "name": alert_name, "series": metric, "score": z}``.
        """
        self.checks += 1
        events = []
        for detector in self.detectors:
            for name in self.recorder.names(detector.pattern):
                transition = detector.observe(self.recorder, name)
                if transition is None:
                    continue
                alert_name = detector.alert_name(name)
                score = detector.firing.get(name)
                if transition == "fire":
                    self.fired += 1
                    self.active[alert_name] = score
                    if self.engine is not None:
                        self.engine.external_fire(
                            alert_name, score, now=now,
                            blame=self._blame(name),
                        )
                else:
                    self.cleared += 1
                    self.active.pop(alert_name, None)
                    if self.engine is not None:
                        self.engine.external_clear(alert_name, now=now)
                events.append({
                    "state": transition, "name": alert_name,
                    "series": name, "score": score,
                })
        return events

    def stats(self):
        """Counters for the metrics registry (``sysprof.anomaly``)."""
        return {
            "detectors": len(self.detectors),
            "checks": self.checks,
            "fired": self.fired,
            "cleared": self.cleared,
            "active": len(self.active),
        }

    def __repr__(self):
        return "<AnomalyMonitor detectors={} active={}>".format(
            len(self.detectors), len(self.active)
        )
