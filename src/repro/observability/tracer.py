"""Span tracing on simulated time, exported as Chrome trace-event JSON.

Records the monitoring pipeline's lifecycle moments — request/response
interactions (complete ``X`` spans), probe firings, per-CPU buffer
switches, and dissemination publishes (instant ``i`` events) — and
renders them in the Chrome trace-event format (the JSON dialect
``chrome://tracing`` and Perfetto load): one *pid* per simulated node,
one *tid* per simulated task, timestamps in microseconds of simulated
time.

Disabled-path discipline: instrumented call sites check the module-level
:data:`enabled` flag inline (``if tracer.enabled: ...``) so the disabled
path costs one attribute read — no allocation, no function call.  Like
the ledger, the tracer is pure host-side observation: it charges no
simulated CPU and cannot perturb event order, so enabling it leaves
same-seed trace hashes byte-identical.

Usage::

    from repro.observability import tracer
    span = tracer.install()
    ...  # run a workload
    span.export("trace.json")     # load in ui.perfetto.dev
    tracer.uninstall()
"""

import json

#: Inline guard read by instrumented hot paths.  True iff a tracer is
#: installed; never set this directly — use :func:`install`.
enabled = False

_active = None

_US = 1e6  # seconds of simulated time -> trace microseconds

# tid for events not tied to a task (interrupt context, buffer switches).
KERNEL_TID = 0


def install(tracer=None, **kwargs):
    """Install ``tracer`` (default: fresh :class:`SpanTracer`) and flip
    :data:`enabled`.  Returns the tracer."""
    global enabled, _active
    if tracer is None:
        tracer = SpanTracer(**kwargs)
    _active = tracer
    enabled = True
    return tracer


def uninstall():
    global enabled, _active
    enabled = False
    _active = None


def active():
    """The installed :class:`SpanTracer`, or ``None``."""
    return _active


class SpanTracer:
    """Collects trace events; renders/validates Chrome trace JSON.

    ``max_events`` bounds memory on long runs: past it, new events are
    counted in :attr:`dropped` instead of stored (the export notes the
    truncation in its metadata).
    """

    def __init__(self, max_events=500_000, probe_events=True):
        self.max_events = max_events
        self.probe_events = probe_events  # record per-probe instants
        self.dropped = 0
        self._events = []  # (ts_us, ph, node, tid, name, cat, dur_us, args)
        self._pids = {}  # node -> pid
        self._threads = {}  # (node, tid) -> thread name

    def __len__(self):
        return len(self._events)

    # -- recording ------------------------------------------------------

    def _pid(self, node):
        pid = self._pids.get(node)
        if pid is None:
            pid = self._pids[node] = len(self._pids) + 1
        return pid

    def name_thread(self, node, tid, name):
        """Label a (node, task) lane; shown as the thread name in Perfetto."""
        self._threads.setdefault((node, tid), name)

    def _push(self, event):
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(event)

    def complete(self, node, tid, name, category, start, duration, args=None):
        """A ``X`` (complete) span: ``start``/``duration`` in sim seconds."""
        self._push((start * _US, "X", node, tid, name, category,
                    max(0.0, duration) * _US, args))

    def instant(self, node, tid, name, category, ts, args=None):
        """An ``i`` (instant) event at sim time ``ts``."""
        self._push((ts * _US, "i", node, tid, name, category, None, args))

    # -- pipeline-specific conveniences (called from instrumented sites) --

    def probe(self, node, etype, pid, ts):
        if self.probe_events:
            self.instant(node, pid or KERNEL_TID, etype, "probe", ts)

    def buffer_switch(self, node, buffer_name, ts, lost=0):
        args = {"lost": lost} if lost else None
        self.instant(node, KERNEL_TID, "buffer-switch " + buffer_name,
                     "analyzer", ts, args)

    def publish(self, node, pid, channel, nbytes, kind, ts):
        self.instant(node, pid or KERNEL_TID, "publish " + channel,
                     "dissemination", ts, {"bytes": nbytes, "kind": kind})

    def interaction(self, node, record, clock=None):
        """A request/response lifecycle from an InteractionLPA record.

        Record timestamps are node-*local* (clock-skewed); ``clock``
        converts them back to simulated time so the trace's single
        timeline stays monotone and non-negative."""
        name = record.request_class or "interaction"
        start, end = record.start_ts, record.end_ts
        if clock is not None:
            start = clock.sim_time(start)
            end = clock.sim_time(end)
        self.complete(
            node, record.server_pid or KERNEL_TID, name, "interaction",
            start, end - start,
            args={
                "interaction_id": record.interaction_id,
                "client": "{}:{}".format(*record.client),
                "server": "{}:{}".format(*record.server),
                "req_bytes": record.request.bytes,
                "resp_bytes": record.response.bytes,
            },
        )

    # -- export ---------------------------------------------------------

    def chrome_trace(self):
        """The trace as a Chrome trace-event JSON object (dict)."""
        events = []
        # Assign every involved node a pid up front (sorted for a stable
        # numbering) so the process_name metadata covers all of them.
        for node in sorted(
            {event[2] for event in self._events}
            | {node for node, _tid in self._threads}
        ):
            self._pid(node)
        for node in sorted(self._pids):
            pid = self._pids[node]
            events.append({
                "ph": "M", "pid": pid, "tid": 0, "ts": 0,
                "name": "process_name", "args": {"name": node},
            })
        for (node, tid), name in sorted(self._threads.items()):
            events.append({
                "ph": "M", "pid": self._pid(node), "tid": tid, "ts": 0,
                "name": "thread_name", "args": {"name": name},
            })
        for ts, ph, node, tid, name, category, dur, args in sorted(
            self._events, key=lambda event: (event[0], event[3], event[4])
        ):
            event = {
                "ph": ph, "pid": self._pid(node), "tid": tid,
                "ts": ts, "name": name, "cat": category,
            }
            if ph == "X":
                event["dur"] = dur
            if ph == "i":
                event["s"] = "t"  # thread-scoped instant
            if args:
                event["args"] = args
            events.append(event)
        metadata = {"simulated": True, "dropped_events": self.dropped}
        return {"traceEvents": events, "otherData": metadata}

    def export(self, path):
        """Write the Chrome trace JSON to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as out:
            json.dump(self.chrome_trace(), out)
        return path

    def stats(self):
        return {
            "events": len(self._events),
            "dropped": self.dropped,
            "nodes": sorted(self._pids),
        }


def validate_chrome_trace(doc):
    """Validate a Chrome trace-event JSON object.

    Raises ``ValueError`` on the first violation; returns the number of
    data (non-metadata) events otherwise.  Checks: the ``traceEvents``
    envelope, required keys per phase, numeric non-negative timestamps,
    non-negative ``X`` durations, per-(pid, tid) matched ``B``/``E``
    nesting, and globally sorted data-event timestamps (metadata ``M``
    events are exempt, as in traces Chrome itself emits).
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("not a trace-event JSON object (no traceEvents)")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    stacks = {}  # (pid, tid) -> [names]
    last_ts = None
    counted = 0
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError("event {} is not an object".format(index))
        for key in ("ph", "pid", "tid", "ts", "name"):
            if key not in event:
                raise ValueError("event {} missing {!r}".format(index, key))
        ph = event["ph"]
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError("event {} has bad ts {!r}".format(index, ts))
        if ph == "M":
            continue
        counted += 1
        if last_ts is not None and ts < last_ts:
            raise ValueError(
                "event {} out of order: ts {} < {}".format(index, ts, last_ts)
            )
        last_ts = ts
        lane = (event["pid"], event["tid"])
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError("event {} has bad dur {!r}".format(index, dur))
        elif ph == "B":
            stacks.setdefault(lane, []).append(event["name"])
        elif ph == "E":
            stack = stacks.get(lane)
            if not stack:
                raise ValueError("event {}: E without matching B".format(index))
            stack.pop()
        elif ph not in ("i", "I", "C"):
            raise ValueError("event {} has unsupported ph {!r}".format(index, ph))
    for lane, stack in stacks.items():
        if stack:
            raise ValueError(
                "unclosed B events on pid/tid {}: {}".format(lane, stack)
            )
    return counted
