"""A unified metrics registry over the per-component ``stats()`` dicts.

Kprof, the LPAs, the dissemination daemon, the GPA, NTP, and the network
fabric each grew an ad-hoc ``stats()`` dict; this module puts one named,
typed counter-and-gauge API in front of them.  Metric names follow
``sysprof.<component>.<node>.<metric>`` (dot-separated, lowercase;
nested stats flatten with further dots), e.g.::

    sysprof.kprof.proxy.delivered
    sysprof.daemon.backend1.send_errors
    sysprof.gpa.mgmt.records_received
    sysprof.ntp.backend1.offset
    sysprof.node.proxy.cpu_busy

Two metric kinds exist: :class:`Counter` (monotone, cumulative — the
operator's long-lived view; most ``stats()`` fields) and :class:`Gauge`
(point-in-time level, e.g. CPU busy seconds or an NTP offset).  *Source*
metrics are lazily sampled from a callback at collection time, so
registering them costs nothing during the run.

:func:`build_registry` wires a :class:`~repro.core.toolkit.SysProf`
installation and registers the rendered registry at
``/proc/sysprof/metrics`` on every monitored node (and the GPA node) —
the same surface Dproc-style exports use elsewhere in the toolkit.
Collection is read-only and charges no simulated CPU.
"""

COUNTER = "counter"
GAUGE = "gauge"

# stats() fields that are levels, not monotone totals.
_GAUGE_FIELDS = frozenset((
    "active_length", "open_calls", "flows", "interactions",
    "class_summaries", "cpa_metrics", "syscall_summaries",
    "queued", "depth", "offset",
    "eviction_interval", "stale_threshold", "sketches", "sketch_series",
    "series", "rules", "active_alerts", "clients",
    "detectors", "active",
    # federation / topology levels
    "switches", "racks", "nodes", "rack_gpas", "zones",
    # reparenting state: 1 while a publisher is failed over to a
    # standby/root, 0 when back on its primary parent
    "failed_over",
    # simulator engine levels (sysprof.sim.*)
    "delivery_depth", "lane_depth_interrupt", "lane_depth_normal",
    "lane_depth_low", "pool_size", "store_size", "store_slots",
    "store_free_slots", "store_buckets", "store_overflow",
))


class Metric:
    """One named value; ``kind`` is :data:`COUNTER` or :data:`GAUGE`."""

    __slots__ = ("name", "kind", "help", "_value", "_fn")

    def __init__(self, name, kind, help="", fn=None):
        self.name = name
        self.kind = kind
        self.help = help
        self._value = 0.0
        self._fn = fn

    @property
    def value(self):
        if self._fn is not None:
            return self._fn()
        return self._value

    def __repr__(self):
        return "<{} {}={}>".format(self.kind, self.name, self.value)


class Counter(Metric):
    """Monotonically increasing total."""

    __slots__ = ()

    def __init__(self, name, help="", fn=None):
        super().__init__(name, COUNTER, help=help, fn=fn)

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counters only go up (got {})".format(amount))
        self._value += amount


class Gauge(Metric):
    """A level that can move both ways."""

    __slots__ = ()

    def __init__(self, name, help="", fn=None):
        super().__init__(name, GAUGE, help=help, fn=fn)

    def set(self, value):
        self._value = value


class MetricsRegistry:
    """Named metrics plus lazily-sampled ``stats()`` sources."""

    def __init__(self):
        self._metrics = {}  # name -> Metric
        self._sources = []  # (prefix, fn)
        # Simulated time of the most recent snapshot() scrape (None until
        # the first one).  Stamped into every snapshot so consumers — the
        # time-series recorder, the dashboard — can flag series whose
        # newest sample is old instead of silently re-plotting it.
        self.last_sample_ts = None

    # -- registration ---------------------------------------------------

    def _add(self, metric):
        if metric.name in self._metrics:
            raise ValueError("duplicate metric {!r}".format(metric.name))
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name, help="", fn=None):
        return self._add(Counter(name, help=help, fn=fn))

    def gauge(self, name, help="", fn=None):
        return self._add(Gauge(name, help=help, fn=fn))

    def get(self, name):
        return self._metrics[name]

    def register_source(self, prefix, fn):
        """Attach a ``stats()``-style dict source under ``prefix``.

        ``fn()`` is called at collection time; its dict is flattened
        (nested dicts extend the name with dots) and non-numeric values
        are skipped.  Field kind is inferred: names in a small gauge
        vocabulary become gauges, everything else a counter.

        Re-registering a prefix replaces the old source (components like
        the diagnosis engine may be rebuilt mid-run).
        """
        for i, (existing, _fn) in enumerate(self._sources):
            if existing == prefix:
                self._sources[i] = (prefix, fn)
                return
        self._sources.append((prefix, fn))

    def source_prefixes(self):
        """Registered source prefixes (coverage tests read this)."""
        return [prefix for prefix, _fn in self._sources]

    # -- collection -----------------------------------------------------

    def collect(self):
        """``{name: (kind, value)}`` across metrics and sources, sorted."""
        out = {}
        for name, metric in self._metrics.items():
            out[name] = (metric.kind, metric.value)
        for prefix, fn in self._sources:
            for name, value in _flatten(prefix, fn()):
                leaf = name.rsplit(".", 1)[-1]
                kind = GAUGE if leaf in _GAUGE_FIELDS else COUNTER
                out[name] = (kind, value)
        return dict(sorted(out.items()))

    def snapshot(self, now):
        """One timestamped scrape: ``{"ts": now, "metrics": collect()}``.

        ``now`` is the simulated time of the scrape; it is stamped into
        the returned dict and remembered as :attr:`last_sample_ts`.
        Sources are all sampled inside this single call, so every value
        in one snapshot shares the same sample timestamp — the contract
        the recorder's per-point staleness flags rely on.
        """
        self.last_sample_ts = now
        return {"ts": now, "metrics": self.collect()}

    def render(self):
        """Plain-text exposition (``/proc/sysprof/metrics`` format)."""
        lines = []
        for name, (kind, value) in self.collect().items():
            if isinstance(value, float):
                lines.append("{} {} {:.9g}".format(name, kind, value))
            else:
                lines.append("{} {} {}".format(name, kind, value))
        return "\n".join(lines) + "\n"

    def __len__(self):
        return len(self.collect())


def _flatten(prefix, value):
    if isinstance(value, dict):
        for key in sorted(value):
            yield from _flatten("{}.{}".format(prefix, key), value[key])
    elif isinstance(value, bool) or not isinstance(value, (int, float)):
        return  # names/lists/strings are labels, not metric values
    else:
        yield prefix, value


def build_registry(sysprof):
    """Wire a registry over one SysProf installation.

    Registers per-node Kprof/LPA/daemon sources, the GPA, NTP clock
    offsets, netsim fabric counters, and per-node CPU gauges; then
    exposes the rendered text at ``/proc/sysprof/metrics`` on every
    involved node.  Pure pull: nothing is sampled until collected.
    """
    registry = MetricsRegistry()
    kernels = []
    for node_name, monitor in sysprof.monitors.items():
        kernels.append(monitor.kernel)
        registry.register_source(
            "sysprof.kprof.{}".format(node_name), monitor.kprof.stats
        )
        registry.register_source(
            "sysprof.daemon.{}".format(node_name), monitor.daemon.stats
        )
        for lpa in monitor.all_lpas():
            registry.register_source(
                "sysprof.lpa.{}.{}".format(node_name, lpa.name), lpa.stats
            )
        registry.gauge(
            "sysprof.node.{}.cpu_busy".format(node_name),
            help="simulated CPU busy seconds",
            fn=lambda kernel=monitor.kernel: kernel.cpu.busy_time,
        )
    if sysprof.gpa is not None:
        gpa_kernel = sysprof.gpa.node.kernel
        if gpa_kernel not in kernels:
            kernels.append(gpa_kernel)
        registry.register_source(
            "sysprof.gpa.{}".format(sysprof.gpa.node.name), sysprof.gpa.stats
        )
        registry.gauge(
            "sysprof.gpa.{}.stale_threshold".format(sysprof.gpa.node.name),
            help="seconds of telemetry silence before a node is suspect",
            fn=lambda gpa=sysprof.gpa: gpa.stale_threshold,
        )
    if sysprof.federation is not None:
        for zone_gpa in sysprof.federation.all_zones():
            zone_kernel = zone_gpa.node.kernel
            if zone_kernel not in kernels:
                kernels.append(zone_kernel)
            registry.register_source(
                "sysprof.zone.{}".format(zone_gpa.zone), zone_gpa.stats
            )
    topology = getattr(sysprof.cluster, "topology", None)
    if topology is not None and hasattr(topology, "stats"):
        registry.register_source("sysprof.topology", topology.stats)
    clock_table = sysprof.clock_table
    if clock_table is not None:
        for node_name in sorted(getattr(clock_table, "_offsets", {})):
            registry.gauge(
                "sysprof.ntp.{}.offset".format(node_name),
                help="measured clock offset vs the reference node (s)",
                fn=lambda name=node_name: clock_table.offset(name),
            )
    fabric = getattr(sysprof.cluster, "fabric", None)
    if fabric is not None and hasattr(fabric, "stats"):
        registry.register_source("sysprof.netsim", fabric.stats)
    sim = getattr(sysprof.cluster, "sim", None)
    if sim is not None and hasattr(sim, "stats"):
        registry.register_source("sysprof.sim", sim.stats)
    # Process-global counting components (PR 5 satellite): the GPA query
    # client aggregate and the experiment sweep runner.  Imported lazily —
    # both modules sit above this one in the import graph.
    from repro.core.query import client_stats
    from repro.experiments.runner import stats as runner_stats

    registry.register_source("sysprof.query", client_stats)
    registry.register_source("sysprof.runner", runner_stats)
    for kernel in kernels:
        kernel.procfs.register("/proc/sysprof/metrics", registry.render)
    return registry
