"""Declarative SLO rules with hysteresis, evaluated online at the GPA.

A rule is one comparison over a live signal, written the way an operator
would state the objective::

    p99(rubis.search) < 80ms          # latency percentile, any node
    p95(nfs-write@proxy) < 8ms        # latency percentile at one node
    qdepth_p99(nfs-write@backend) < 32   # queue-depth percentile
    cpu_share(backend1, monitoring) < 0.05   # ledger category share
    staleness(backend1) < 2s          # nodestats quiet time
    staleness(backend1)               # ... defaulting to gpa.stale_threshold

Thresholds take ``us``/``ms``/``s`` suffixes (converted to seconds) or
are unitless.  The comparison states the *objective*: an alert fires
when it stops holding.  Hysteresis comes from two knobs — a rule must be
violated on ``fire_after`` consecutive evaluations to fire, and while
firing it must satisfy a *stricter* clear threshold (``clear_factor``
of the objective) on ``clear_after`` consecutive evaluations to resolve
— so a value oscillating around the threshold cannot flap the alert.

Missing data counts as the SLO being met: a rule over a request class
that produced no samples inside the lookback window neither fires nor
accumulates clear evidence beyond what "no violation observed" implies.
This module is pure policy — measurement lives in
:meth:`SloRule.measure`, which only calls methods on the GPA/ledger
objects handed to it, keeping the import graph acyclic.
"""

import re

_PERCENTILE = re.compile(
    r"^(?P<metric>qdepth_)?p(?P<q>\d{1,2}(?:\.\d+)?)"
    r"\((?P<cls>[^)@,]+?)(?:@(?P<node>[^)]+))?\)$"
)
_CPU_SHARE = re.compile(r"^cpu_share\((?P<node>[^,)]+),\s*(?P<category>[^)]+)\)$")
_STALENESS = re.compile(r"^staleness\((?P<node>[^)]+)\)$")
_THRESHOLD = re.compile(r"^(?P<value>-?\d+(?:\.\d+)?)\s*(?P<unit>us|ms|s)?$")

_UNITS = {"us": 1e-6, "ms": 1e-3, "s": 1.0, None: 1.0}
_OPS = ("<=", ">=", "<", ">")


class SloParseError(ValueError):
    """Raised for a rule string the grammar does not accept."""


def _parse_threshold(text):
    match = _THRESHOLD.match(text.strip())
    if match is None:
        raise SloParseError("bad threshold: {!r}".format(text))
    return float(match.group("value")) * _UNITS[match.group("unit")]


class SloRule:
    """One parsed rule plus its firing state machine.

    ``kind`` is ``latency``, ``qdepth``, ``cpu_share``, or ``staleness``;
    the signal-specific parameters live in ``request_class`` / ``node`` /
    ``category`` / ``quantile`` as applicable.
    """

    def __init__(self, text, fire_after=2, clear_after=2, clear_factor=0.9,
                 lookback=None):
        self.text = " ".join(text.split())
        self.name = self.text
        self.fire_after = max(1, int(fire_after))
        self.clear_after = max(1, int(clear_after))
        self.clear_factor = float(clear_factor)
        self.lookback = lookback  # None: engine default
        self.node = None
        self.request_class = None
        self.category = None
        self.quantile = None
        self._parse()
        # Firing state.
        self.firing = False
        self.last_value = None
        self._violations = 0
        self._clears = 0

    # -- grammar ---------------------------------------------------------

    def _parse(self):
        expr, op, threshold_text = self._split()
        self.op = op
        self.threshold = _parse_threshold(threshold_text) if threshold_text else None
        match = _PERCENTILE.match(expr)
        if match is not None:
            if self.threshold is None:
                raise SloParseError("percentile rule needs a threshold: " + self.text)
            self.kind = "qdepth" if match.group("metric") else "latency"
            self.quantile = float(match.group("q")) / 100.0
            self.request_class = match.group("cls").strip()
            node = match.group("node")
            self.node = node.strip() if node else None
            return
        match = _CPU_SHARE.match(expr)
        if match is not None:
            if self.threshold is None:
                raise SloParseError("cpu_share rule needs a threshold: " + self.text)
            self.kind = "cpu_share"
            self.node = match.group("node").strip()
            self.category = match.group("category").strip()
            return
        match = _STALENESS.match(expr)
        if match is not None:
            # Threshold optional: None resolves to gpa.stale_threshold
            # at measurement time.
            self.kind = "staleness"
            self.node = match.group("node").strip()
            if self.op is None:
                self.op = "<"
            return
        raise SloParseError("unrecognized rule: " + self.text)

    def _split(self):
        for op in _OPS:
            if op in self.text:
                expr, _, rest = self.text.partition(op)
                return expr.strip(), op, rest.strip()
        return self.text.strip(), None, None

    # -- measurement -----------------------------------------------------

    def measure(self, gpa, ledger=None, now=None, lookback=None):
        """Current signal value, or ``None`` when no data is available."""
        if self.kind in ("latency", "qdepth"):
            since = None if lookback is None or now is None else now - lookback
            sketch = gpa.sketches.merged(
                request_class=self.request_class, metric=self.kind
                if self.kind == "latency" else "qdepth",
                node=self.node, since=since,
            )
            if sketch.count == 0:
                return None
            return sketch.quantile(self.quantile)
        if self.kind == "cpu_share":
            if ledger is None:
                return None
            if self.category == "monitoring":
                return ledger.monitoring_share(self.node)
            busy = ledger.busy_total(self.node)
            if busy <= 0.0:
                return None
            breakdown = ledger.breakdown(self.node, include_idle=False)
            return breakdown.get(self.category, 0.0) / busy
        if self.kind == "staleness":
            history = gpa.node_stats.get(self.node)
            if not history or now is None:
                return None
            last_ts = history[-1]["ts"]
            table = gpa.clock_table
            if table is not None and table.known(self.node):
                last_ts = table.to_reference(self.node, last_ts)
            return max(0.0, now - last_ts)
        return None

    def effective_threshold(self, gpa=None):
        """The objective threshold (staleness may default to the GPA's)."""
        if self.threshold is not None:
            return self.threshold
        if self.kind == "staleness" and gpa is not None:
            return gpa.stale_threshold
        return None

    # -- state machine ---------------------------------------------------

    def _ok(self, value, threshold):
        if self.op == "<":
            return value < threshold
        if self.op == "<=":
            return value <= threshold
        if self.op == ">":
            return value > threshold
        return value >= threshold

    def _clear_threshold(self, threshold):
        """A stricter bound the signal must meet to resolve (hysteresis)."""
        if self.op in ("<", "<="):
            return threshold * self.clear_factor
        return threshold / self.clear_factor if self.clear_factor else threshold

    def update(self, value, threshold=None):
        """Advance the state machine; returns ``"fire"``, ``"clear"``, or
        ``None``.  ``threshold`` overrides the parsed one (used for
        defaulted staleness rules)."""
        self.last_value = value
        threshold = threshold if threshold is not None else self.threshold
        if threshold is None:
            return None
        if self.firing:
            ok = value is None or self._ok(value, self._clear_threshold(threshold))
            if ok:
                self._clears += 1
                if self._clears >= self.clear_after:
                    self.firing = False
                    self._clears = 0
                    return "clear"
            else:
                self._clears = 0
            return None
        violated = value is not None and not self._ok(value, threshold)
        if violated:
            self._violations += 1
            if self._violations >= self.fire_after:
                self.firing = True
                self._violations = 0
                return "fire"
        else:
            self._violations = 0
        return None

    def format_value(self, value):
        """Render a measured value in the rule's natural unit."""
        if value is None:
            return "n/a"
        if self.kind == "latency":
            return "{:.2f}ms".format(value * 1e3)
        if self.kind == "staleness":
            return "{:.2f}s".format(value)
        if self.kind == "cpu_share":
            return "{:.1%}".format(value)
        return "{:.1f}".format(value)

    def __repr__(self):
        return "<SloRule {!r} firing={}>".format(self.text, self.firing)


class ExternalRule:
    """Rule-shaped shim for alerts originated outside the SLO grammar.

    The anomaly detectors (and anything else calling
    ``DiagnosisEngine.external_fire``) have no parsed comparison to
    attach an :class:`Alert` to; this carries just what alert rendering
    needs — a normalized ``name``/``text`` and a value formatter.
    ``unit`` is ``"s"``, ``"share"``, or ``None`` (plain number).
    """

    def __init__(self, name, unit=None):
        self.name = " ".join(name.split())
        self.text = self.name
        self.unit = unit

    def format_value(self, value):
        if value is None:
            return "n/a"
        if self.unit == "s":
            return "{:.2f}s".format(value)
        if self.unit == "share":
            return "{:.1%}".format(value)
        return "{:.2f}".format(value)

    def __repr__(self):
        return "<ExternalRule {!r}>".format(self.text)


class Alert:
    """One firing (or since-resolved) rule violation with blame."""

    def __init__(self, rule, fired_at, value, blame=None, id=None,
                 source="rule"):
        self.rule = rule
        self.fired_at = fired_at
        self.resolved_at = None
        self.value_at_fire = value
        self.value_at_resolve = None
        self.blame = blame or {}
        # Unique per engine (monotone), assigned at fire time so rule
        # alerts and synthetic anomaly alerts on the same node can never
        # collide; ``source`` is "rule" or "anomaly".
        self.id = id
        self.source = source

    @property
    def firing(self):
        return self.resolved_at is None

    @property
    def state(self):
        return "firing" if self.firing else "resolved"

    def resolve(self, now, value=None):
        self.resolved_at = now
        self.value_at_resolve = value

    def describe(self):
        parts = [
            "[{}]".format(self.state.upper()),
            self.rule.text,
            "value={}".format(self.rule.format_value(self.value_at_fire)),
            "since t={:.2f}s".format(self.fired_at),
        ]
        if self.resolved_at is not None:
            parts.append("resolved t={:.2f}s".format(self.resolved_at))
        if self.blame.get("node"):
            parts.append(
                "blame={}/{}".format(
                    self.blame["node"], self.blame.get("stage", "?")
                )
            )
        return " ".join(parts)

    def as_dict(self):
        return {
            "id": self.id,
            "source": self.source,
            "rule": self.rule.text,
            "state": self.state,
            "fired_at": self.fired_at,
            "resolved_at": self.resolved_at,
            "value_at_fire": self.value_at_fire,
            "value_at_resolve": self.value_at_resolve,
            "blame": dict(self.blame),
        }

    def __repr__(self):
        return "<Alert {}>".format(self.describe())


def parse_rules(texts, **kwargs):
    """Parse an iterable of rule strings into :class:`SloRule` objects."""
    return [
        text if isinstance(text, SloRule) else SloRule(text, **kwargs)
        for text in texts
    ]
