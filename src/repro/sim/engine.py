"""Deterministic discrete-event simulation engine.

The engine orders ``(time, priority, seq)`` keys.  All higher-level
constructs (processes, timeouts, resources, sockets, CPU schedulers) are
built from two primitives:

* :meth:`Simulator.schedule` — run a callback at an absolute offset, and
* :class:`Waitable` — a one-shot completion cell that callbacks (and
  therefore processes) can chain on.

Determinism matters more than raw speed here: two runs with the same seed
must produce identical traces, because the monitoring toolkit under test
diffs event streams across configurations.  The ``seq`` counter breaks
time ties in insertion order and no wall-clock value ever enters the
simulation.

Storage is split four ways (``docs/performance.md``):

* a pluggable *event store* for future events — either the array-backed
  :class:`CalendarQueue` (default) or the :class:`HeapStore` binary heap,
  which remains the determinism oracle;
* three same-time FIFO *fast lanes*, one per priority band, fed by
  ``call_soon()`` / ``schedule(0.0, ...)``;
* a *delivery lane* of immutable ``(seq, fn, arg)`` tuples for handle-less
  Waitable callback delivery — the single hottest path in the tree.

The split is an implementation detail: every entry still carries its
``(time, priority, seq)`` key and the dispatch loop always pops the
global minimum, so ordering is bit-for-bit identical to a single-heap
engine.  The load-bearing invariant is that a lane entry's time equals
``now`` at insertion and the clock can never advance past a pending lane
entry (the lane entry is a strictly smaller key than any later-time
event), so lane entries are always due and lanes never need sorting.
"""

from heapq import heapify, heappop, heappush
from collections import deque

from repro.sim.errors import SimError, StaleWaitable

#: Scheduling priority bands for simultaneous events.  Lower runs first.
PRIORITY_INTERRUPT = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2

_LANE_PRIORITIES = (PRIORITY_INTERRUPT, PRIORITY_NORMAL, PRIORITY_LOW)

#: Default for :class:`Simulator`'s ``fast_lane`` switch.  Tests flip this
#: to prove the lane and pure-store paths produce identical traces.
DEFAULT_FAST_LANE = True

#: Default event store backend for new simulators: ``"calendar"`` (the
#: array-backed calendar queue) or ``"heap"`` (the binary-heap oracle).
#: Determinism tests flip this to prove both orderings are identical.
DEFAULT_EVENT_STORE = "calendar"

#: Calendar-queue bucket width in simulated seconds.  Costs in the OS
#: model are microsecond-scale and timers millisecond-scale, so a 1 ms
#: tick keeps the active bucket small without scattering one workload
#: phase over thousands of buckets.
DEFAULT_CALENDAR_WIDTH = 1e-3

#: Number of ticks covered by the calendar window before entries spill
#: into the overflow heap.
DEFAULT_CALENDAR_BUCKETS = 4096

#: Initial slot-column capacity of a :class:`CalendarQueue` (grows by
#: doubling).
_INITIAL_SLOTS = 256

#: Purge cancelled store entries once at least this many accumulate *and*
#: they make up half the store (amortised O(1) per cancel).
_PURGE_MIN_CANCELLED = 64

#: Upper bound on recycled lane-entry lists kept for reuse.
_POOL_LIMIT = 1024

# Lane/heap entry layout (a mutable list so cancellation can null the
# callback):
#   [time, priority, seq, args, fn]
# ``fn is None`` marks a cancelled (or already-dispatched) entry.  Lane
# entries are recycled through ``Simulator._pool`` after dispatch; the
# ``seq`` stamp is what protects a recycled entry from a stale Handle
# (see :class:`Handle`).


class Handle:
    """Cancellation handle for a lane- or heap-scheduled callback.

    The handle captures the entry's ``seq`` at creation time.  Lane
    entries are recycled through the simulator's pool after dispatch, so
    a stale handle may find its entry list re-stamped for a *different*
    event; the seq comparison makes ``cancel()`` a safe no-op in that
    case.  ``cancelled`` reports only on this handle's own event and
    never reads a recycled entry.
    """

    __slots__ = ("_sim", "_entry", "_seq", "_cancelled")

    def __init__(self, sim, entry):
        self._sim = sim
        self._entry = entry
        self._seq = entry[2]
        self._cancelled = False

    def cancel(self):
        """Prevent the callback from running.  Idempotent."""
        entry = self._entry
        if entry[2] == self._seq and entry[4] is not None:
            entry[4] = None
            entry[3] = None
            self._cancelled = True
            self._sim._note_cancel()

    @property
    def cancelled(self):
        return self._cancelled


class SlotHandle:
    """Cancellation handle for a calendar-queue entry.

    Calendar entries live in recycled slot columns, so the handle keeps
    the slot's generation stamp; once the slot is freed and reused the
    generation no longer matches and ``cancel()`` is a safe no-op.
    """

    __slots__ = ("_store", "_slot", "_gen", "_cancelled")

    def __init__(self, store, slot, gen):
        self._store = store
        self._slot = slot
        self._gen = gen
        self._cancelled = False

    def cancel(self):
        """Prevent the callback from running.  Idempotent."""
        if not self._cancelled and self._store.cancel(self._slot, self._gen):
            self._cancelled = True

    @property
    def cancelled(self):
        return self._cancelled


class HeapStore:
    """Binary-heap event store: the ordering oracle for future events."""

    __slots__ = ("heap", "purges", "_cancel_count")

    def __init__(self):
        self.heap = []
        self.purges = 0
        self._cancel_count = 0

    @property
    def head(self):
        """The minimum entry (possibly cancelled), or ``None`` if empty."""
        heap = self.heap
        return heap[0] if heap else None

    def push(self, when, priority, seq, fn, args, sim):
        entry = [when, priority, seq, args, fn]
        heappush(self.heap, entry)
        return Handle(sim, entry)

    def live_head(self):
        """The minimum live entry, discarding cancelled heads."""
        heap = self.heap
        while heap and heap[0][4] is None:
            heappop(heap)
        return heap[0] if heap else None

    def pop_live(self):
        """Pop the head; returns ``(fn, args)``, ``fn`` None if cancelled."""
        entry = heappop(self.heap)
        return entry[4], entry[3]

    def note_cancel(self):
        """Lazily purge cancelled entries once they dominate the heap."""
        self._cancel_count += 1
        heap = self.heap
        if (
            self._cancel_count >= _PURGE_MIN_CANCELLED
            and self._cancel_count * 2 >= len(heap)
        ):
            # In-place so dispatch loops holding a reference stay valid.
            heap[:] = [entry for entry in heap if entry[4] is not None]
            heapify(heap)
            self._cancel_count = 0
            self.purges += 1

    def stats(self):
        """Store counters, folded into :meth:`Simulator.stats`."""
        return {"size": len(self.heap), "purges": self.purges}


class CalendarQueue:
    """Array-backed calendar-queue event store.

    Callbacks and argument tuples live in preallocated parallel *slot
    columns* (``_fns`` / ``_args`` / ``_gens``) recycled through a free
    list, so the keys that move through the ordering structures are
    small immutable ``(time, priority, seq, slot)`` tuples.  Ordering is
    three-level:

    * the *active* bucket — a tiny binary heap holding the earliest tick;
    * future ticks inside the window — unsorted per-tick lists reached
      through a heap of tick ids, heapified only on activation;
    * everything at or beyond the window horizon — an overflow heap,
      migrated into fresh buckets when the window jumps forward.

    The horizon only moves when the windowed ticks drain, so a tick's
    entries can never be split between a bucket and the overflow heap —
    that is the invariant that keeps the pop order identical to a single
    binary heap's.
    """

    __slots__ = (
        "width",
        "nbuckets",
        "_inv_width",
        "_fns",
        "_args",
        "_gens",
        "_free",
        "_buckets",
        "_tick_heap",
        "_overflow",
        "_active",
        "_active_tick",
        "_horizon",
        "head",
        "size",
        "spills",
        "pulls",
        "advances",
        "purges",
        "cancelled",
        "_cancel_count",
    )

    def __init__(self, width=None, nbuckets=None):
        self.width = DEFAULT_CALENDAR_WIDTH if width is None else width
        if self.width <= 0:
            raise SimError("calendar width must be positive: {}".format(width))
        self.nbuckets = int(DEFAULT_CALENDAR_BUCKETS if nbuckets is None else nbuckets)
        if self.nbuckets < 1:
            raise SimError("calendar needs at least one bucket")
        self._inv_width = 1.0 / self.width
        self._fns = [None] * _INITIAL_SLOTS
        self._args = [None] * _INITIAL_SLOTS
        self._gens = [0] * _INITIAL_SLOTS
        self._free = list(range(_INITIAL_SLOTS - 1, -1, -1))
        self._buckets = {}
        self._tick_heap = []
        self._overflow = []
        self._active = []
        self._active_tick = None
        self._horizon = 0
        self.head = None
        self.size = 0
        self.spills = 0
        self.pulls = 0
        self.advances = 0
        self.purges = 0
        self.cancelled = 0
        self._cancel_count = 0

    def _grow(self):
        cap = len(self._fns)
        self._fns.extend([None] * cap)
        self._args.extend([None] * cap)
        self._gens.extend([0] * cap)
        # Hand out the lowest new slot, stack the rest for reuse.
        self._free.extend(range(2 * cap - 1, cap, -1))
        return cap

    def push(self, when, priority, seq, fn, args, sim):
        free = self._free
        slot = free.pop() if free else self._grow()
        self._fns[slot] = fn
        self._args[slot] = args
        key = (when, priority, seq, slot)
        tick = int(when * self._inv_width)
        active_tick = self._active_tick
        if active_tick is None:
            # Store was empty: activate this tick directly and re-anchor
            # the window (the old horizon is meaningless once drained).
            self._active.append(key)
            self._active_tick = tick
            self._horizon = tick + self.nbuckets
            self.head = key
        elif tick <= active_tick:
            # Same (or earlier — possible for zero-delay pushes with a
            # custom priority) tick as the active bucket: the active heap
            # is the only structure that keeps exact order.
            heappush(self._active, key)
            self.head = self._active[0]
        elif tick < self._horizon:
            bucket = self._buckets.get(tick)
            if bucket is None:
                self._buckets[tick] = [key]
                heappush(self._tick_heap, tick)
            else:
                bucket.append(key)
        else:
            heappush(self._overflow, key)
            self.spills += 1
        self.size += 1
        return SlotHandle(self, slot, self._gens[slot])

    def pop_live(self):
        """Pop the head entry and free its slot.

        Returns ``(fn, args)``; ``fn`` is None when the head had been
        cancelled (callers skip and retry).
        """
        key = heappop(self._active)
        slot = key[3]
        fn = self._fns[slot]
        args = self._args[slot]
        self._fns[slot] = None
        self._args[slot] = None
        self._gens[slot] += 1
        self._free.append(slot)
        self.size -= 1
        if self._active:
            self.head = self._active[0]
        else:
            self._advance()
        return fn, args

    def live_head(self):
        """The minimum live key, discarding cancelled heads."""
        head = self.head
        if head is None:
            return None
        fns = self._fns
        while fns[head[3]] is None:
            self.pop_live()
            head = self.head
            if head is None:
                return None
        return head

    def _advance(self):
        """Activate the next non-empty tick (migrating overflow if needed)."""
        tick_heap = self._tick_heap
        buckets = self._buckets
        while True:
            if tick_heap:
                tick = heappop(tick_heap)
                bucket = buckets.pop(tick)
                heapify(bucket)
                self._active = bucket
                self._active_tick = tick
                self.head = bucket[0]
                self.advances += 1
                return
            overflow = self._overflow
            if not overflow:
                self._active = []
                self._active_tick = None
                self.head = None
                return
            # The windowed ticks drained: jump the window to the earliest
            # overflow tick and migrate everything now inside it.  Doing
            # this only when the window is empty guarantees a tick is
            # never split between a bucket and the overflow heap.
            inv_width = self._inv_width
            horizon = int(overflow[0][0] * inv_width) + self.nbuckets
            self._horizon = horizon
            while overflow and int(overflow[0][0] * inv_width) < horizon:
                key = heappop(overflow)
                tick = int(key[0] * inv_width)
                bucket = buckets.get(tick)
                if bucket is None:
                    buckets[tick] = [key]
                    heappush(tick_heap, tick)
                else:
                    bucket.append(key)
                self.pulls += 1

    def cancel(self, slot, gen):
        """Cancel the entry in ``slot`` if its generation still matches."""
        if self._gens[slot] != gen or self._fns[slot] is None:
            return False
        self._fns[slot] = None
        self._args[slot] = None
        self.cancelled += 1
        self._cancel_count += 1
        if (
            self._cancel_count >= _PURGE_MIN_CANCELLED
            and self._cancel_count * 2 >= self.size
        ):
            self._purge()
        return True

    def note_cancel(self):
        """Lane-entry cancels don't involve the calendar; nothing to do."""

    def _purge(self):
        """Drop cancelled entries from every structure and free their slots."""
        fns = self._fns
        gens = self._gens
        free = self._free
        dropped = 0

        def sweep(keys):
            nonlocal dropped
            live = []
            for key in keys:
                slot = key[3]
                if fns[slot] is None:
                    gens[slot] += 1
                    free.append(slot)
                    dropped += 1
                else:
                    live.append(key)
            return live

        active = sweep(self._active)
        heapify(active)
        self._active = active
        buckets = self._buckets
        for tick in list(buckets):
            kept = sweep(buckets[tick])
            if kept:
                buckets[tick] = kept
            else:
                del buckets[tick]
        tick_heap = list(buckets)
        heapify(tick_heap)
        self._tick_heap = tick_heap
        overflow = sweep(self._overflow)
        heapify(overflow)
        self._overflow = overflow
        self.size -= dropped
        self._cancel_count = 0
        self.purges += 1
        if active:
            self.head = active[0]
        else:
            self._advance()

    def stats(self):
        """Store counters, folded into :meth:`Simulator.stats`."""
        return {
            "size": self.size,
            "slots": len(self._fns),
            "free_slots": len(self._free),
            "buckets": len(self._buckets),
            "overflow": len(self._overflow),
            "spills": self.spills,
            "pulls": self.pulls,
            "advances": self.advances,
            "purges": self.purges,
            "cancelled": self.cancelled,
        }


_STORES = {"calendar": CalendarQueue, "heap": HeapStore}


class Waitable:
    """One-shot completion cell.

    A waitable is *triggered* exactly once, either successfully
    (:meth:`succeed`) or with an exception (:meth:`fail`).  Callbacks
    added before triggering fire at trigger time; callbacks added after
    fire immediately (in the same timestep, through the event loop so
    that ordering remains deterministic).

    ``_callbacks`` is lazily shaped — ``None`` (no waiters), a bare
    callable (one waiter, the overwhelmingly common case), or a list —
    so the per-waitable cost on the hot path is two attribute writes.
    """

    __slots__ = ("sim", "_done", "_ok", "_value", "_callbacks", "_defused")

    def __init__(self, sim):
        self.sim = sim
        self._done = False
        self._callbacks = None

    @property
    def triggered(self):
        """True once the waitable has succeeded or failed."""
        return self._done

    @property
    def ok(self):
        """True if the waitable succeeded.  Only valid once triggered."""
        try:
            return self._ok
        except AttributeError:
            return None

    @property
    def value(self):
        """The success value or failure exception.  Valid once triggered."""
        try:
            return self._value
        except AttributeError:
            return None

    def add_callback(self, fn):
        """Run ``fn(self)`` when the waitable triggers."""
        if self._done:
            self.sim._soon1(fn, self)
            return
        cbs = self._callbacks
        if cbs is None:
            self._callbacks = fn
        elif type(cbs) is list:
            cbs.append(fn)
        else:
            self._callbacks = [cbs, fn]

    def discard_callback(self, fn):
        """Remove a pending callback if present (used by interrupts)."""
        if self._done:
            return
        cbs = self._callbacks
        if cbs is None:
            return
        if type(cbs) is list:
            if fn in cbs:
                cbs.remove(fn)
                if not cbs:
                    self._callbacks = None
        elif cbs == fn:
            self._callbacks = None

    def succeed(self, value=None):
        """Trigger successfully with ``value``."""
        if self._done:
            raise StaleWaitable("waitable triggered twice: {!r}".format(self))
        self._done = True
        self._ok = True
        self._value = value
        cbs = self._callbacks
        if cbs is not None:
            self._callbacks = None
            sim = self.sim
            if type(cbs) is not list:
                # Single waiter: inline the delivery-lane append.
                if sim._fast:
                    seq = sim._seqn + 1
                    sim._seqn = seq
                    sim._dq.append((seq, cbs, self))
                else:
                    sim.schedule(0.0, cbs, self)
            else:
                soon1 = sim._soon1
                for fn in cbs:
                    soon1(fn, self)
        return self

    def fail(self, exc):
        """Trigger with exception ``exc``; waiters will see it raised."""
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self._done:
            raise StaleWaitable("waitable triggered twice: {!r}".format(self))
        self._done = True
        self._ok = False
        self._value = exc
        cbs = self._callbacks
        if cbs is not None:
            self._callbacks = None
            if type(cbs) is not list:
                self.sim._soon1(cbs, self)
            else:
                soon1 = self.sim._soon1
                for fn in cbs:
                    soon1(fn, self)
        elif not getattr(self, "_defused", False):
            raise exc
        return self

    def defuse(self):
        """Mark a failure as handled even with no waiters attached."""
        self._defused = True
        return self


class Timeout(Waitable):
    """Waitable that succeeds after a simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim, delay, value=None):
        if delay < 0:
            raise SimError("negative timeout delay: {}".format(delay))
        super().__init__(sim)
        self.delay = delay
        sim.schedule(delay, self.succeed, value)


class AnyOf(Waitable):
    """Succeeds with the first triggering child waitable."""

    __slots__ = ()

    def __init__(self, sim, children):
        super().__init__(sim)
        children = list(children)
        if not children:
            raise SimError("AnyOf requires at least one waitable")
        for child in children:
            child.add_callback(self._on_child)

    def _on_child(self, child):
        if self._done:
            return
        if child.ok:
            self.succeed(child)
        else:
            self.fail(child.value)


class AllOf(Waitable):
    """Succeeds with a list of child values once every child triggers."""

    __slots__ = ("_pending", "_children")

    def __init__(self, sim, children):
        super().__init__(sim)
        self._children = list(children)
        self._pending = len(self._children)
        if self._pending == 0:
            sim.call_soon(lambda _w: self.succeed([]), self)
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child):
        if self._done:
            return
        if not child.ok:
            self.fail(child.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([c.value for c in self._children])


class Simulator:
    """The event loop.

    ``fast_lane`` selects between the lane-accelerated dispatcher and the
    pure-store reference path (default: :data:`DEFAULT_FAST_LANE`).
    ``event_store`` selects the future-event backend — ``"calendar"``
    (array-backed calendar queue, default via :data:`DEFAULT_EVENT_STORE`)
    or ``"heap"`` (binary-heap oracle).  All four combinations produce
    identical event orderings; the switches exist so determinism tests
    and benchmarks can compare them.

    >>> sim = Simulator()
    >>> ticks = []
    >>> _ = sim.schedule(5.0, lambda: ticks.append(sim.now))
    >>> sim.run()
    >>> ticks
    [5.0]
    """

    def __init__(self, fast_lane=None, event_store=None):
        self.now = 0.0
        self._lanes = (deque(), deque(), deque())
        self._dq = deque()
        self._pool = []
        self._seqn = 0
        self._running = False
        self._cancels = 0
        self._pool_hits = 0
        self._pool_misses = 0
        self._fast = DEFAULT_FAST_LANE if fast_lane is None else bool(fast_lane)
        name = DEFAULT_EVENT_STORE if event_store is None else event_store
        try:
            self._store = _STORES[name]()
        except KeyError:
            raise SimError(
                "unknown event_store {!r} (expected one of {})".format(
                    name, sorted(_STORES)
                )
            ) from None
        self.event_store = name

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------

    def schedule(self, delay, fn, *args, priority=PRIORITY_NORMAL):
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimError("cannot schedule into the past (delay={})".format(delay))
        seq = self._seqn + 1
        self._seqn = seq
        if delay == 0.0 and self._fast and priority in _LANE_PRIORITIES:
            pool = self._pool
            if pool:
                entry = pool.pop()
                entry[0] = self.now
                entry[1] = priority
                entry[2] = seq
                entry[3] = args
                entry[4] = fn
                self._pool_hits += 1
            else:
                entry = [self.now, priority, seq, args, fn]
                self._pool_misses += 1
            self._lanes[priority].append(entry)
            return Handle(self, entry)
        return self._store.push(self.now + delay, priority, seq, fn, args, self)

    def schedule_at(self, when, fn, *args, priority=PRIORITY_NORMAL):
        """Run ``fn(*args)`` at absolute simulated time ``when``.

        Float accumulation can make a "now" computed as a sum of deltas
        land a hair before ``self.now``; such sub-epsilon negative delays
        are clamped to zero rather than rejected.
        """
        delay = when - self.now
        if delay < 0 and -delay <= 1e-9 * max(1.0, abs(self.now)):
            delay = 0.0
        return self.schedule(delay, fn, *args, priority=priority)

    def call_soon(self, fn, *args, priority=PRIORITY_NORMAL):
        """Run ``fn(*args)`` at the current time, after pending same-time work."""
        return self.schedule(0.0, fn, *args, priority=priority)

    def _soon1(self, fn, arg):
        """Handle-less single-argument :meth:`call_soon` (hot path).

        Deliveries enqueue as immutable ``(seq, fn, arg)`` tuples on the
        delivery lane: no entry list, no pool traffic, and nothing a
        stale :class:`Handle` could ever reference.  The tuples rank as
        ``PRIORITY_NORMAL`` at the current time, merged with lane-1
        entries by ``seq``.
        """
        if self._fast:
            seq = self._seqn + 1
            self._seqn = seq
            self._dq.append((seq, fn, arg))
        else:
            self.schedule(0.0, fn, arg)

    def _note_cancel(self):
        """Count a Handle cancel and let the store run its purge policy."""
        self._cancels += 1
        self._store.note_cancel()

    # ------------------------------------------------------------------
    # waitable factories
    # ------------------------------------------------------------------

    def waitable(self):
        """A fresh untriggered :class:`Waitable`."""
        return Waitable(self)

    def timeout(self, delay, value=None):
        """A waitable that succeeds after ``delay``."""
        return Timeout(self, delay, value)

    def any_of(self, children):
        """A waitable succeeding with the first triggered child."""
        return AnyOf(self, children)

    def all_of(self, children):
        """A waitable succeeding once all children trigger."""
        return AllOf(self, children)

    def process(self, generator, name=None):
        """Spawn a generator as a simulation process."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------

    def _step_one(self, until=None):
        """Dispatch exactly one event (the global minimum key).

        Returns False when nothing is pending or the next event lies
        beyond ``until``.  This is the generic selector shared by
        :meth:`step` and the slow corners of :meth:`run`; the inlined
        run loops reproduce exactly this order.
        """
        now = self.now
        pool = self._pool
        lane = None
        entry = None
        epri = eseq = None
        band = PRIORITY_INTERRUPT
        for candidate in self._lanes:
            while candidate:
                head = candidate[0]
                if head[4] is None:
                    candidate.popleft()
                    head[3] = None
                    if len(pool) < _POOL_LIMIT:
                        pool.append(head)
                    continue
                break
            else:
                band += 1
                continue
            # Lanes are checked in priority order and all lane entries
            # share the same timestamp, so the first live head wins.
            lane = candidate
            entry = head
            epri = band
            eseq = head[2]
            break
        dq = self._dq
        if dq and (entry is None or (PRIORITY_NORMAL, dq[0][0]) < (epri, eseq)):
            lane = None
            entry = None
            epri = PRIORITY_NORMAL
            eseq = dq[0][0]
            use_dq = True
        else:
            use_dq = False
        store = self._store
        while True:
            key = store.live_head()
            if key is None:
                break
            when = key[0]
            if entry is None and not use_dq:
                if until is not None and when > until:
                    return False
            elif when > now or (key[1], key[2]) >= (epri, eseq):
                break
            fn, args = store.pop_live()
            if fn is None:
                continue
            if when < now:
                raise SimError("time went backwards: {} < {}".format(when, now))
            self.now = when
            fn(*args)
            return True
        if use_dq:
            item = dq.popleft()
            item[1](item[2])
            return True
        if entry is None:
            return False
        lane.popleft()
        fn = entry[4]
        args = entry[3]
        entry[3] = entry[4] = None
        if len(pool) < _POOL_LIMIT:
            pool.append(entry)
        fn(*args)
        return True

    def peek(self):
        """Time of the next pending event, or ``None`` if nothing is queued."""
        if self._dq:
            return self.now
        for lane in self._lanes:
            for entry in lane:
                if entry[4] is not None:
                    return entry[0]
        key = self._store.live_head()
        return key[0] if key is not None else None

    def step(self):
        """Process exactly one pending event.  Returns False if none remain."""
        return self._step_one()

    def run(self, until=None):
        """Run until the queues drain or ``until`` (absolute time) is reached.

        When ``until`` is given the clock is advanced exactly to it even if
        the queues drained earlier, so back-to-back ``run(until=...)`` calls
        observe a monotonically advancing clock.
        """
        if self._running:
            raise SimError("simulator is already running (re-entrant run())")
        self._running = True
        try:
            if until is None or until >= self.now:
                if self._fast:
                    self._run_fast(until)
                else:
                    self._run_oracle(until)
            if until is not None:
                if until < self.now:
                    raise SimError(
                        "run(until={}) is in the past (now={})".format(until, self.now)
                    )
                self.now = until
        finally:
            self._running = False

    def _run_fast(self, until):
        """The lane-accelerated drain loop — the hottest region in the tree.

        It inlines :meth:`_step_one` with containers bound to locals
        (see ``benchmarks/test_bench_engine.py``).  Lane/delivery entries
        are always at ``now`` and ``now`` can only advance through store
        dispatches, which re-check ``until``; the entry guard in
        :meth:`run` therefore keeps every dispatch ``<= until``.
        """
        dq = self._dq
        lane0, lane1, lane2 = self._lanes
        pool = self._pool
        store = self._store
        now = self.now
        while True:
            # Band candidate: the live head of the lowest non-empty band,
            # with the delivery lane merged into band 1 by seq.
            entry = None
            lane = None
            use_dq = False
            if lane0:
                entry = lane0[0]
                if entry[4] is None:
                    lane0.popleft()
                    entry[3] = None
                    if len(pool) < _POOL_LIMIT:
                        pool.append(entry)
                    continue
                lane = lane0
                epri = 0
                eseq = entry[2]
            elif lane1:
                entry = lane1[0]
                if entry[4] is None:
                    lane1.popleft()
                    entry[3] = None
                    if len(pool) < _POOL_LIMIT:
                        pool.append(entry)
                    continue
                if dq and dq[0][0] < entry[2]:
                    entry = None
                    use_dq = True
                    epri = 1
                    eseq = dq[0][0]
                else:
                    lane = lane1
                    epri = 1
                    eseq = entry[2]
            elif dq:
                use_dq = True
                epri = 1
                eseq = dq[0][0]
            elif lane2:
                entry = lane2[0]
                if entry[4] is None:
                    lane2.popleft()
                    entry[3] = None
                    if len(pool) < _POOL_LIMIT:
                        pool.append(entry)
                    continue
                lane = lane2
                epri = 2
                eseq = entry[2]
            key = store.head
            if key is not None:
                if entry is None and not use_dq:
                    # Nothing same-time pending: the store decides.
                    when = key[0]
                    if until is not None and when > until:
                        break
                    fn, args = store.pop_live()
                    if fn is None:
                        continue
                    if when < now:
                        raise SimError(
                            "time went backwards: {} < {}".format(when, now)
                        )
                    self.now = now = when
                    fn(*args)
                    continue
                when = key[0]
                if when <= now and (key[1], key[2]) < (epri, eseq):
                    fn, args = store.pop_live()
                    if fn is None:
                        continue
                    if when < now:
                        raise SimError(
                            "time went backwards: {} < {}".format(when, now)
                        )
                    self.now = when
                    fn(*args)
                    continue
            elif entry is None and not use_dq:
                break
            if use_dq:
                item = dq.popleft()
                item[1](item[2])
                continue
            lane.popleft()
            fn = entry[4]
            args = entry[3]
            entry[3] = entry[4] = None
            if len(pool) < _POOL_LIMIT:
                pool.append(entry)
            fn(*args)

    def _run_oracle(self, until):
        """Pure-store reference drain loop (``fast_lane=False``)."""
        store = self._store
        now = self.now
        if type(store) is HeapStore:
            # Inlined for parity with the historical single-heap engine.
            heap = store.heap
            while True:
                while heap and heap[0][4] is None:
                    heappop(heap)
                if not heap:
                    break
                entry = heap[0]
                when = entry[0]
                if until is not None and when > until:
                    break
                heappop(heap)
                if when < now:
                    raise SimError("time went backwards: {} < {}".format(when, now))
                self.now = now = when
                entry[4](*entry[3])
            return
        while True:
            key = store.live_head()
            if key is None:
                break
            when = key[0]
            if until is not None and when > until:
                break
            fn, args = store.pop_live()
            if fn is None:
                continue
            if when < now:
                raise SimError("time went backwards: {} < {}".format(when, now))
            self.now = now = when
            fn(*args)

    def run_until_triggered(self, waitable, limit=None):
        """Run until ``waitable`` triggers; returns its value (or raises).

        ``limit`` bounds the absolute simulated time to guard against
        deadlocks in tests.
        """
        while not waitable.triggered:
            if limit is not None and self.now > limit:
                raise SimError("run_until_triggered exceeded limit {}".format(limit))
            if not self.step():
                raise SimError("event heap drained before waitable triggered")
        if waitable.ok:
            return waitable.value
        raise waitable.value

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def stats(self):
        """Engine counters for the metrics registry (``sysprof.sim``).

        ``store_*`` keys fold in the active event store's own counters
        (heap/calendar size, lazy purges, calendar overflow spills and
        window migrations).
        """
        lanes = self._lanes
        out = {
            "events_scheduled": self._seqn,
            "delivery_depth": len(self._dq),
            "lane_depth_interrupt": len(lanes[0]),
            "lane_depth_normal": len(lanes[1]),
            "lane_depth_low": len(lanes[2]),
            "pool_size": len(self._pool),
            "pool_hits": self._pool_hits,
            "pool_misses": self._pool_misses,
            "handle_cancels": self._cancels,
        }
        for key, value in self._store.stats().items():
            out["store_" + key] = value
        return out
