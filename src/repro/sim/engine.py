"""Deterministic discrete-event simulation engine.

The engine orders ``(time, priority, seq, args, fn)`` entries.  All
higher-level constructs (processes, timeouts, resources, sockets, CPU
schedulers) are built from two primitives:

* :meth:`Simulator.schedule` — run a callback at an absolute offset, and
* :class:`Waitable` — a one-shot completion cell that callbacks (and
  therefore processes) can chain on.

Determinism matters more than raw speed here: two runs with the same seed
must produce identical traces, because the monitoring toolkit under test
diffs event streams across configurations.  The ``seq`` counter breaks
time ties in insertion order and no wall-clock value ever enters the
simulation.

Storage is split between a binary heap (future events) and three
same-time FIFO *fast lanes*, one per priority band (``docs/performance.md``).
``call_soon()`` and Waitable callback delivery append to a lane instead of
paying a ``heapq`` round-trip.  The split is an implementation detail:
every entry still carries its ``(time, priority, seq)`` key and the
dispatch loop always pops the global minimum, so ordering is bit-for-bit
identical to a single-heap engine.  The load-bearing invariant is that a
lane entry's time equals ``now`` at insertion and the clock can never
advance past a pending lane entry (the lane entry is a strictly smaller
key than any later-time event), so lane entries are always due and lanes
never need sorting.
"""

from heapq import heapify, heappop, heappush
from collections import deque
from itertools import count

from repro.sim.errors import SimError, StaleWaitable

#: Scheduling priority bands for simultaneous events.  Lower runs first.
PRIORITY_INTERRUPT = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2

_LANE_PRIORITIES = (PRIORITY_INTERRUPT, PRIORITY_NORMAL, PRIORITY_LOW)

#: Default for :class:`Simulator`'s ``fast_lane`` switch.  Tests flip this
#: to prove the lane and pure-heap paths produce identical traces.
DEFAULT_FAST_LANE = True

#: Purge cancelled heap entries once at least this many accumulate *and*
#: they make up half the heap (amortised O(1) per cancel).
_PURGE_MIN_CANCELLED = 64

#: Upper bound on recycled entry lists kept for reuse.
_POOL_LIMIT = 1024

# Entry layout (a mutable list so cancellation can null the callback):
#   [time, priority, seq, args, fn, poolable]
# ``fn is None`` marks a cancelled entry.  ``poolable`` is True only for
# handle-less internal entries (callback delivery), which are safe to
# recycle after dispatch because no Handle can ever reference them.


class Handle:
    """Cancellation handle for a scheduled callback."""

    __slots__ = ("_sim", "_entry")

    def __init__(self, sim, entry):
        self._sim = sim
        self._entry = entry

    def cancel(self):
        """Prevent the callback from running.  Idempotent."""
        entry = self._entry
        if entry[4] is not None:
            entry[4] = None
            entry[3] = None
            self._sim._note_cancel()

    @property
    def cancelled(self):
        return self._entry[4] is None


class Waitable:
    """One-shot completion cell.

    A waitable is *triggered* exactly once, either successfully
    (:meth:`succeed`) or with an exception (:meth:`fail`).  Callbacks
    added before triggering fire at trigger time; callbacks added after
    fire immediately (in the same timestep, through the event loop so
    that ordering remains deterministic).
    """

    __slots__ = ("sim", "_done", "_ok", "_value", "_callbacks", "_defused")

    def __init__(self, sim):
        self.sim = sim
        self._done = False
        self._ok = None
        self._value = None
        self._callbacks = []
        self._defused = False

    @property
    def triggered(self):
        """True once the waitable has succeeded or failed."""
        return self._done

    @property
    def ok(self):
        """True if the waitable succeeded.  Only valid once triggered."""
        return self._ok

    @property
    def value(self):
        """The success value or failure exception.  Valid once triggered."""
        return self._value

    def add_callback(self, fn):
        """Run ``fn(self)`` when the waitable triggers."""
        if self._done:
            self.sim._soon(fn, (self,))
        else:
            self._callbacks.append(fn)

    def discard_callback(self, fn):
        """Remove a pending callback if present (used by interrupts)."""
        if not self._done and fn in self._callbacks:
            self._callbacks.remove(fn)

    def succeed(self, value=None):
        """Trigger successfully with ``value``."""
        self._finish(True, value)
        return self

    def fail(self, exc):
        """Trigger with exception ``exc``; waiters will see it raised."""
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._finish(False, exc)
        return self

    def defuse(self):
        """Mark a failure as handled even with no waiters attached."""
        self._defused = True
        return self

    def _finish(self, ok, value):
        if self._done:
            raise StaleWaitable("waitable triggered twice: {!r}".format(self))
        self._done = True
        self._ok = ok
        self._value = value
        callbacks, self._callbacks = self._callbacks, None
        soon = self.sim._soon
        for fn in callbacks:
            soon(fn, (self,))
        if not ok and not callbacks and not self._defused:
            raise value


class Timeout(Waitable):
    """Waitable that succeeds after a simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim, delay, value=None):
        if delay < 0:
            raise SimError("negative timeout delay: {}".format(delay))
        super().__init__(sim)
        self.delay = delay
        sim.schedule(delay, self.succeed, value)


class AnyOf(Waitable):
    """Succeeds with the first triggering child waitable."""

    __slots__ = ()

    def __init__(self, sim, children):
        super().__init__(sim)
        children = list(children)
        if not children:
            raise SimError("AnyOf requires at least one waitable")
        for child in children:
            child.add_callback(self._on_child)

    def _on_child(self, child):
        if self._done:
            return
        if child.ok:
            self.succeed(child)
        else:
            self.fail(child.value)


class AllOf(Waitable):
    """Succeeds with a list of child values once every child triggers."""

    __slots__ = ("_pending", "_children")

    def __init__(self, sim, children):
        super().__init__(sim)
        self._children = list(children)
        self._pending = len(self._children)
        if self._pending == 0:
            sim.call_soon(lambda _w: self.succeed([]), self)
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child):
        if self._done:
            return
        if not child.ok:
            self.fail(child.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([c.value for c in self._children])


class Simulator:
    """The event loop.

    ``fast_lane`` selects between the lane-accelerated dispatcher and the
    pure-heap reference path (default: :data:`DEFAULT_FAST_LANE`).  Both
    produce identical event orderings; the switch exists so determinism
    tests and benchmarks can compare them.

    >>> sim = Simulator()
    >>> ticks = []
    >>> _ = sim.schedule(5.0, lambda: ticks.append(sim.now))
    >>> sim.run()
    >>> ticks
    [5.0]
    """

    def __init__(self, fast_lane=None):
        self.now = 0.0
        self._heap = []
        self._lanes = (deque(), deque(), deque())
        self._pool = []
        self._seq = count()
        self._running = False
        self._cancelled = 0
        self._fast = DEFAULT_FAST_LANE if fast_lane is None else bool(fast_lane)

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------

    def schedule(self, delay, fn, *args, priority=PRIORITY_NORMAL):
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimError("cannot schedule into the past (delay={})".format(delay))
        entry = [self.now + delay, priority, next(self._seq), args, fn, False]
        if delay == 0.0 and self._fast and priority in _LANE_PRIORITIES:
            self._lanes[priority].append(entry)
        else:
            heappush(self._heap, entry)
        return Handle(self, entry)

    def schedule_at(self, when, fn, *args, priority=PRIORITY_NORMAL):
        """Run ``fn(*args)`` at absolute simulated time ``when``.

        Float accumulation can make a "now" computed as a sum of deltas
        land a hair before ``self.now``; such sub-epsilon negative delays
        are clamped to zero rather than rejected.
        """
        delay = when - self.now
        if delay < 0 and -delay <= 1e-9 * max(1.0, abs(self.now)):
            delay = 0.0
        return self.schedule(delay, fn, *args, priority=priority)

    def call_soon(self, fn, *args, priority=PRIORITY_NORMAL):
        """Run ``fn(*args)`` at the current time, after pending same-time work."""
        return self.schedule(0.0, fn, *args, priority=priority)

    def _soon(self, fn, args):
        """Handle-less :meth:`call_soon` for callback delivery (hot path).

        Entries created here are never referenced by a :class:`Handle`,
        so their list objects are recycled through ``self._pool`` after
        dispatch instead of being reallocated per event.
        """
        if not self._fast:
            self.schedule(0.0, fn, *args)
            return
        pool = self._pool
        if pool:
            entry = pool.pop()
            entry[0] = self.now
            entry[2] = next(self._seq)
            entry[3] = args
            entry[4] = fn
        else:
            entry = [self.now, PRIORITY_NORMAL, next(self._seq), args, fn, True]
        self._lanes[PRIORITY_NORMAL].append(entry)

    def _note_cancel(self):
        """Lazily purge cancelled entries once they dominate the heap."""
        self._cancelled += 1
        heap = self._heap
        if self._cancelled >= _PURGE_MIN_CANCELLED and self._cancelled * 2 >= len(heap):
            # In-place so dispatch loops holding a reference stay valid.
            heap[:] = [entry for entry in heap if entry[4] is not None]
            heapify(heap)
            self._cancelled = 0

    # ------------------------------------------------------------------
    # waitable factories
    # ------------------------------------------------------------------

    def waitable(self):
        """A fresh untriggered :class:`Waitable`."""
        return Waitable(self)

    def timeout(self, delay, value=None):
        """A waitable that succeeds after ``delay``."""
        return Timeout(self, delay, value)

    def any_of(self, children):
        """A waitable succeeding with the first triggered child."""
        return AnyOf(self, children)

    def all_of(self, children):
        """A waitable succeeding once all children trigger."""
        return AllOf(self, children)

    def process(self, generator, name=None):
        """Spawn a generator as a simulation process."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------

    def _select_live(self):
        """The next live entry and its container, without removing it.

        Discards cancelled entries blocking the lane heads and the heap
        top as a side effect.  Returns ``(entry, lane)`` where ``lane``
        is the owning deque, or ``(entry, None)`` for a heap entry, or
        ``(None, None)`` when nothing is pending.
        """
        candidate = None
        source = None
        for lane in self._lanes:
            while lane:
                entry = lane[0]
                if entry[4] is None:
                    lane.popleft()
                    continue
                break
            else:
                continue
            # Lanes are checked in priority order and all lane entries
            # share the same timestamp, so the first live head wins.
            candidate = entry
            source = lane
            break
        heap = self._heap
        while heap and heap[0][4] is None:
            heappop(heap)
        if heap:
            top = heap[0]
            if candidate is None:
                candidate = top
                source = None
            else:
                when = top[0]
                due = candidate[0]
                if when < due or (
                    when == due and (top[1], top[2]) < (candidate[1], candidate[2])
                ):
                    candidate = top
                    source = None
        return candidate, source

    def _pop_live(self):
        """Remove and return the next live entry, or ``None`` if idle."""
        entry, lane = self._select_live()
        if entry is None:
            return None
        if lane is not None:
            lane.popleft()
        else:
            heappop(self._heap)
        return entry

    def _dispatch(self, entry):
        when = entry[0]
        if when < self.now:
            raise SimError("time went backwards: {} < {}".format(when, self.now))
        self.now = when
        entry[4](*entry[3])
        if entry[5]:
            entry[3] = entry[4] = None
            if len(self._pool) < _POOL_LIMIT:
                self._pool.append(entry)

    def peek(self):
        """Time of the next pending event, or ``None`` if nothing is queued."""
        entry, _lane = self._select_live()
        return entry[0] if entry is not None else None

    def step(self):
        """Process exactly one pending event.  Returns False if none remain."""
        entry = self._pop_live()
        if entry is None:
            return False
        self._dispatch(entry)
        return True

    def run(self, until=None):
        """Run until the queues drain or ``until`` (absolute time) is reached.

        When ``until`` is given the clock is advanced exactly to it even if
        the queues drained earlier, so back-to-back ``run(until=...)`` calls
        observe a monotonically advancing clock.
        """
        if self._running:
            raise SimError("simulator is already running (re-entrant run())")
        self._running = True
        try:
            # The drain loop is the single hottest region in the whole
            # reproduction; it inlines _select_live/_dispatch and binds
            # containers to locals (see benchmarks/test_bench_engine.py).
            heap = self._heap
            lane0, lane1, lane2 = self._lanes
            pool = self._pool
            while True:
                if lane0:
                    entry = lane0[0]
                    if entry[4] is None:
                        lane0.popleft()
                        continue
                    lane = lane0
                elif lane1:
                    entry = lane1[0]
                    if entry[4] is None:
                        lane1.popleft()
                        continue
                    lane = lane1
                elif lane2:
                    entry = lane2[0]
                    if entry[4] is None:
                        lane2.popleft()
                        continue
                    lane = lane2
                else:
                    entry = None
                    lane = None
                while heap and heap[0][4] is None:
                    heappop(heap)
                if heap:
                    top = heap[0]
                    if entry is None:
                        entry = top
                        lane = None
                    else:
                        when = top[0]
                        due = entry[0]
                        if when < due or (
                            when == due
                            and (top[1], top[2]) < (entry[1], entry[2])
                        ):
                            entry = top
                            lane = None
                if entry is None:
                    break
                when = entry[0]
                if until is not None and when > until:
                    break
                if lane is not None:
                    lane.popleft()
                else:
                    heappop(heap)
                if when < self.now:
                    raise SimError(
                        "time went backwards: {} < {}".format(when, self.now)
                    )
                self.now = when
                entry[4](*entry[3])
                if entry[5]:
                    entry[3] = entry[4] = None
                    if len(pool) < _POOL_LIMIT:
                        pool.append(entry)
            if until is not None:
                if until < self.now:
                    raise SimError(
                        "run(until={}) is in the past (now={})".format(until, self.now)
                    )
                self.now = until
        finally:
            self._running = False

    def run_until_triggered(self, waitable, limit=None):
        """Run until ``waitable`` triggers; returns its value (or raises).

        ``limit`` bounds the absolute simulated time to guard against
        deadlocks in tests.
        """
        while not waitable.triggered:
            if limit is not None and self.now > limit:
                raise SimError("run_until_triggered exceeded limit {}".format(limit))
            if not self.step():
                raise SimError("event heap drained before waitable triggered")
        if waitable.ok:
            return waitable.value
        raise waitable.value
