"""Deterministic discrete-event simulation engine.

The engine is a single ordered heap of ``(time, priority, seq, fn, args)``
entries.  All higher-level constructs (processes, timeouts, resources,
sockets, CPU schedulers) are built from two primitives:

* :meth:`Simulator.schedule` — run a callback at an absolute offset, and
* :class:`Waitable` — a one-shot completion cell that callbacks (and
  therefore processes) can chain on.

Determinism matters more than raw speed here: two runs with the same seed
must produce identical traces, because the monitoring toolkit under test
diffs event streams across configurations.  The ``seq`` counter breaks
time ties in insertion order and no wall-clock value ever enters the
simulation.
"""

import heapq
from itertools import count

from repro.sim.errors import SimError, StaleWaitable

#: Scheduling priority bands for simultaneous events.  Lower runs first.
PRIORITY_INTERRUPT = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2


class Handle:
    """Cancellation handle for a scheduled callback."""

    __slots__ = ("_entry",)

    def __init__(self, entry):
        self._entry = entry

    def cancel(self):
        """Prevent the callback from running.  Idempotent."""
        self._entry[4] = None

    @property
    def cancelled(self):
        return self._entry[4] is None


class Waitable:
    """One-shot completion cell.

    A waitable is *triggered* exactly once, either successfully
    (:meth:`succeed`) or with an exception (:meth:`fail`).  Callbacks
    added before triggering fire at trigger time; callbacks added after
    fire immediately (in the same timestep, via the event heap so that
    ordering remains deterministic).
    """

    __slots__ = ("sim", "_done", "_ok", "_value", "_callbacks", "_defused")

    def __init__(self, sim):
        self.sim = sim
        self._done = False
        self._ok = None
        self._value = None
        self._callbacks = []
        self._defused = False

    @property
    def triggered(self):
        """True once the waitable has succeeded or failed."""
        return self._done

    @property
    def ok(self):
        """True if the waitable succeeded.  Only valid once triggered."""
        return self._ok

    @property
    def value(self):
        """The success value or failure exception.  Valid once triggered."""
        return self._value

    def add_callback(self, fn):
        """Run ``fn(self)`` when the waitable triggers."""
        if self._done:
            self.sim.call_soon(fn, self)
        else:
            self._callbacks.append(fn)

    def discard_callback(self, fn):
        """Remove a pending callback if present (used by interrupts)."""
        if not self._done and fn in self._callbacks:
            self._callbacks.remove(fn)

    def succeed(self, value=None):
        """Trigger successfully with ``value``."""
        self._finish(True, value)
        return self

    def fail(self, exc):
        """Trigger with exception ``exc``; waiters will see it raised."""
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._finish(False, exc)
        return self

    def defuse(self):
        """Mark a failure as handled even with no waiters attached."""
        self._defused = True
        return self

    def _finish(self, ok, value):
        if self._done:
            raise StaleWaitable("waitable triggered twice: {!r}".format(self))
        self._done = True
        self._ok = ok
        self._value = value
        callbacks, self._callbacks = self._callbacks, None
        for fn in callbacks:
            self.sim.call_soon(fn, self)
        if not ok and not callbacks and not self._defused:
            raise value


class Timeout(Waitable):
    """Waitable that succeeds after a simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim, delay, value=None):
        if delay < 0:
            raise SimError("negative timeout delay: {}".format(delay))
        super().__init__(sim)
        self.delay = delay
        sim.schedule(delay, self.succeed, value)


class AnyOf(Waitable):
    """Succeeds with the first triggering child waitable."""

    __slots__ = ()

    def __init__(self, sim, children):
        super().__init__(sim)
        children = list(children)
        if not children:
            raise SimError("AnyOf requires at least one waitable")
        for child in children:
            child.add_callback(self._on_child)

    def _on_child(self, child):
        if self._done:
            return
        if child.ok:
            self.succeed(child)
        else:
            self.fail(child.value)


class AllOf(Waitable):
    """Succeeds with a list of child values once every child triggers."""

    __slots__ = ("_pending", "_children")

    def __init__(self, sim, children):
        super().__init__(sim)
        self._children = list(children)
        self._pending = len(self._children)
        if self._pending == 0:
            sim.call_soon(lambda _w: self.succeed([]), self)
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child):
        if self._done:
            return
        if not child.ok:
            self.fail(child.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([c.value for c in self._children])


class Simulator:
    """The event loop.

    >>> sim = Simulator()
    >>> ticks = []
    >>> _ = sim.schedule(5.0, lambda: ticks.append(sim.now))
    >>> sim.run()
    >>> ticks
    [5.0]
    """

    def __init__(self):
        self.now = 0.0
        self._heap = []
        self._seq = count()
        self._running = False

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------

    def schedule(self, delay, fn, *args, priority=PRIORITY_NORMAL):
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimError("cannot schedule into the past (delay={})".format(delay))
        entry = [self.now + delay, priority, next(self._seq), args, fn]
        heapq.heappush(self._heap, entry)
        return Handle(entry)

    def schedule_at(self, when, fn, *args, priority=PRIORITY_NORMAL):
        """Run ``fn(*args)`` at absolute simulated time ``when``."""
        return self.schedule(when - self.now, fn, *args, priority=priority)

    def call_soon(self, fn, *args, priority=PRIORITY_NORMAL):
        """Run ``fn(*args)`` at the current time, after pending same-time work."""
        return self.schedule(0.0, fn, *args, priority=priority)

    # ------------------------------------------------------------------
    # waitable factories
    # ------------------------------------------------------------------

    def waitable(self):
        """A fresh untriggered :class:`Waitable`."""
        return Waitable(self)

    def timeout(self, delay, value=None):
        """A waitable that succeeds after ``delay``."""
        return Timeout(self, delay, value)

    def any_of(self, children):
        """A waitable succeeding with the first triggered child."""
        return AnyOf(self, children)

    def all_of(self, children):
        """A waitable succeeding once all children trigger."""
        return AllOf(self, children)

    def process(self, generator, name=None):
        """Spawn a generator as a simulation process."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------

    def peek(self):
        """Time of the next pending event, or ``None`` if the heap is empty."""
        heap = self._heap
        while heap and heap[0][4] is None:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def step(self):
        """Process exactly one pending event.  Returns False if none remain."""
        heap = self._heap
        while heap:
            when, _prio, _seq, args, fn = heapq.heappop(heap)
            if fn is None:
                continue
            if when < self.now:
                raise SimError("time went backwards: {} < {}".format(when, self.now))
            self.now = when
            fn(*args)
            return True
        return False

    def run(self, until=None):
        """Run until the heap drains or ``until`` (absolute time) is reached.

        When ``until`` is given the clock is advanced exactly to it even if
        the heap drained earlier, so back-to-back ``run(until=...)`` calls
        observe a monotonically advancing clock.
        """
        if self._running:
            raise SimError("simulator is already running (re-entrant run())")
        self._running = True
        try:
            heap = self._heap
            while heap:
                when = heap[0][0]
                if until is not None and when > until:
                    break
                self.step()
            if until is not None:
                if until < self.now:
                    raise SimError(
                        "run(until={}) is in the past (now={})".format(until, self.now)
                    )
                self.now = until
        finally:
            self._running = False

    def run_until_triggered(self, waitable, limit=None):
        """Run until ``waitable`` triggers; returns its value (or raises).

        ``limit`` bounds the absolute simulated time to guard against
        deadlocks in tests.
        """
        while not waitable.triggered:
            if limit is not None and self.now > limit:
                raise SimError("run_until_triggered exceeded limit {}".format(limit))
            if not self.step():
                raise SimError("event heap drained before waitable triggered")
        if waitable.ok:
            return waitable.value
        raise waitable.value
