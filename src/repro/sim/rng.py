"""Seeded, named random streams.

Every stochastic component draws from its own named substream so that
adding a new consumer of randomness does not perturb the draws seen by
existing components — a prerequisite for comparing monitor-on vs
monitor-off runs of the *same* workload.
"""

import hashlib
import math
import random


class RandomStreams:
    """Factory of independent ``random.Random`` substreams.

    >>> streams = RandomStreams(42)
    >>> a = streams.stream("arrivals")
    >>> b = streams.stream("service")
    >>> a is streams.stream("arrivals")
    True
    """

    def __init__(self, seed=0):
        self.seed = seed
        self._streams = {}

    def stream(self, name):
        """The substream for ``name`` (created on first use)."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(
                "{}/{}".format(self.seed, name).encode("utf-8")
            ).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def fork(self, name):
        """A child :class:`RandomStreams` rooted at ``name``."""
        digest = hashlib.sha256(
            "{}//{}".format(self.seed, name).encode("utf-8")
        ).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))


def exponential(stream, mean):
    """Exponential variate with the given mean (mean > 0)."""
    if mean <= 0:
        raise ValueError("exponential mean must be positive")
    return stream.expovariate(1.0 / mean)


def poisson(stream, mean):
    """Poisson variate (Knuth for small means, normal approx for large)."""
    if mean < 0:
        raise ValueError("poisson mean must be non-negative")
    if mean == 0:
        return 0
    if mean > 50:
        value = int(round(stream.gauss(mean, math.sqrt(mean))))
        return max(0, value)
    threshold = math.exp(-mean)
    k, product = 0, stream.random()
    while product > threshold:
        k += 1
        product *= stream.random()
    return k


def pareto(stream, shape, minimum):
    """Bounded-below Pareto variate (heavy-tailed service times)."""
    if shape <= 0 or minimum <= 0:
        raise ValueError("pareto shape and minimum must be positive")
    return minimum * (1.0 - stream.random()) ** (-1.0 / shape)
