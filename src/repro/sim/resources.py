"""Waitable synchronization primitives: resources, stores, gates, queues."""

from collections import deque

from repro.sim.engine import Waitable
from repro.sim.errors import SimError


class Resource:
    """Counted resource with FIFO admission (a semaphore with a queue).

    ``acquire()`` returns a waitable that succeeds when a unit is granted;
    ``release()`` hands the unit to the next waiter.
    """

    def __init__(self, sim, capacity=1):
        if capacity < 1:
            raise SimError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters = deque()

    def __repr__(self):
        return "<Resource {}/{} queued={}>".format(
            self.in_use, self.capacity, len(self._waiters)
        )

    @property
    def queue_length(self):
        return len(self._waiters)

    def acquire(self):
        grant = Waitable(self.sim)
        if self.in_use < self.capacity:
            self.in_use += 1
            grant.succeed(self)
        else:
            self._waiters.append(grant)
        return grant

    def release(self):
        if self.in_use <= 0:
            raise SimError("release() without acquire()")
        while self._waiters:
            grant = self._waiters.popleft()
            if grant.triggered:  # waiter cancelled via fail elsewhere
                continue
            grant.succeed(self)
            return
        self.in_use -= 1

    def cancel(self, grant):
        """Withdraw a pending acquire before it is granted."""
        if grant in self._waiters:
            self._waiters.remove(grant)


class Store:
    """FIFO item store with optional capacity (a waitable queue).

    ``put(item)`` returns a waitable succeeding once the item is accepted;
    ``get()`` returns a waitable succeeding with the oldest item.
    """

    def __init__(self, sim, capacity=None):
        if capacity is not None and capacity < 1:
            raise SimError("store capacity must be >= 1 or None")
        self.sim = sim
        self.capacity = capacity
        self.items = deque()
        self._getters = deque()
        self._putters = deque()  # (waitable, item)

    def __len__(self):
        return len(self.items)

    @property
    def full(self):
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, item):
        done = Waitable(self.sim)
        if self.full:
            self._putters.append((done, item))
        else:
            self._accept(item)
            done.succeed(item)
        return done

    def try_put(self, item):
        """Non-blocking put; returns False when the store is full."""
        if self.full:
            return False
        self._accept(item)
        return True

    def get(self):
        got = Waitable(self.sim)
        if self.items:
            got.succeed(self.items.popleft())
            self._admit_putters()
        else:
            self._getters.append(got)
        return got

    def cancel_get(self, got):
        """Withdraw a pending ``get()`` waitable before an item arrives.

        Used when the waiting process dies (crash injection): without the
        cancel, the stale waiter would consume — and lose — the next item.
        """
        if got in self._getters:
            self._getters.remove(got)

    def try_get(self):
        """Non-blocking get; returns ``(True, item)`` or ``(False, None)``."""
        if self.items:
            item = self.items.popleft()
            self._admit_putters()
            return True, item
        return False, None

    def _accept(self, item):
        while self._getters:
            got = self._getters.popleft()
            if got.triggered:
                continue
            got.succeed(item)
            return
        self.items.append(item)

    def _admit_putters(self):
        while self._putters and not self.full:
            done, item = self._putters.popleft()
            if done.triggered:
                continue
            self._accept(item)
            done.succeed(item)


class Gate:
    """Broadcast condition: every ``wait()`` gets a waitable; ``fire(value)``
    triggers all waiters currently parked."""

    def __init__(self, sim):
        self.sim = sim
        self._waiters = []

    @property
    def waiter_count(self):
        return len(self._waiters)

    def wait(self):
        waitable = Waitable(self.sim)
        self._waiters.append(waitable)
        return waitable

    def fire(self, value=None):
        waiters, self._waiters = self._waiters, []
        for waitable in waiters:
            if not waitable.triggered:
                waitable.succeed(value)
        return len(waiters)
