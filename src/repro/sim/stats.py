"""Small online statistics helpers used across the simulator and toolkit."""

import math


class RunningStat:
    """Streaming mean/variance/min/max (Welford's algorithm)."""

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum", "total")

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.total = 0.0

    def add(self, value):
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self):
        return self._mean if self.count else 0.0

    @property
    def variance(self):
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self):
        return math.sqrt(self.variance)

    def merge(self, other):
        """Fold another :class:`RunningStat` into this one (Chan's method)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            self.total = other.total
            return self
        combined = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / combined
        self._mean += delta * other.count / combined
        self.count = combined
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    def as_dict(self):
        return {
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "total": self.total,
        }

    def __repr__(self):
        return "<RunningStat n={} mean={:.6g}>".format(self.count, self.mean)


class TimeWeightedStat:
    """Time-weighted average of a piecewise-constant signal (e.g. queue length)."""

    __slots__ = ("_last_time", "_last_value", "_area", "_span_start", "maximum")

    def __init__(self, start_time=0.0, initial=0.0):
        self._last_time = start_time
        self._span_start = start_time
        self._last_value = initial
        self._area = 0.0
        self.maximum = initial

    def update(self, now, value):
        """Record that the signal changed to ``value`` at time ``now``."""
        if now < self._last_time:
            raise ValueError("time went backwards in TimeWeightedStat")
        self._area += self._last_value * (now - self._last_time)
        self._last_time = now
        self._last_value = value
        if value > self.maximum:
            self.maximum = value

    def mean(self, now):
        """Time-weighted mean over [start, now]."""
        span = now - self._span_start
        if span <= 0:
            return self._last_value
        area = self._area + self._last_value * (now - self._last_time)
        return area / span

    @property
    def current(self):
        return self._last_value


class Histogram:
    """Fixed-bin histogram with overflow bin; bins are [edge[i], edge[i+1])."""

    def __init__(self, edges):
        edges = sorted(edges)
        if len(edges) < 2:
            raise ValueError("histogram needs at least two edges")
        self.edges = edges
        self.counts = [0] * (len(edges) - 1)
        self.underflow = 0
        self.overflow = 0

    def add(self, value):
        if value < self.edges[0]:
            self.underflow += 1
            return
        if value >= self.edges[-1]:
            self.overflow += 1
            return
        low, high = 0, len(self.edges) - 1
        while high - low > 1:
            mid = (low + high) // 2
            if value >= self.edges[mid]:
                low = mid
            else:
                high = mid
        self.counts[low] += 1

    @property
    def total(self):
        return sum(self.counts) + self.underflow + self.overflow

    def quantile(self, q):
        """Approximate quantile from bin midpoints (0 <= q <= 1)."""
        if not 0 <= q <= 1:
            raise ValueError("quantile must be in [0, 1]")
        total = self.total
        if total == 0:
            return 0.0
        target = q * total
        seen = self.underflow
        if seen >= target and self.underflow:
            return self.edges[0]
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= target:
                return 0.5 * (self.edges[i] + self.edges[i + 1])
        return self.edges[-1]


def percentile(values, q):
    """Exact percentile of a sequence by linear interpolation (q in [0, 100])."""
    if not values:
        raise ValueError("percentile of empty sequence")
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    low = int(math.floor(rank))
    high = min(low + 1, len(data) - 1)
    frac = rank - low
    return data[low] * (1 - frac) + data[high] * frac
