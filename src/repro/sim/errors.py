"""Exception types raised by the discrete-event simulation engine."""


class SimError(Exception):
    """Base class for all simulation engine errors."""


class StaleWaitable(SimError):
    """A waitable was triggered more than once."""


class Interrupt(SimError):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.process.Process.interrupt`.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self):
        return "Interrupt({!r})".format(self.cause)


class ProcessCrashed(SimError):
    """A process generator raised an exception nobody was waiting for."""


class ConnectionReset(SimError):
    """The peer endpoint of a socket died (crash / kill / partition teardown).

    Raised out of ``send`` syscalls on the surviving side, mirroring
    ECONNRESET.  Tasks that do not catch it exit with a
    ``("connection-reset", ...)`` exit value rather than crashing the
    simulation — a real process would die on the unhandled error too.
    """
