"""Deterministic discrete-event simulation engine (SimPy-like,
dependency-free): an event calendar with stable tie-breaking,
generator-based processes, and seeded named RNG substreams.  Every
layer above — the OS, the network, and SysProf itself (§2) —
schedules through this engine, which is what makes same-seed runs
byte-identical and the paper's overhead results reproducible."""

from repro.sim.engine import (
    PRIORITY_INTERRUPT,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    AllOf,
    AnyOf,
    Handle,
    Simulator,
    Timeout,
    Waitable,
)
from repro.sim.errors import Interrupt, ProcessCrashed, SimError, StaleWaitable
from repro.sim.process import Process
from repro.sim.resources import Gate, Resource, Store
from repro.sim.rng import RandomStreams, exponential, pareto, poisson
from repro.sim.stats import Histogram, RunningStat, TimeWeightedStat, percentile

__all__ = [
    "AllOf",
    "AnyOf",
    "Gate",
    "Handle",
    "Histogram",
    "Interrupt",
    "PRIORITY_INTERRUPT",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "Process",
    "ProcessCrashed",
    "RandomStreams",
    "Resource",
    "RunningStat",
    "SimError",
    "Simulator",
    "StaleWaitable",
    "Store",
    "TimeWeightedStat",
    "Timeout",
    "Waitable",
    "exponential",
    "pareto",
    "percentile",
    "poisson",
]
