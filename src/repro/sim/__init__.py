"""Deterministic discrete-event simulation engine (SimPy-like, dependency-free)."""

from repro.sim.engine import (
    PRIORITY_INTERRUPT,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    AllOf,
    AnyOf,
    Handle,
    Simulator,
    Timeout,
    Waitable,
)
from repro.sim.errors import Interrupt, ProcessCrashed, SimError, StaleWaitable
from repro.sim.process import Process
from repro.sim.resources import Gate, Resource, Store
from repro.sim.rng import RandomStreams, exponential, pareto, poisson
from repro.sim.stats import Histogram, RunningStat, TimeWeightedStat, percentile

__all__ = [
    "AllOf",
    "AnyOf",
    "Gate",
    "Handle",
    "Histogram",
    "Interrupt",
    "PRIORITY_INTERRUPT",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "Process",
    "ProcessCrashed",
    "RandomStreams",
    "Resource",
    "RunningStat",
    "SimError",
    "Simulator",
    "StaleWaitable",
    "Store",
    "TimeWeightedStat",
    "Timeout",
    "Waitable",
    "exponential",
    "pareto",
    "percentile",
    "poisson",
]
