"""Generator-based simulation processes.

A process is a Python generator that yields :class:`~repro.sim.engine.Waitable`
instances.  The process suspends until the yielded waitable triggers; its
success value is sent back into the generator (``x = yield some_waitable``)
and a failure is raised at the yield point.

Processes are themselves waitables: they trigger with the generator's
return value, or fail with its uncaught exception.  A process blocked on a
waitable can be interrupted, which raises :class:`~repro.sim.errors.Interrupt`
inside it — the building block for preemptive CPU scheduling.
"""

import types

from repro.sim.engine import Waitable
from repro.sim.errors import Interrupt, SimError


class Process(Waitable):
    """A running simulation process.  Create via :meth:`Simulator.process`."""

    __slots__ = ("name", "_gen", "_target", "_started")

    def __init__(self, sim, generator, name=None):
        if not isinstance(generator, types.GeneratorType):
            raise TypeError(
                "Process requires a generator, got {!r}".format(type(generator))
            )
        super().__init__(sim)
        self.name = name or getattr(generator, "__name__", "process")
        self._gen = generator
        self._target = None
        self._started = False
        sim._soon1(self._start, None)

    def __repr__(self):
        state = "done" if self.triggered else ("waiting" if self._target else "new")
        return "<Process {} [{}]>".format(self.name, state)

    @property
    def is_alive(self):
        return not self.triggered

    # ------------------------------------------------------------------

    def _start(self, _arg=None):
        if self.triggered:  # interrupted before first step
            return
        self._started = True
        self._advance(send_value=None)

    def _advance(self, send_value=None, throw_exc=None):
        try:
            if throw_exc is not None:
                target = self._gen.throw(throw_exc)
            else:
                target = self._gen.send(send_value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Waitable):
            self._gen.close()
            self.fail(
                SimError(
                    "process {} yielded a non-waitable: {!r}".format(self.name, target)
                )
            )
            return
        self._target = target
        target.add_callback(self._on_target)

    def _on_target(self, waitable):
        if waitable is not self._target or self.triggered:
            return  # stale wakeup after an interrupt
        self._target = None
        if waitable.ok:
            self._advance(send_value=waitable.value)
        else:
            self._advance(throw_exc=waitable.value)

    # ------------------------------------------------------------------

    def interrupt(self, cause=None):
        """Raise :class:`Interrupt` inside the process at its yield point.

        Safe to call at any moment before the process finishes; interrupting
        a finished process is a no-op.  The waitable the process was blocked
        on keeps running but its eventual trigger is ignored.
        """
        if self.triggered:
            return
        self.sim._soon1(self._deliver_interrupt, cause)

    def _deliver_interrupt(self, cause):
        if self.triggered:
            return
        if not self._started:
            # Interrupt landed before the first step: kill quietly.
            self._gen.close()
            self.succeed(None)
            return
        target, self._target = self._target, None
        if target is not None:
            target.discard_callback(self._on_target)
        self._advance(throw_exc=Interrupt(cause))
