"""Federation scaling experiment: root ingress vs cluster size.

A flat SysProf install ships every node's frames straight to the root
GPA, so root ingress bytes and root simulated CPU grow linearly with
node count.  The federation tree (ROADMAP item 1) bounds both: each
rack's frames terminate at a :class:`~repro.core.federation.ZoneGpa`
that forwards merged sketches, count-weighted class rollups, and one
zone-health heartbeat upward per forward interval, so the root's load
scales with *zones*, not nodes.

Each experiment point builds a spine/leaf cluster
(:func:`~repro.cluster.topology.build_spine_leaf`), installs SysProf
either flat or federated **on the same topology** (rack-GPA nodes exist
but sit idle in flat mode), drives synthetic per-node telemetry
(:mod:`repro.workloads.synthetic` — real buffers, daemons, frames, and
wire bytes; no request path), and measures:

* ``root_bytes_per_s`` — the root GPA's ingress bytes over the run;
* ``root_cpu_share`` — the management node's simulated-CPU busy share;
* ``staleness_p95`` — p95 age of the freshest per-child nodestats row
  at the root, sampled every ``sample_interval`` after warmup.

:func:`run_federation_sweep` repeats this at several node counts and is
what ``python -m repro federation`` and the benchmark harness (which
appends to ``BENCH_federation.json``) both drive.
"""

import math
import time
from dataclasses import dataclass
from pathlib import Path

from repro.cluster import Cluster, build_spine_leaf
from repro.core import SysProf, SysProfConfig, ZoneSpec
from repro.experiments.common import record_trajectory
from repro.faults import FaultInjector, FaultSchedule
from repro.workloads.synthetic import install_synthetic_load

__all__ = [
    "BENCH_PATH",
    "BENCH_SCHEMA",
    "FederationConfig",
    "FederationPoint",
    "PartitionPoint",
    "partition_payload",
    "record_trajectory",  # re-exported shared writer (CLI + tests import here)
    "run_federation_point",
    "run_federation_sweep",
    "run_partition_point",
    "run_partition_sweep",
    "smoke_config",
    "sweep_payload",
]


@dataclass
class FederationConfig:
    """One scaling point: cluster shape, monitoring plane, and run length."""

    nodes: int = 64               # monitored nodes (excl. GPA/mgmt hosts)
    zones: int = 0                # 0 -> one zone per ~sqrt(nodes) rack
    federated: bool = True        # False: flat install on the same racks
    # -- monitoring plane ------------------------------------------------
    eviction_interval: float = 0.25
    forward_interval: float = 0.5
    eviction_stagger: float = 0.002  # de-sync the eviction herd
    stale_threshold: float = 1.0
    # -- synthetic telemetry ---------------------------------------------
    request_classes: tuple = ("rpc",)
    samples_per_window: int = 16
    # -- staleness sampling ----------------------------------------------
    sample_interval: float = 0.2
    warmup: float = 1.5           # skip startup transient before sampling
    # -- run -------------------------------------------------------------
    duration: float = 5.0
    seed: int = 17


def default_zones(nodes):
    """Balanced two-tier shape: ~sqrt(nodes) racks of ~sqrt(nodes)."""
    return max(2, int(round(math.sqrt(nodes))))


def smoke_config(nodes=16, zones=2):
    """A seconds-not-minutes configuration for CI and --smoke runs."""
    return FederationConfig(nodes=nodes, zones=zones, duration=3.0)


@dataclass
class FederationPoint:
    """Measured root load for one (nodes, mode) scaling point."""

    nodes: int
    zones: int
    federated: bool
    duration: float
    root_ingress_bytes: int
    root_bytes_per_s: float
    root_cpu_seconds: float
    root_cpu_share: float
    staleness_p95: float
    staleness_samples: int
    root_records: int
    root_children: int            # distinct nodes the root sees reporting
    zone_rows_forwarded: int
    zone_forwards: int
    wall_seconds: float

    def row(self):
        return (
            self.nodes,
            "federated" if self.federated else "flat",
            self.zones if self.federated else 0,
            round(self.root_bytes_per_s),
            "{:.4f}".format(self.root_cpu_share),
            "{:.3f}".format(self.staleness_p95),
        )


def _percentile(values, p):
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def run_federation_point(config=None):
    """Build, run, and measure one scaling point."""
    config = config or FederationConfig()
    started = time.perf_counter()
    zones = config.zones or default_zones(config.nodes)
    per_rack = max(1, config.nodes // zones)
    cluster = Cluster(seed=config.seed)
    topology = build_spine_leaf(
        cluster, racks=zones, nodes_per_rack=per_rack, mgmt_node="mgmt"
    )
    sysprof = SysProf(
        cluster,
        SysProfConfig(
            eviction_interval=config.eviction_interval,
            forward_interval=config.forward_interval,
            eviction_stagger=config.eviction_stagger,
            stale_threshold=config.stale_threshold,
            latency_sketches=False,  # synthetic LPAs supply sketch rows
        ),
    )
    if config.federated:
        specs = [
            ZoneSpec(name=rack.name, gpa_node=rack.gpa_node,
                     members=list(rack.nodes))
            for rack in topology.racks
        ]
        sysprof.install(zones=specs, gpa_node="mgmt")
    else:
        sysprof.install(monitored=topology.node_names, gpa_node="mgmt")
    install_synthetic_load(
        sysprof,
        request_classes=config.request_classes,
        samples_per_window=config.samples_per_window,
    )
    sysprof.start()

    gpa = sysprof.gpa
    ages = []

    def sample_staleness():
        now = cluster.sim.now
        for history in gpa.node_stats.values():
            if history:
                ages.append(max(0.0, now - history[-1]["ts"]))
        if now + config.sample_interval <= config.duration:
            cluster.sim.schedule(config.sample_interval, sample_staleness)

    cluster.sim.schedule(config.warmup, sample_staleness)
    cluster.run(until=config.duration)

    mgmt_kernel = cluster.node("mgmt").kernel
    elapsed = cluster.sim.now or config.duration
    zone_rows = zone_forwards = 0
    if sysprof.federation is not None:
        for zone_gpa in sysprof.federation.all_zones():
            zone_rows += zone_gpa.rows_forwarded
            zone_forwards += zone_gpa.forwards
    return FederationPoint(
        nodes=zones * per_rack,
        zones=zones if config.federated else 0,
        federated=config.federated,
        duration=elapsed,
        root_ingress_bytes=gpa.bytes_received,
        root_bytes_per_s=gpa.bytes_received / elapsed,
        root_cpu_seconds=mgmt_kernel.cpu.busy_time,
        root_cpu_share=mgmt_kernel.cpu.busy_time / elapsed,
        staleness_p95=_percentile(ages, 95.0),
        staleness_samples=len(ages),
        root_records=gpa.records_received,
        root_children=len(gpa.node_stats),
        zone_rows_forwarded=zone_rows,
        zone_forwards=zone_forwards,
        wall_seconds=time.perf_counter() - started,
    )


def run_federation_sweep(node_counts=(16, 64, 256), base_config=None,
                         modes=(False, True)):
    """Measure flat and federated root load across ``node_counts``.

    Returns ``{"points": [FederationPoint...]}`` ordered by node count
    then mode (flat before federated), the trajectory shape recorded in
    ``BENCH_federation.json``.
    """
    base = base_config or FederationConfig()
    points = []
    for nodes in node_counts:
        for federated in modes:
            config = FederationConfig(
                nodes=nodes,
                zones=base.zones or default_zones(nodes),
                federated=federated,
                eviction_interval=base.eviction_interval,
                forward_interval=base.forward_interval,
                eviction_stagger=base.eviction_stagger,
                stale_threshold=base.stale_threshold,
                request_classes=base.request_classes,
                samples_per_window=base.samples_per_window,
                sample_interval=base.sample_interval,
                warmup=base.warmup,
                duration=base.duration,
                seed=base.seed,
            )
            points.append(run_federation_point(config))
    return {"points": points}


@dataclass
class PartitionPoint:
    """Measured partition-tolerance outcome for one fault scenario.

    ``scenario`` is a :data:`~repro.faults.schedule.PARENT_PARTITION_SCOPES`
    value: ``uplink`` cuts the whole zone subtree off from the root (the
    retention path must hold condensation windows), ``gpa`` isolates the
    zone's GPA node (members must reparent to the standby zone).
    """

    scenario: str
    nodes: int
    zones: int
    target_zone: str
    standby_zone: str
    partition_start: float
    partition_duration: float
    detect_latency_s: float       # partition -> last affected link failed over
    return_latency_s: float       # heal -> last affected link back on primary
    coverage_gap_s: float         # summed failover-window seconds (all links)
    member_staleness_max_s: float  # worst sampled member age at its adopter
    member_staleness_bound_s: float  # detection + two eviction windows
    staleness_bounded: bool
    rows_lost: int                # class-summary count conservation residual
    reparents: int
    escalations: int
    returns: int
    forward_failures: int
    wall_seconds: float

    def row(self):
        return (
            self.scenario,
            self.target_zone,
            "{:.2f}".format(self.detect_latency_s),
            "{:.2f}".format(self.return_latency_s),
            "{:.2f}".format(self.coverage_gap_s),
            "{:.2f}/{:.2f}".format(
                self.member_staleness_max_s, self.member_staleness_bound_s
            ),
            self.rows_lost,
            "{}/{}/{}".format(self.reparents, self.escalations, self.returns),
        )


def run_partition_point(config=None, scenario="gpa", partition_start=1.0,
                        partition_duration=2.0, settle=2.5):
    """Partition one zone away from its parent tier and measure recovery.

    Builds the same federated topology as :func:`run_federation_point`
    but with a *ring* of standbys (zone ``i`` covers for zone ``i+1``),
    arms a ``parent_partition`` window against the first zone, and
    measures detection / failover / return latency from the affected
    :class:`~repro.core.federation.ParentLink` event logs, the sampled
    worst member staleness at whichever tier currently adopts each
    member, and the end-to-end class-summary count conservation (rows
    ingested by zone tiers == rows condensed to the root + rows still
    pending — the retention invariant: nothing forwarded is ever lost to
    a dead parent).
    """
    config = config or smoke_config()
    started = time.perf_counter()
    zones = config.zones or default_zones(config.nodes)
    per_rack = max(1, config.nodes // zones)
    cluster = Cluster(seed=config.seed)
    topology = build_spine_leaf(
        cluster, racks=zones, nodes_per_rack=per_rack, mgmt_node="mgmt"
    )
    sysprof = SysProf(
        cluster,
        SysProfConfig(
            eviction_interval=config.eviction_interval,
            forward_interval=config.forward_interval,
            eviction_stagger=config.eviction_stagger,
            stale_threshold=config.stale_threshold,
            latency_sketches=False,
            # Bound the return probe so the settle window after heal is
            # enough for every link to make it back to its primary.
            reparent_probe_base=0.25,
            reparent_probe_cap=1.0,
        ),
    )
    specs = [
        ZoneSpec(name=rack.name, gpa_node=rack.gpa_node,
                 members=list(rack.nodes))
        for rack in topology.racks
    ]
    if len(specs) > 1:
        for index, spec in enumerate(specs):
            spec.standby = specs[(index + 1) % len(specs)].name
    sysprof.install(zones=specs, gpa_node="mgmt")
    install_synthetic_load(
        sysprof,
        request_classes=config.request_classes,
        samples_per_window=config.samples_per_window,
    )
    sysprof.start()

    target = specs[0].name
    standby = specs[0].standby or ""
    federation = sysprof.federation
    target_members = list(federation.zone(target).members)
    injector = FaultInjector(cluster, sysprof=sysprof)
    injector.arm(
        FaultSchedule().parent_partition_window(
            partition_start, partition_duration, target, scope=scenario
        )
    )

    duration = partition_start + partition_duration + settle
    member_ages = []

    def sample_members():
        """Worst member age at whichever tier currently adopts it."""
        now = cluster.sim.now
        worst = 0.0
        for member in target_members:
            tier = federation._adopter_tier(
                federation.adopted.get(member, target)
            )
            history = tier.node_stats.get(member) if tier is not None else None
            if history:
                worst = max(worst, now - history[-1]["ts"])
        member_ages.append(worst)
        if now + config.sample_interval <= duration:
            cluster.sim.schedule(config.sample_interval, sample_members)

    cluster.sim.schedule(partition_start, sample_members)
    cluster.run(until=duration)

    links = []
    if scenario == "gpa":
        for member in target_members:
            link = sysprof.monitors[member].daemon.parent_link
            if link is not None:
                links.append(link)
    else:
        link = federation.zone(target).parent_link
        if link is not None:
            links.append(link)
    partition_at = next(
        e["at"] for e in injector.log if e["kind"] == "parent_partition"
    )
    heal_at = next(e["at"] for e in injector.log if e["kind"] == "heal")
    detect = return_latency = 0.0
    for link in links:
        overs = [e["at"] for e in link.events
                 if e["event"] in ("reparent", "probe-only")]
        backs = [e["at"] for e in link.events if e["event"] == "return"]
        if overs:
            detect = max(detect, overs[0] - partition_at)
        if backs:
            return_latency = max(return_latency, backs[-1] - heal_at)

    # Forward-path conservation: every class-summary count a zone tier
    # ingested is either condensed at the root or still pending locally.
    zone_received = zone_pending = 0
    forward_failures = 0
    for zone_gpa in federation.all_zones():
        zone_received += sum(r["count"] for r in zone_gpa.class_summaries)
        zone_pending += sum(
            acc["count"] for acc in zone_gpa._pending_classes.values()
        )
        forward_failures += zone_gpa.forward_failures
    root_condensed = sum(
        r["count"] for r in sysprof.gpa.class_summaries
        if r["node"].startswith("zone:")
    )
    rows_lost = zone_received - root_condensed - zone_pending

    staleness_max = max(member_ages) if member_ages else 0.0
    bound = detect + 2.0 * config.eviction_interval + config.sample_interval
    return PartitionPoint(
        scenario=scenario,
        nodes=zones * per_rack,
        zones=zones,
        target_zone=target,
        standby_zone=standby,
        partition_start=partition_at,
        partition_duration=heal_at - partition_at,
        detect_latency_s=detect,
        return_latency_s=return_latency,
        coverage_gap_s=sum(link.coverage_gap_s for link in links),
        member_staleness_max_s=staleness_max,
        member_staleness_bound_s=bound,
        staleness_bounded=staleness_max <= bound,
        rows_lost=rows_lost,
        reparents=sum(link.reparents for link in links),
        escalations=sum(link.escalations for link in links),
        returns=sum(link.returns for link in links),
        forward_failures=forward_failures,
        wall_seconds=time.perf_counter() - started,
    )


def run_partition_sweep(base_config=None, scenarios=("uplink", "gpa")):
    """Run every partition scenario against one topology configuration."""
    return {
        "points": [
            run_partition_point(config=base_config, scenario=scenario)
            for scenario in scenarios
        ]
    }


def partition_payload(sweep):
    """JSON-ready ``partition`` trajectory block for BENCH_federation.json."""
    return [
        {
            "scenario": p.scenario,
            "nodes": p.nodes,
            "zones": p.zones,
            "target_zone": p.target_zone,
            "standby_zone": p.standby_zone,
            "detect_latency_s": round(p.detect_latency_s, 4),
            "return_latency_s": round(p.return_latency_s, 4),
            "coverage_gap_s": round(p.coverage_gap_s, 4),
            "member_staleness_max_s": round(p.member_staleness_max_s, 4),
            "member_staleness_bound_s": round(p.member_staleness_bound_s, 4),
            "staleness_bounded": p.staleness_bounded,
            "rows_lost": p.rows_lost,
            "reparents": p.reparents,
            "escalations": p.escalations,
            "returns": p.returns,
            "forward_failures": p.forward_failures,
            "wall_seconds": round(p.wall_seconds, 2),
        }
        for p in sweep["points"]
    ]


#: Where the CLI appends its scaling trajectory (repo root).
BENCH_PATH = Path(__file__).resolve().parents[3] / "BENCH_federation.json"
BENCH_SCHEMA = "sysprof-repro/bench-federation/v1"


def sweep_payload(sweep):
    """JSON-ready trajectory payload for ``BENCH_federation.json``."""
    return {
        "points": [
            {
                "nodes": p.nodes,
                "mode": "federated" if p.federated else "flat",
                "zones": p.zones,
                "root_bytes_per_s": round(p.root_bytes_per_s, 1),
                "root_ingress_bytes": p.root_ingress_bytes,
                "root_cpu_share": round(p.root_cpu_share, 6),
                "staleness_p95": round(p.staleness_p95, 4),
                "root_children": p.root_children,
                "zone_rows_forwarded": p.zone_rows_forwarded,
                "wall_seconds": round(p.wall_seconds, 2),
            }
            for p in sweep["points"]
        ]
    }
