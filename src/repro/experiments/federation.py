"""Federation scaling experiment: root ingress vs cluster size.

A flat SysProf install ships every node's frames straight to the root
GPA, so root ingress bytes and root simulated CPU grow linearly with
node count.  The federation tree (ROADMAP item 1) bounds both: each
rack's frames terminate at a :class:`~repro.core.federation.ZoneGpa`
that forwards merged sketches, count-weighted class rollups, and one
zone-health heartbeat upward per forward interval, so the root's load
scales with *zones*, not nodes.

Each experiment point builds a spine/leaf cluster
(:func:`~repro.cluster.topology.build_spine_leaf`), installs SysProf
either flat or federated **on the same topology** (rack-GPA nodes exist
but sit idle in flat mode), drives synthetic per-node telemetry
(:mod:`repro.workloads.synthetic` — real buffers, daemons, frames, and
wire bytes; no request path), and measures:

* ``root_bytes_per_s`` — the root GPA's ingress bytes over the run;
* ``root_cpu_share`` — the management node's simulated-CPU busy share;
* ``staleness_p95`` — p95 age of the freshest per-child nodestats row
  at the root, sampled every ``sample_interval`` after warmup.

:func:`run_federation_sweep` repeats this at several node counts and is
what ``python -m repro federation`` and the benchmark harness (which
appends to ``BENCH_federation.json``) both drive.
"""

import json
import math
import os
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path

from repro.cluster import Cluster, build_spine_leaf
from repro.core import SysProf, SysProfConfig, ZoneSpec
from repro.workloads.synthetic import install_synthetic_load


@dataclass
class FederationConfig:
    """One scaling point: cluster shape, monitoring plane, and run length."""

    nodes: int = 64               # monitored nodes (excl. GPA/mgmt hosts)
    zones: int = 0                # 0 -> one zone per ~sqrt(nodes) rack
    federated: bool = True        # False: flat install on the same racks
    # -- monitoring plane ------------------------------------------------
    eviction_interval: float = 0.25
    forward_interval: float = 0.5
    eviction_stagger: float = 0.002  # de-sync the eviction herd
    stale_threshold: float = 1.0
    # -- synthetic telemetry ---------------------------------------------
    request_classes: tuple = ("rpc",)
    samples_per_window: int = 16
    # -- staleness sampling ----------------------------------------------
    sample_interval: float = 0.2
    warmup: float = 1.5           # skip startup transient before sampling
    # -- run -------------------------------------------------------------
    duration: float = 5.0
    seed: int = 17


def default_zones(nodes):
    """Balanced two-tier shape: ~sqrt(nodes) racks of ~sqrt(nodes)."""
    return max(2, int(round(math.sqrt(nodes))))


def smoke_config(nodes=16, zones=2):
    """A seconds-not-minutes configuration for CI and --smoke runs."""
    return FederationConfig(nodes=nodes, zones=zones, duration=3.0)


@dataclass
class FederationPoint:
    """Measured root load for one (nodes, mode) scaling point."""

    nodes: int
    zones: int
    federated: bool
    duration: float
    root_ingress_bytes: int
    root_bytes_per_s: float
    root_cpu_seconds: float
    root_cpu_share: float
    staleness_p95: float
    staleness_samples: int
    root_records: int
    root_children: int            # distinct nodes the root sees reporting
    zone_rows_forwarded: int
    zone_forwards: int
    wall_seconds: float

    def row(self):
        return (
            self.nodes,
            "federated" if self.federated else "flat",
            self.zones if self.federated else 0,
            round(self.root_bytes_per_s),
            "{:.4f}".format(self.root_cpu_share),
            "{:.3f}".format(self.staleness_p95),
        )


def _percentile(values, p):
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def run_federation_point(config=None):
    """Build, run, and measure one scaling point."""
    config = config or FederationConfig()
    started = time.perf_counter()
    zones = config.zones or default_zones(config.nodes)
    per_rack = max(1, config.nodes // zones)
    cluster = Cluster(seed=config.seed)
    topology = build_spine_leaf(
        cluster, racks=zones, nodes_per_rack=per_rack, mgmt_node="mgmt"
    )
    sysprof = SysProf(
        cluster,
        SysProfConfig(
            eviction_interval=config.eviction_interval,
            forward_interval=config.forward_interval,
            eviction_stagger=config.eviction_stagger,
            stale_threshold=config.stale_threshold,
            latency_sketches=False,  # synthetic LPAs supply sketch rows
        ),
    )
    if config.federated:
        specs = [
            ZoneSpec(name=rack.name, gpa_node=rack.gpa_node,
                     members=list(rack.nodes))
            for rack in topology.racks
        ]
        sysprof.install(zones=specs, gpa_node="mgmt")
    else:
        sysprof.install(monitored=topology.node_names, gpa_node="mgmt")
    install_synthetic_load(
        sysprof,
        request_classes=config.request_classes,
        samples_per_window=config.samples_per_window,
    )
    sysprof.start()

    gpa = sysprof.gpa
    ages = []

    def sample_staleness():
        now = cluster.sim.now
        for history in gpa.node_stats.values():
            if history:
                ages.append(max(0.0, now - history[-1]["ts"]))
        if now + config.sample_interval <= config.duration:
            cluster.sim.schedule(config.sample_interval, sample_staleness)

    cluster.sim.schedule(config.warmup, sample_staleness)
    cluster.run(until=config.duration)

    mgmt_kernel = cluster.node("mgmt").kernel
    elapsed = cluster.sim.now or config.duration
    zone_rows = zone_forwards = 0
    if sysprof.federation is not None:
        for zone_gpa in sysprof.federation.all_zones():
            zone_rows += zone_gpa.rows_forwarded
            zone_forwards += zone_gpa.forwards
    return FederationPoint(
        nodes=zones * per_rack,
        zones=zones if config.federated else 0,
        federated=config.federated,
        duration=elapsed,
        root_ingress_bytes=gpa.bytes_received,
        root_bytes_per_s=gpa.bytes_received / elapsed,
        root_cpu_seconds=mgmt_kernel.cpu.busy_time,
        root_cpu_share=mgmt_kernel.cpu.busy_time / elapsed,
        staleness_p95=_percentile(ages, 95.0),
        staleness_samples=len(ages),
        root_records=gpa.records_received,
        root_children=len(gpa.node_stats),
        zone_rows_forwarded=zone_rows,
        zone_forwards=zone_forwards,
        wall_seconds=time.perf_counter() - started,
    )


def run_federation_sweep(node_counts=(16, 64, 256), base_config=None,
                         modes=(False, True)):
    """Measure flat and federated root load across ``node_counts``.

    Returns ``{"points": [FederationPoint...]}`` ordered by node count
    then mode (flat before federated), the trajectory shape recorded in
    ``BENCH_federation.json``.
    """
    base = base_config or FederationConfig()
    points = []
    for nodes in node_counts:
        for federated in modes:
            config = FederationConfig(
                nodes=nodes,
                zones=base.zones or default_zones(nodes),
                federated=federated,
                eviction_interval=base.eviction_interval,
                forward_interval=base.forward_interval,
                eviction_stagger=base.eviction_stagger,
                stale_threshold=base.stale_threshold,
                request_classes=base.request_classes,
                samples_per_window=base.samples_per_window,
                sample_interval=base.sample_interval,
                warmup=base.warmup,
                duration=base.duration,
                seed=base.seed,
            )
            points.append(run_federation_point(config))
    return {"points": points}


#: Where the CLI appends its scaling trajectory (repo root).
BENCH_PATH = Path(__file__).resolve().parents[3] / "BENCH_federation.json"
BENCH_SCHEMA = "sysprof-repro/bench-federation/v1"


def record_trajectory(path, schema, payload):
    """Append one run to a ``BENCH_*.json`` trajectory (same layout as
    the benchmark harness: oldest-first ``trajectory`` list, newest
    mirrored under ``latest``, each entry commit- and date-stamped)."""
    path = Path(path)
    doc = {}
    if path.exists():
        try:
            doc = json.loads(path.read_text())
        except ValueError:
            doc = {}
    trajectory = doc.get("trajectory")
    if not isinstance(trajectory, list):
        trajectory = []
    entry = dict(payload)
    entry["commit"] = _git_commit()
    entry["date"] = time.strftime("%Y-%m-%d")
    trajectory.append(entry)
    path.write_text(json.dumps({
        "schema": schema,
        "latest": entry,
        "trajectory": trajectory,
    }, indent=2) + "\n")
    return entry


def _git_commit():
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def sweep_payload(sweep):
    """JSON-ready trajectory payload for ``BENCH_federation.json``."""
    return {
        "points": [
            {
                "nodes": p.nodes,
                "mode": "federated" if p.federated else "flat",
                "zones": p.zones,
                "root_bytes_per_s": round(p.root_bytes_per_s, 1),
                "root_ingress_bytes": p.root_ingress_bytes,
                "root_cpu_share": round(p.root_cpu_share, 6),
                "staleness_p95": round(p.staleness_p95, 4),
                "root_children": p.root_children,
                "zone_rows_forwarded": p.zone_rows_forwarded,
                "wall_seconds": round(p.wall_seconds, 2),
            }
            for p in sweep["points"]
        ]
    }
