"""§3.3: QoS scheduling of the RUBiS multi-tier web service.

Reproduces Figures 6 and 7: two request classes (high-priority bidding,
low-priority comment) scheduled by DWCS over two servlet servers.
Halfway through the run a background load lands on one servlet.  Plain
DWCS dispatches blindly and degrades; resource-aware DWCS consumes
SysProf node statistics (over the kernel pub-sub channels) and routes
around the loaded server — "the higher priority bidding request has very
insignificant drop".  Also measures the paper's headline costs: the
application throughput decrease with SysProf enabled (<2%) against the
throughput gain RA-DWCS buys (>14%).
"""

from dataclasses import dataclass, field

from repro.apps.rubis.requests import BIDDING, COMMENT
from repro.apps.rubis.site import RubisSite
from repro.apps.scheduling import (
    DwcsScheduler,
    DwcsStream,
    LoadMonitor,
    RequestDispatcher,
    ResourceAwareRouter,
    RoundRobinRouter,
)
from repro.cluster import Cluster
from repro.core import SysProf, SysProfConfig
from repro.experiments.common import trace_digest
from repro.experiments.runner import run_points
from repro.workloads.httperf import HttperfConfig, spawn_httperf

SERVLETS = ("servlet1", "servlet2")
WARMUP = 1.0


@dataclass
class RubisExperimentConfig:
    duration: float = 20.0
    load_at: float = 10.0       # relative to workload start
    load_duty: float = 0.6
    rate_per_class: float = 150.0
    sessions_per_class: int = 30
    slots_per_servlet: int = 10
    drop_factor: float = 4.0
    seed: int = 21
    start: float = 0.5
    monitor: bool = True
    frame_dissemination: bool = True  # batched frames vs per-record blobs


@dataclass
class RubisRunResult:
    scheduler: str
    pre_throughput: dict
    post_throughput: dict
    dropped: dict
    violations: dict
    series: dict = field(default_factory=dict)
    servlet_split: dict = field(default_factory=dict)
    monitor_enabled: bool = True
    trace_hash: str = ""

    @property
    def pre_total(self):
        return sum(self.pre_throughput.values())

    @property
    def post_total(self):
        return sum(self.post_throughput.values())


def run_rubis_experiment(scheduler="dwcs", config=None, inject_load=True):
    """One full run; ``scheduler`` is ``"dwcs"`` or ``"radwcs"``."""
    config = config or RubisExperimentConfig()
    if scheduler not in ("dwcs", "radwcs"):
        raise ValueError("scheduler must be 'dwcs' or 'radwcs'")
    if scheduler == "radwcs" and not config.monitor:
        raise ValueError("radwcs requires monitoring (it consumes SysProf data)")

    cluster = Cluster(seed=config.seed)
    cluster.add_node("client")
    cluster.add_node("apache")
    for name in SERVLETS:
        cluster.add_node(name)
    cluster.add_node("db", with_disk=True)
    cluster.add_node("mgmt")

    site = RubisSite(cluster, "apache", list(SERVLETS), "db").start()

    sysprof = None
    if config.monitor:
        sysprof = SysProf(
            cluster,
            SysProfConfig(
                eviction_interval=0.1,
                frame_dissemination=config.frame_dissemination,
            ),
        )
        sysprof.install(monitored=list(SERVLETS), gpa_node="mgmt")
        sysprof.start()

    dwcs = DwcsScheduler(drop_factor=config.drop_factor)
    for profile in (BIDDING, COMMENT):
        dwcs.add_stream(
            DwcsStream(
                profile.name, profile.period, profile.window_x, profile.window_y
            )
        )
    if scheduler == "radwcs":
        monitor = LoadMonitor(cluster.node("client"), sysprof.hub).start()
        router = ResourceAwareRouter(list(SERVLETS), monitor)
    else:
        router = RoundRobinRouter(list(SERVLETS))

    dispatcher = RequestDispatcher(
        cluster.node("client"), "apache", site.http_port, list(SERVLETS), dwcs,
        router=router, slots_per_servlet=config.slots_per_servlet,
    ).start()

    httperf_config = HttperfConfig(
        sessions_per_class=config.sessions_per_class,
        rate_per_class=config.rate_per_class,
        duration=config.duration,
        start=config.start,
    )
    _tasks, _stats = spawn_httperf(
        cluster.node("client"), dispatcher, httperf_config, cluster.streams
    )
    load_start = config.start + config.load_at
    if inject_load:
        site.inject_cpu_load(
            "servlet1", start=load_start, duration=config.duration,
            duty=config.load_duty,
        )
    cluster.run(until=config.start + config.duration + 2.0)

    end = config.start + config.duration
    pre = {}
    post = {}
    for profile in (BIDDING, COMMENT):
        pre[profile.name] = dispatcher.mean_throughput(
            profile.name, config.start + WARMUP, load_start
        )
        post[profile.name] = dispatcher.mean_throughput(
            profile.name, load_start + WARMUP, end
        )
    stream_stats = dwcs.stats()
    servlet_split = {}
    for record in dispatcher.completions:
        servlet_split.setdefault(record.request_class, {}).setdefault(
            record.servlet, 0
        )
        servlet_split[record.request_class][record.servlet] += 1
    if sysprof is not None:
        sysprof.flush()
        trace_hash = trace_digest(sysprof.gpa.query_interactions())
    else:
        trace_hash = ""
    return RubisRunResult(
        scheduler=scheduler,
        pre_throughput=pre,
        post_throughput=post,
        dropped={name: stats["dropped"] for name, stats in stream_stats.items()},
        violations={name: stats["violations"] for name, stats in stream_stats.items()},
        series=dispatcher.throughput_series(bin_width=1.0, until=end),
        servlet_split=servlet_split,
        monitor_enabled=config.monitor,
        trace_hash=trace_hash,
    )


def _comparison_point(args):
    """Picklable worker for one scheduler variant of the comparison."""
    scheduler, config, inject_load = args
    return run_rubis_experiment(scheduler, config, inject_load=inject_load)


def run_comparison(config=None, jobs=1):
    """Figure 6 vs Figure 7 plus headline gain.

    The two scheduler runs are independent simulations; ``jobs=2`` runs
    them in parallel worker processes with identical results.
    """
    config = config or RubisExperimentConfig()
    dwcs, radwcs = run_points(
        _comparison_point,
        [("dwcs", config, True), ("radwcs", config, True)],
        jobs=jobs,
    )
    gain = 0.0
    if dwcs.post_total:
        gain = 100.0 * (radwcs.post_total - dwcs.post_total) / dwcs.post_total
    return dwcs, radwcs, gain


def monitoring_cost_experiment(config=None):
    """Headline claim: enabling SysProf costs the application <2%.

    Runs the plain-DWCS workload without the mid-run load, monitor off vs
    on, and compares steady-state total throughput.
    """
    config = config or RubisExperimentConfig()
    results = {}
    for monitor in (False, True):
        run_config = RubisExperimentConfig(
            duration=config.duration, load_at=config.load_at,
            load_duty=config.load_duty, rate_per_class=config.rate_per_class,
            sessions_per_class=config.sessions_per_class,
            slots_per_servlet=config.slots_per_servlet,
            drop_factor=config.drop_factor, seed=config.seed,
            start=config.start, monitor=monitor,
        )
        result = run_rubis_experiment("dwcs", run_config, inject_load=False)
        end = run_config.start + run_config.duration
        results[monitor] = result.pre_total + result.post_total
    baseline, monitored = results[False], results[True]
    overhead_pct = (
        100.0 * (baseline - monitored) / baseline if baseline else 0.0
    )
    return baseline, monitored, overhead_pct
