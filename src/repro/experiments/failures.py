"""Failure-detection scenarios: NFS traffic through scripted faults.

The monitoring plane itself is the system under test here.  A small
virtual-storage cluster runs Iozone traffic while a
:class:`~repro.faults.FaultInjector` executes a scripted outage against
one monitored backend; the GPA's ``stale_nodes()`` view is sampled on a
fixed grid and the run reports how long the outage took to detect and
how the disseminatiom daemon recovered (reconnects, backoff spacing).

Two scenarios:

* ``daemon-crash`` — the backend's dissemination daemon is killed and
  later restarted; the node itself keeps serving NFS.
* ``partition`` — the backend and the management node land on opposite
  sides of a switch partition window; application traffic (proxy,
  clients) is unaffected because those nodes stay unmapped.

Everything is seeded: two runs with the same config produce identical
fault times, identical detection latencies, and identical trace digests.
"""

from dataclasses import dataclass, field

from repro.cluster import Cluster
from repro.core import SysProf, SysProfConfig
from repro.experiments.common import trace_digest
from repro.faults import FaultInjector, FaultSchedule
from repro.workloads.iozone import IozoneConfig, IozoneResults, spawn_iozone

SCENARIOS = ("daemon-crash", "partition")


@dataclass
class FailureExperimentConfig:
    scenario: str = "daemon-crash"
    target: str = "backend1"      # monitored node the fault hits
    gpa_node: str = "mgmt"
    clients: int = 1
    backends: int = 1
    threads_per_client: int = 2
    ops_per_thread: int = 48
    fault_start: float = 6.0
    fault_duration: float = 5.0
    fault_jitter: float = 0.0
    stale_threshold: float = 1.0   # quiet-time before a node is suspect
    check_interval: float = 0.25   # stale_nodes sampling grid
    eviction_interval: float = 0.2
    seed: int = 9
    sim_limit: float = 30.0
    frame_dissemination: bool = True


@dataclass
class FailureRunResult:
    scenario: str
    fault_at: float               # actual (possibly jittered) onset time
    fault_duration: float
    detected: bool
    detection_latency: float      # onset -> first stale_nodes() hit
    recovered: bool
    recovery_latency: float       # scripted recovery -> first clean probe
    send_errors: int
    connect_attempts: int
    reconnects: int
    backoff_skips: int
    endpoints_abandoned: int
    records_received: int
    injected: dict = field(default_factory=dict)
    trace_hash: str = ""


def build_schedule(config):
    """The fault script for one scenario (pure data; no simulator state)."""
    if config.scenario not in SCENARIOS:
        raise ValueError("unknown failure scenario: {!r}".format(config.scenario))
    schedule = FaultSchedule()
    if config.scenario == "daemon-crash":
        schedule.daemon_outage(
            config.fault_start, config.fault_duration, config.target,
            jitter=config.fault_jitter,
        )
    else:
        schedule.partition_window(
            config.fault_start, config.fault_duration,
            [[config.target], [config.gpa_node]],
            jitter=config.fault_jitter,
        )
    return schedule


def run_failure_experiment(config=None):
    """One scripted outage; returns a :class:`FailureRunResult`."""
    config = config or FailureExperimentConfig()
    cluster = Cluster(seed=config.seed)
    for index in range(config.clients):
        cluster.add_node("client{}".format(index + 1))
    cluster.add_node("proxy")
    backend_names = ["backend{}".format(i + 1) for i in range(config.backends)]
    for name in backend_names:
        cluster.add_node(name, with_disk=True)
    cluster.add_node(config.gpa_node)

    from repro.apps.nfs.service import VirtualStorageService

    VirtualStorageService(cluster, "proxy", backend_names).start()

    sysprof = SysProf(
        cluster,
        SysProfConfig(
            eviction_interval=config.eviction_interval,
            frame_dissemination=config.frame_dissemination,
            stale_threshold=config.stale_threshold,
        ),
    )
    sysprof.install(monitored=["proxy"] + backend_names, gpa_node=config.gpa_node)
    sysprof.start()

    injector = FaultInjector(cluster, sysprof=sysprof)
    injector.arm(build_schedule(config))

    results = IozoneResults()
    iozone_config = IozoneConfig(
        threads=config.threads_per_client, ops_per_thread=config.ops_per_thread
    )
    for index in range(config.clients):
        spawn_iozone(
            cluster.node("client{}".format(index + 1)), "proxy",
            iozone_config, results,
        )

    # Statically pre-scheduled suspicion probes: pure callbacks on a fixed
    # grid, so they cost no model CPU and are identical across same-seed
    # runs.  Each reads the GPA's stale-node view as an operator would.
    target = config.target
    recovery_at = config.fault_start + config.fault_duration
    probe_state = {"detected_at": None, "recovered_at": None}

    def probe():
        now = cluster.sim.now
        # No explicit threshold: the GPA default comes from the installed
        # SysProfConfig.stale_threshold above.
        stale = sysprof.gpa.stale_nodes(now)
        if target in stale:
            if probe_state["detected_at"] is None and now >= config.fault_start:
                probe_state["detected_at"] = now
        elif (
            probe_state["detected_at"] is not None
            and probe_state["recovered_at"] is None
            and now >= recovery_at
        ):
            probe_state["recovered_at"] = now

    ticks = int(config.sim_limit / config.check_interval)
    for tick in range(1, ticks + 1):
        cluster.sim.schedule(tick * config.check_interval, probe)

    cluster.run(until=config.sim_limit)
    sysprof.flush()

    fault_at = injector.log[0]["at"] if injector.log else config.fault_start
    detected_at = probe_state["detected_at"]
    recovered_at = probe_state["recovered_at"]
    daemon = sysprof.monitor(target).daemon
    return FailureRunResult(
        scenario=config.scenario,
        fault_at=fault_at,
        fault_duration=config.fault_duration,
        detected=detected_at is not None,
        detection_latency=(detected_at - fault_at) if detected_at else -1.0,
        recovered=recovered_at is not None,
        recovery_latency=(recovered_at - recovery_at) if recovered_at else -1.0,
        send_errors=daemon.send_errors,
        connect_attempts=daemon.connect_attempts,
        reconnects=daemon.reconnects,
        backoff_skips=daemon.backoff_skips,
        endpoints_abandoned=daemon.endpoints_abandoned,
        records_received=sysprof.gpa.records_received,
        injected=injector.summary(),
        trace_hash=trace_digest(sysprof.gpa.query_interactions()),
    )


def run_failure_suite(config=None):
    """Both scenarios at the shared config; returns ``{scenario: result}``."""
    from dataclasses import replace

    config = config or FailureExperimentConfig()
    return {
        scenario: run_failure_experiment(replace(config, scenario=scenario))
        for scenario in SCENARIOS
    }
