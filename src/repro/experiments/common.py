"""Shared experiment plumbing."""

from dataclasses import dataclass, field


@dataclass
class Series:
    """A named series of (x, y) points for one figure."""

    name: str
    points: list = field(default_factory=list)

    def add(self, x, y):
        self.points.append((x, y))

    @property
    def xs(self):
        return [x for x, _ in self.points]

    @property
    def ys(self):
        return [y for _, y in self.points]


def mean(values):
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def mean_field(records, key):
    return mean(record[key] for record in records)


def format_table(headers, rows, title=None):
    """Render an aligned ASCII table."""
    columns = [
        [str(header)] + [_fmt(row[i]) for row in rows]
        for i, header in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(h).ljust(widths[i]) for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            "  ".join(_fmt(row[i]).ljust(widths[i]) for i in range(len(headers)))
        )
    return "\n".join(lines)


def _fmt(value):
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 100:
            return "{:.0f}".format(value)
        if magnitude >= 1:
            return "{:.2f}".format(value)
        return "{:.4f}".format(value)
    return str(value)
