"""Shared experiment plumbing."""

import hashlib
import json
import os
import pathlib
import subprocess
import time
from dataclasses import dataclass, field


def trace_digest(records):
    """A stable content hash of a GPA record trace.

    Records are JSON-serialized with sorted keys (floats keep full
    ``repr`` precision), so two traces hash equal iff they are
    byte-identical — the currency of the determinism tests, which compare
    fast-lane on/off and serial vs ``--jobs N`` runs.

    ``interaction_id`` comes from a process-global counter (unique across
    every cluster in the process), so repeated runs shift it by a
    constant while the trace is otherwise identical.  It is rebased to
    the trace's minimum id before hashing — the same normalization the
    determinism tests have always applied.
    """
    records = list(records)
    ids = [
        record["interaction_id"]
        for record in records
        if isinstance(record, dict) and "interaction_id" in record
    ]
    if ids:
        base = min(ids)
        records = [
            {
                key: (value - base if key == "interaction_id" else value)
                for key, value in record.items()
            }
            if isinstance(record, dict) and "interaction_id" in record
            else record
            for record in records
        ]
    payload = json.dumps(records, sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class Series:
    """A named series of (x, y) points for one figure."""

    name: str
    points: list = field(default_factory=list)

    def add(self, x, y):
        self.points.append((x, y))

    @property
    def xs(self):
        return [x for x, _ in self.points]

    @property
    def ys(self):
        return [y for _, y in self.points]


def mean(values):
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def mean_field(records, key):
    return mean(record[key] for record in records)


def format_table(headers, rows, title=None):
    """Render an aligned ASCII table."""
    columns = [
        [str(header)] + [_fmt(row[i]) for row in rows]
        for i, header in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(h).ljust(widths[i]) for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            "  ".join(_fmt(row[i]).ljust(widths[i]) for i in range(len(headers)))
        )
    return "\n".join(lines)


def git_commit():
    """Short git SHA of the working tree, or ``"unknown"`` outside a repo.

    Stamped into every ``BENCH_*.json`` trajectory entry (and from there
    into the provenance footers of the generated docs) so a table can be
    traced back to the run that produced it.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def record_trajectory(path, schema, payload):
    """Append one run to a ``BENCH_*.json`` trajectory.

    Same layout as the benchmark harness's ``record_run`` (src/ cannot
    import benchmarks/): an oldest-first ``trajectory`` list with the
    newest entry mirrored under ``latest``, each entry commit- and
    date-stamped.  Shared by every CLI BENCH writer — federation,
    microbench, calibrate.  Corrupt files are survivable (the history
    restarts rather than crashing the run).
    """
    path = pathlib.Path(path)
    doc = {}
    if path.exists():
        try:
            doc = json.loads(path.read_text())
        except ValueError:
            doc = {}
    trajectory = doc.get("trajectory")
    if not isinstance(trajectory, list):
        trajectory = []
    entry = dict(payload)
    entry["commit"] = git_commit()
    entry["date"] = time.strftime("%Y-%m-%d")
    trajectory.append(entry)
    path.write_text(json.dumps({
        "schema": schema,
        "latest": entry,
        "trajectory": trajectory,
    }, indent=2) + "\n")
    return entry


def _fmt(value):
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 100:
            return "{:.0f}".format(value)
        if magnitude >= 1:
            return "{:.2f}".format(value)
        return "{:.4f}".format(value)
    return str(value)
