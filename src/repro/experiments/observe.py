"""Observability experiments: CPU attribution breakdown and trace export.

These drive the :mod:`repro.observability` layer over the §3.2 NFS
storage workload:

* :func:`run_overhead_experiment` — installs the attribution ledger,
  runs the NFS experiment at one or more sampling rates, and reports the
  per-node per-category CPU breakdown.  This turns the paper's overhead
  argument (probes + analyzers + dissemination steal CPU from the
  workload) into measured numbers that *grow with the sampling rate*.
* :func:`run_trace_experiment` — additionally installs the span tracer
  and exports a Chrome trace-event JSON (one pid per node, one tid per
  simulated task) loadable in ``ui.perfetto.dev``.

Both install the observability globals around the run and always
uninstall in a ``finally`` block, so they leave the process clean for
subsequent (observability-off) runs.
"""

from dataclasses import dataclass, field, replace

from repro.observability import ledger as cpu_ledger
from repro.observability import tracer as span_tracer
from repro.observability.ledger import CATEGORIES, MONITORING_CATEGORIES
from repro.experiments.nfs_storage import NfsExperimentConfig, run_nfs_experiment


@dataclass
class OverheadPoint:
    """The attribution breakdown for one sampling-rate configuration."""

    label: str
    eviction_interval: float
    syscall_stats: bool
    breakdown: dict  # node -> {category: seconds}
    monitoring_share: dict  # node -> fraction of busy time
    trace_hash: str


@dataclass
class ObservabilityConfig:
    """Workload + sampling-rate points for the overhead experiment."""

    threads_per_client: int = 4
    nfs: NfsExperimentConfig = field(default_factory=NfsExperimentConfig)
    # (label, eviction_interval, syscall_stats) sampling-rate points:
    # the high-rate point flushes 4x as often and enables the syscall
    # LPA, which subscribes two more probe types on every node.
    points: tuple = (
        ("default-rate", 0.2, False),
        ("high-rate", 0.05, True),
    )


def smoke_config():
    """A seconds-not-minutes configuration for CI and --smoke runs."""
    return ObservabilityConfig(
        threads_per_client=2,
        nfs=NfsExperimentConfig(ops_per_thread=6, clients=1, backends=1),
    )


def run_overhead_experiment(config=None):
    """Per-node per-category CPU attribution at each sampling rate.

    Returns a list of :class:`OverheadPoint`, one per configured point.
    """
    config = config or ObservabilityConfig()
    points = []
    for label, eviction_interval, syscall_stats in config.points:
        nfs_config = replace(
            config.nfs,
            eviction_interval=eviction_interval,
            syscall_stats=syscall_stats,
        )
        ledger = cpu_ledger.install()
        try:
            result = run_nfs_experiment(config.threads_per_client, nfs_config)
            breakdown = ledger.breakdown(include_idle=False)
            shares = {
                node: ledger.monitoring_share(node) for node in ledger.nodes()
            }
        finally:
            cpu_ledger.uninstall()
        points.append(OverheadPoint(
            label=label,
            eviction_interval=eviction_interval,
            syscall_stats=syscall_stats,
            breakdown=breakdown,
            monitoring_share=shares,
            trace_hash=result.trace_hash,
        ))
    return points


def run_trace_experiment(config=None, path=None):
    """Run the NFS workload with ledger + tracer on; returns the pair
    ``(chrome_trace_dict, ledger)``.  ``path`` additionally writes the
    trace JSON to disk."""
    config = config or smoke_config()
    nfs_config = replace(config.nfs, syscall_stats=True)
    ledger = cpu_ledger.install()
    tracer = span_tracer.install()
    try:
        run_nfs_experiment(config.threads_per_client, nfs_config)
        doc = tracer.chrome_trace()
        if path is not None:
            tracer.export(path)
    finally:
        span_tracer.uninstall()
        cpu_ledger.uninstall()
    return doc, ledger


def breakdown_rows(point):
    """CLI rows ``(node, category ms..., monitoring %)`` for one point."""
    rows = []
    for node in sorted(point.breakdown):
        categories = point.breakdown[node]
        row = [node]
        row.extend(
            categories.get(c, 0.0) * 1e3 for c in CATEGORIES if c != "idle"
        )
        row.append(100.0 * point.monitoring_share.get(node, 0.0))
        rows.append(tuple(row))
    return rows


def monitoring_seconds(point, node):
    """Total monitoring CPU (probe + analyzer + dissemination) on a node."""
    categories = point.breakdown.get(node, {})
    return sum(categories.get(c, 0.0) for c in MONITORING_CATEGORIES)
