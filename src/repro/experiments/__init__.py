"""One driver per paper table or figure — the §3.1 microbenchmarks,
the §3.2 storage-service case study, the §3.3 RUBiS/DWCS comparison,
failure-injection sweeps, and the observability overhead/trace
drivers — each returning plain result records so tests and the CLI
share one code path (see DESIGN.md's experiment index)."""

from repro.experiments.calibrate import (
    CalibrationReport,
    ResourceResult,
    format_report,
    run_calibration,
)
from repro.experiments.common import (
    Series,
    format_table,
    mean,
    mean_field,
    record_trajectory,
    trace_digest,
)
from repro.experiments.microbench import (
    OverheadResult,
    iperf_experiment,
    linpack_experiment,
    overhead_range_experiment,
    run_headline_experiments,
)
from repro.experiments.runner import available_jobs, derive_seed, run_points
from repro.experiments.diagnose import (
    DiagnoseConfig,
    DiagnoseRunResult,
    run_diagnose_experiment,
)
from repro.experiments.federation import (
    FederationConfig,
    FederationPoint,
    run_federation_point,
    run_federation_sweep,
)
from repro.experiments.failures import (
    FailureExperimentConfig,
    FailureRunResult,
    run_failure_experiment,
    run_failure_suite,
)
from repro.experiments.nfs_storage import (
    NfsExperimentConfig,
    NfsRunResult,
    run_nfs_experiment,
    run_thread_sweep,
)
from repro.experiments.observe import (
    ObservabilityConfig,
    OverheadPoint,
    run_overhead_experiment,
    run_trace_experiment,
)
from repro.experiments.rubis_qos import (
    RubisExperimentConfig,
    RubisRunResult,
    monitoring_cost_experiment,
    run_comparison,
    run_rubis_experiment,
)

__all__ = [
    "CalibrationReport",
    "DiagnoseConfig",
    "DiagnoseRunResult",
    "FailureExperimentConfig",
    "FailureRunResult",
    "FederationConfig",
    "FederationPoint",
    "NfsExperimentConfig",
    "NfsRunResult",
    "ObservabilityConfig",
    "OverheadPoint",
    "OverheadResult",
    "ResourceResult",
    "RubisExperimentConfig",
    "RubisRunResult",
    "Series",
    "available_jobs",
    "derive_seed",
    "format_report",
    "format_table",
    "iperf_experiment",
    "linpack_experiment",
    "mean",
    "mean_field",
    "monitoring_cost_experiment",
    "overhead_range_experiment",
    "record_trajectory",
    "run_calibration",
    "run_comparison",
    "run_diagnose_experiment",
    "run_failure_experiment",
    "run_failure_suite",
    "run_federation_point",
    "run_federation_sweep",
    "run_headline_experiments",
    "run_nfs_experiment",
    "run_overhead_experiment",
    "run_points",
    "run_rubis_experiment",
    "run_trace_experiment",
    "run_thread_sweep",
    "trace_digest",
]
