"""Deterministic multiprocessing fan-out for experiment sweeps.

Every sweep in the paper's evaluation (monitor on/off, iozone thread
counts, link speeds, scheduler variants) is a list of *independent*
simulation runs: each point builds its own :class:`~repro.cluster.Cluster`
from an explicit seed and shares no state with its neighbours.  That
makes the sweep embarrassingly parallel — but only if parallelism cannot
change results.  This module guarantees that:

* results come back in *submission order*, never completion order;
* each worker process runs a point from the same picklable arguments the
  serial path would use, so a point's trace is byte-identical whether it
  ran in-process, or as one of ``--jobs N`` workers;
* ``jobs <= 1`` (the default) short-circuits to a plain in-process loop —
  no pool, no pickling — which keeps tests and debugging simple.

Per-point seeds come from :func:`derive_seed`, a stable CRC32 mix of the
base seed and the point's label; nothing here ever consults wall-clock
time or process ids.
"""

import multiprocessing
import os
import zlib

__all__ = ["available_jobs", "derive_seed", "run_points", "stats"]

# Parent-process sweep totals for the metrics registry (worker processes
# keep their own copies; only the coordinating process's counts matter).
_STATS = {"sweeps": 0, "points_run": 0, "parallel_sweeps": 0}


def stats():
    """Cumulative sweep-runner counters (registered as ``sysprof.runner``)."""
    return dict(_STATS)


def derive_seed(base_seed, label):
    """A deterministic per-point seed from a base seed and a point label.

    Stable across processes and Python runs (unlike ``hash()``, which is
    randomized per interpreter).  ``label`` may be any object with a
    stable ``repr`` — ints, strings, and tuples of those are typical.
    """
    digest = zlib.crc32(repr(label).encode("utf-8"))
    return (int(base_seed) * 1_000_003 + digest) % (2**31 - 1)


def available_jobs():
    """Worker processes to use when the caller asks for 'all of them'."""
    return os.cpu_count() or 1


def run_points(fn, points, jobs=1):
    """Run ``fn(point)`` for every point, returning results in order.

    ``fn`` must be a module-level (picklable) callable when ``jobs > 1``;
    each point is passed as a single argument, so bundle multi-argument
    work into tuples or dataclasses.  ``jobs=None`` means one worker per
    CPU.  With one job (or one point) everything runs in-process.
    """
    points = list(points)
    if jobs is None:
        jobs = available_jobs()
    jobs = max(1, int(jobs))
    _STATS["sweeps"] += 1
    _STATS["points_run"] += len(points)
    if jobs == 1 or len(points) <= 1:
        return [fn(point) for point in points]
    _STATS["parallel_sweeps"] += 1
    # fork (where available) inherits the imported modules, which keeps
    # worker start-up cheap; spawn is the portable fallback.
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    context = multiprocessing.get_context(method)
    with context.Pool(processes=min(jobs, len(points))) as pool:
        # Pool.map preserves submission order regardless of which worker
        # finishes first — the determinism contract of this module.
        return pool.map(fn, points, chunksize=1)
