"""§3.1 microbenchmarks: linpack, iperf, and the overhead-configuration range.

Paper anchors:

* linpack MFLOPS unchanged with SysProf enabled (no network activity);
* iperf on 1 Gbps: ~930 Mbps -> ~810 Mbps (~13% overhead);
* iperf on 100 Mbps: ~3% overhead (link-bound; we measure ~0-1%);
* "the overhead of SysProf can be varied ranging from less than 1% of the
  system resource to more than 10%" via its configurable interface.
"""

from dataclasses import dataclass

from repro.cluster import Cluster
from repro.core import SysProf, SysProfConfig
from repro.workloads.iperf import run_iperf
from repro.workloads.linpack import spawn_linpack


@dataclass
class OverheadResult:
    label: str
    baseline: float
    monitored: float
    unit: str

    @property
    def overhead_pct(self):
        if self.baseline == 0:
            return 0.0
        return 100.0 * (self.baseline - self.monitored) / self.baseline

    def row(self):
        return (self.label, self.baseline, self.monitored, self.overhead_pct)


def _cluster(bandwidth_bps, seed=42):
    cluster = Cluster(seed=seed, bandwidth_bps=bandwidth_bps)
    cluster.add_node("tx")
    cluster.add_node("rx")
    cluster.add_node("mgmt")
    return cluster


def _install(cluster, config=None):
    sysprof = SysProf(cluster, config or SysProfConfig(eviction_interval=0.1))
    sysprof.install(monitored=["tx", "rx"], gpa_node="mgmt")
    sysprof.start()
    return sysprof


def linpack_experiment(duration=2.0, seed=42):
    """linpack MFLOPS with monitoring off vs on (same node also runs the
    SysProf daemon when monitored)."""
    results = []
    for monitored in (False, True):
        cluster = _cluster(1_000_000_000, seed=seed)
        if monitored:
            _install(cluster)
        task = spawn_linpack(cluster.node("tx"), duration)
        cluster.run(until=duration + 0.5)
        results.append(task.exit_value.mflops)
    return OverheadResult("linpack (MFLOPS)", results[0], results[1], "MFLOPS")


def iperf_experiment(bandwidth_bps, duration=0.3, seed=42):
    """iperf goodput with monitoring off vs on."""
    results = []
    for monitored in (False, True):
        cluster = _cluster(bandwidth_bps, seed=seed)
        if monitored:
            _install(cluster)
        results.append(run_iperf(cluster, "tx", "rx", duration=duration).mbps)
    label = "iperf {} Mbps link".format(int(bandwidth_bps / 1e6))
    return OverheadResult(label, results[0], results[1], "Mbps")


def overhead_range_experiment(duration=0.25, seed=42):
    """Sweep monitoring configurations to span <1% .. >10% overhead.

    Demonstrates the controller's "tradeoffs between the granularity,
    overheads, and delays of runtime diagnoses".
    """
    baseline = None
    rows = []
    configurations = [
        ("off", None, None),
        ("attached, all events masked", SysProfConfig(eviction_interval=0.1), "mask-all"),
        ("class granularity", SysProfConfig(
            eviction_interval=0.1, granularity="class"), None),
        ("default (per-interaction)", SysProfConfig(eviction_interval=0.1), None),
        ("small buffers + fast eviction", SysProfConfig(
            eviction_interval=0.01, buffer_capacity=16), None),
        ("text encoding (no PBIO)", SysProfConfig(
            eviction_interval=0.01, buffer_capacity=16, text_encoding=True), None),
    ]
    for label, config, tweak in configurations:
        cluster = _cluster(1_000_000_000, seed=seed)
        if config is not None:
            sysprof = _install(cluster, config)
            if tweak == "mask-all":
                sysprof.controller.disable_events(
                    ["network", "scheduling", "syscall", "filesystem", "block"]
                )
        mbps = run_iperf(cluster, "tx", "rx", duration=duration).mbps
        if baseline is None:
            baseline = mbps
        rows.append(
            OverheadResult(label, baseline, mbps, "Mbps")
        )
    return rows
