"""§3.1 microbenchmarks: linpack, iperf, and the overhead-configuration range.

Paper anchors:

* linpack MFLOPS unchanged with SysProf enabled (no network activity);
* iperf on 1 Gbps: ~930 Mbps -> ~810 Mbps (~13% overhead);
* iperf on 100 Mbps: ~3% overhead (link-bound; we measure ~0-1%);
* "the overhead of SysProf can be varied ranging from less than 1% of the
  system resource to more than 10%" via its configurable interface.
"""

from dataclasses import dataclass
from pathlib import Path

from repro.cluster import Cluster
from repro.core import SysProf, SysProfConfig
from repro.experiments.runner import run_points
from repro.workloads.iperf import run_iperf
from repro.workloads.linpack import spawn_linpack

BENCH_PATH = Path(__file__).resolve().parents[3] / "BENCH_microbench.json"
BENCH_SCHEMA = "sysprof-repro/bench-microbench/v1"


@dataclass
class OverheadResult:
    label: str
    baseline: float
    monitored: float
    unit: str

    @property
    def overhead_pct(self):
        if self.baseline == 0:
            return 0.0
        return 100.0 * (self.baseline - self.monitored) / self.baseline

    def row(self):
        return (self.label, self.baseline, self.monitored, self.overhead_pct)


def _cluster(bandwidth_bps, seed=42):
    cluster = Cluster(seed=seed, bandwidth_bps=bandwidth_bps)
    cluster.add_node("tx")
    cluster.add_node("rx")
    cluster.add_node("mgmt")
    return cluster


def _install(cluster, config=None):
    sysprof = SysProf(cluster, config or SysProfConfig(eviction_interval=0.1))
    sysprof.install(monitored=["tx", "rx"], gpa_node="mgmt")
    sysprof.start()
    return sysprof


def linpack_experiment(duration=2.0, seed=42):
    """linpack MFLOPS with monitoring off vs on (same node also runs the
    SysProf daemon when monitored)."""
    results = []
    for monitored in (False, True):
        cluster = _cluster(1_000_000_000, seed=seed)
        if monitored:
            _install(cluster)
        task = spawn_linpack(cluster.node("tx"), duration)
        cluster.run(until=duration + 0.5)
        results.append(task.exit_value.mflops)
    return OverheadResult("linpack (MFLOPS)", results[0], results[1], "MFLOPS")


def iperf_experiment(bandwidth_bps, duration=0.3, seed=42):
    """iperf goodput with monitoring off vs on."""
    results = []
    for monitored in (False, True):
        cluster = _cluster(bandwidth_bps, seed=seed)
        if monitored:
            _install(cluster)
        results.append(run_iperf(cluster, "tx", "rx", duration=duration).mbps)
    label = "iperf {} Mbps link".format(int(bandwidth_bps / 1e6))
    return OverheadResult(label, results[0], results[1], "Mbps")


def _headline_point(args):
    """Picklable worker for one §3.1 headline benchmark."""
    kind, duration, seed = args
    if kind == "linpack":
        return linpack_experiment(duration=duration, seed=seed)
    if kind == "iperf-1g":
        return iperf_experiment(1_000_000_000, duration=duration, seed=seed)
    return iperf_experiment(100_000_000, duration=duration, seed=seed)


def run_headline_experiments(linpack_duration=1.5, iperf_duration=0.3,
                             seed=42, jobs=1):
    """The three §3.1 headline rows (linpack, iperf 1G, iperf 100M).

    Independent clusters per point, so ``jobs`` parallelism cannot change
    any number.
    """
    points = [
        ("linpack", linpack_duration, seed),
        ("iperf-1g", iperf_duration, seed),
        ("iperf-100m", iperf_duration, seed),
    ]
    return run_points(_headline_point, points, jobs=jobs)


def _overhead_point(args):
    """Picklable worker for one monitoring-configuration sweep point."""
    label, config, tweak, duration, seed = args
    cluster = _cluster(1_000_000_000, seed=seed)
    if config is not None:
        sysprof = _install(cluster, config)
        if tweak == "mask-all":
            sysprof.controller.disable_events(
                ["network", "scheduling", "syscall", "filesystem", "block"]
            )
    mbps = run_iperf(cluster, "tx", "rx", duration=duration).mbps
    return label, mbps


def overhead_range_experiment(duration=0.25, seed=42, jobs=1):
    """Sweep monitoring configurations to span <1% .. >10% overhead.

    Demonstrates the controller's "tradeoffs between the granularity,
    overheads, and delays of runtime diagnoses".  The first (unmonitored)
    point is the baseline for every row.
    """
    configurations = [
        ("off", None, None),
        ("attached, all events masked", SysProfConfig(eviction_interval=0.1), "mask-all"),
        ("class granularity", SysProfConfig(
            eviction_interval=0.1, granularity="class"), None),
        ("default (per-interaction)", SysProfConfig(eviction_interval=0.1), None),
        ("small buffers + fast eviction", SysProfConfig(
            eviction_interval=0.01, buffer_capacity=16), None),
        ("per-record dissemination", SysProfConfig(
            eviction_interval=0.01, buffer_capacity=16,
            frame_dissemination=False), None),
        ("text encoding (no PBIO)", SysProfConfig(
            eviction_interval=0.01, buffer_capacity=16, text_encoding=True), None),
    ]
    measured = run_points(
        _overhead_point,
        [
            (label, config, tweak, duration, seed)
            for label, config, tweak in configurations
        ],
        jobs=jobs,
    )
    baseline = measured[0][1]
    return [
        OverheadResult(label, baseline, mbps, "Mbps") for label, mbps in measured
    ]


def _result_dict(result):
    return {
        "label": result.label,
        "unit": result.unit,
        "baseline": round(result.baseline, 2),
        "monitored": round(result.monitored, 2),
        "overhead_pct": round(result.overhead_pct, 2),
    }


def microbench_payload(headline, sweep):
    """JSON-ready trajectory payload for ``BENCH_microbench.json``.

    ``headline`` is :func:`run_headline_experiments` output (linpack +
    the two iperf links); ``sweep`` is
    :func:`overhead_range_experiment` output.  These two tables are the
    machine-readable source for the generated sections of
    EXPERIMENTS.md (see tools/gen_docs.py); values are rounded here so
    the rendered tables are stable across regenerations from the same
    entry.
    """
    return {
        "headline": [_result_dict(result) for result in headline],
        "overhead_range": [_result_dict(result) for result in sweep],
    }
