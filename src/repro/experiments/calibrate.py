"""Self-calibrating resource-geometry sweeps (``python -m repro calibrate``).

Every capacity the simulator models — socket buffers, Kprof double
buffers, daemon drain bandwidth, link serialization, disk positioning,
per-frame receive CPU — is a number some experiment's conclusion leans
on.  This module closes the loop: for each modeled resource it runs a
generated micro-workload that sweeps *offered load* against that one
resource, measures the response curve, locates the knee automatically
(:mod:`repro.analysis.knees`), and infers the resource's geometry from
the knee alone — no peeking at the configured constant.  The inferred
value is then checked against the configured one
(:mod:`repro.ossim.costs` / :class:`~repro.core.toolkit.SysProfConfig`)
within a stated per-resource tolerance.

A calibration failure means one of three things, all worth knowing:

* the cost model changed and the docs/tables built on it are stale;
* a code path stopped charging the cost it documents (model drift);
* the sweep grid no longer brackets the knee (broken experiment).

Each sweep point builds an independent :class:`~repro.cluster.Cluster`
from a :func:`~repro.experiments.runner.derive_seed`-derived seed, so
the whole suite fans out through
:func:`~repro.experiments.runner.run_points` and a ``--jobs N`` run is
digest-identical to a serial one.

The six sweeps and what each infers:

==================  =====================================  ==============
resource            micro-workload                         inferred from
==================  =====================================  ==============
socket_buffer       sender floods a never-reading peer     knee height =
                                                           bytes accepted
kprof_buffer        burst-append with an idle daemon       loss onset x =
                                                           2 x capacity
daemon_drain        producer LPA outruns sysprofd          knee height =
                                                           drain rate
link_serialization  raw Link offered MTU frames            knee height =
                                                           delivered bps
disk_seek           paced random 4K reads                  1/knee height
                                                           - transfer
rx_frame_cpu        paced stream on a 10 Gbps fabric       mtu*8/knee
                                                           height
==================  =====================================  ==============

Results persist as a ``BENCH_calibration.json`` trajectory (see
``benchmarks/conftest.py`` for the layout) and feed the generated
``docs/calibration.md`` tables via ``tools/gen_docs.py``.
"""

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.knees import find_knee
from repro.cluster import Cluster
from repro.core.buffers import DoubleBuffer
from repro.core.encoding import FormatRegistry
from repro.core.lpa import CLASS_SUMMARY_FORMAT, LocalPerformanceAnalyzer
from repro.core.toolkit import SysProf, SysProfConfig
from repro.experiments.common import format_table
from repro.experiments.runner import derive_seed, run_points
from repro.netsim.link import Link
from repro.netsim.packet import Address, Packet
from repro.ossim.costs import DEFAULT_COSTS
from repro.sim.engine import Simulator

__all__ = [
    "BENCH_PATH",
    "BENCH_SCHEMA",
    "CalibrationReport",
    "ResourceResult",
    "RESOURCES",
    "format_report",
    "run_calibration",
]

BENCH_PATH = Path(__file__).resolve().parents[3] / "BENCH_calibration.json"
BENCH_SCHEMA = "sysprof-repro/bench-calibration/v1"

#: Scale factor on the daemon's per-record CPU (record_copy +
#: record_encode) for the drain sweep only.  At the calibrated 0.7 us
#: per record the drain knee sits near 1.4 M records/s — sweeping past
#: it would cost millions of simulated appends per point.  Scaling the
#: per-record cost up by this factor pulls the knee down to ~35 k
#: records/s (thousands of appends per point) without changing the
#: mechanism being measured; the *configured* value the sweep must
#: recover is derived from the same scaled model.
DRAIN_COST_SCALE = 40.0

_LINK_BPS = 100e6          # the 100 Mbps LAN variant from the paper
_DISK_READ_BYTES = 4096    # one page, the NFS-ish random-read unit
_SOCK_CHUNK = 16384        # flood sender's per-send size
_RX_FRAMES_PER_MSG = 40    # paced-stream message = 40 full MTU frames


# ----------------------------------------------------------------------
# sweep micro-workloads (module-level: run_points pickles them by name)
# ----------------------------------------------------------------------


def _measure_socket_buffer(x, seed, smoke):
    """Bytes the transport accepts from a sender whose peer never reads.

    Flow control grants send credits up to the receiver's kernel buffer;
    once it fills, the sender blocks forever.  y = bytes parked in the
    receive buffer at the end of the run = min(x, buffer) up to one MTU
    of credit fragmentation.
    """
    cluster = Cluster(seed=seed)
    tx = cluster.add_node("tx")
    rx = cluster.add_node("rx")
    state = {}

    def server(ctx):
        lsock = yield from ctx.listen(9000)
        sock = yield from ctx.accept(lsock)
        state["sock"] = sock
        yield from ctx.sleep(10.0)  # never recv: let the buffer fill

    def client(ctx):
        sock = yield from ctx.connect("rx", 9000)
        sent = 0
        while sent < x:
            chunk = int(min(_SOCK_CHUNK, x - sent))
            yield from ctx.send_message(sock, chunk)
            sent += chunk

    rx.spawn("sink", server)
    tx.spawn("flood", client)
    cluster.run(until=0.25 if smoke else 0.5)
    sock = state.get("sock")
    return float(sock.rx_buffered) if sock is not None else 0.0


def _measure_kprof_buffer(x, seed, smoke):
    """Records lost after burst-appending ``x`` records with no drain.

    A double buffer absorbs one full capacity, switches, and absorbs a
    second; the first overwrite happens at append 2 x capacity.  The
    loss-onset knee therefore sits at twice the configured capacity.
    """
    del smoke  # the burst is cheap at every size
    cluster = Cluster(seed=seed)
    node = cluster.add_node("n0")
    capacity = SysProfConfig().buffer_capacity
    buffer = DoubleBuffer(node.kernel, capacity, name="calibrate-buf")

    def filler(ctx):
        for i in range(int(x)):
            buffer.append(("n0", "probe", float(i)))
        yield from ctx.sleep(1e-3)

    node.spawn("filler", filler)
    cluster.run(until=0.01)
    return float(buffer.records_lost)


class _ProducerLPA(LocalPerformanceAnalyzer):
    """Buffer-only LPA the drain sweep feeds directly (no Kprof events)."""

    record_format = CLASS_SUMMARY_FORMAT

    def _subscribe(self):
        """Synthetic producer: nothing to subscribe to."""


def _scaled_drain_costs():
    return DEFAULT_COSTS.override(
        record_copy=DEFAULT_COSTS.record_copy * DRAIN_COST_SCALE,
        record_encode=DEFAULT_COSTS.record_encode * DRAIN_COST_SCALE,
    )


def _class_summary_row_bytes():
    name, fields = CLASS_SUMMARY_FORMAT
    return FormatRegistry().register(name, fields).record_size


def _drain_modeled_rate():
    """Records/second one sysprofd can publish, from the cost model.

    Per record: one buffer copy + one PBIO encode (both scaled by
    :data:`DRAIN_COST_SCALE` in this sweep), plus the transmit path for
    its share of the frame — per-byte copy/checksum and a per-MTU-packet
    share of the socket/IP/driver costs.
    """
    costs = _scaled_drain_costs()
    row = _class_summary_row_bytes()
    per_packet = costs.net_tx_sock + costs.net_tx_ip + costs.net_tx_driver
    tx_per_byte = costs.net_tx_per_byte + per_packet / costs.mtu
    per_record = costs.record_copy + costs.record_encode + row * tx_per_byte
    return 1.0 / per_record


def _measure_daemon_drain(x, seed, smoke):
    """Records/second sysprofd publishes when offered ``x`` records/s.

    A producer LPA appends class-summary rows at the offered rate (the
    appends themselves are free — the daemon's copy/encode/send CPU is
    the resource under test).  Below the knee everything appended is
    published; above it the daemon saturates the node CPU and the
    publish rate plateaus at the drain bandwidth.
    """
    cluster = Cluster(seed=seed, costs=_scaled_drain_costs())
    src = cluster.add_node("src")
    cluster.add_node("mgmt")
    # Timer evictions force-switch buffers; under a saturating producer
    # that overwrites the sibling buffer the daemon was about to drain.
    # An interval longer than the run leaves the buffer-full
    # notification path — the thing being measured — as the only driver.
    config = SysProfConfig(nodestats=False, eviction_interval=60.0)
    prof = SysProf(cluster, config)
    prof.install(monitored=["src"], gpa_node="mgmt")
    monitor = prof.monitors["src"]
    lpa = _ProducerLPA(
        src.kernel, monitor.kprof, "calibrate-producer",
        buffer_capacity=config.buffer_capacity,
    )
    monitor.daemon.add_lpa(lpa)
    lpa.start()
    prof.start()
    duration = 0.15 if smoke else 0.4
    tick = 0.002

    def producer(ctx):
        backlog = 0.0
        while True:
            now = ctx.now
            backlog += x * tick
            rows = int(backlog)
            backlog -= rows
            for _ in range(rows):
                lpa.buffer.append((
                    "src", "rpc", now, now + tick, 1,
                    2e-3, 1e-3, 5e-4, 2e-4, 1024,
                ))
            yield from ctx.sleep(tick)

    src.spawn("producer", producer)
    cluster.run(until=duration)
    return monitor.daemon.records_published / duration


def _measure_link_serialization(x, seed, smoke):
    """Wire bits/second delivered by a raw link offered ``x`` bps.

    The lowest-level sweep: no kernels, no sockets — just a
    :class:`~repro.netsim.link.Link` fed full-MTU frames at the offered
    rate.  Below the knee the link delivers what it is offered; above
    it, serialization caps throughput at the configured bandwidth.
    """
    del seed  # store-and-forward serialization is deterministic
    sim = Simulator()
    delivered = {"bytes": 0}

    def deliver(packet):
        delivered["bytes"] += packet.wire_size

    link = Link(sim, _LINK_BPS, 50e-6, deliver, name="calibrate-wire")
    src = Address("10.0.0.1", 40000)
    dst = Address("10.0.0.2", 40001)
    payload = DEFAULT_COSTS.mtu
    wire_bits = (payload + Packet.HEADER_BYTES) * 8.0
    interval = wire_bits / x
    duration = 0.2 if smoke else 0.5

    def offer():
        while True:
            link.transmit(Packet(src, dst, payload))
            yield sim.timeout(interval)

    sim.process(offer(), name="calibrate-offer")
    sim.run(until=duration)
    return delivered["bytes"] * 8.0 / duration


def _measure_disk_seek(x, seed, smoke):
    """Completed reads/second under paced far-apart 4K random reads.

    Offsets alternate between two locations a gigabyte apart, so every
    request pays the full seek + rotation positioning cost.  Completions
    track the offered rate until the media saturates at
    1 / (positioning + transfer).
    """
    cluster = Cluster(seed=seed)
    node = cluster.add_node("db", with_disk=True)
    disk = node.kernel.disk
    duration = 2.5 if smoke else 6.0
    far_apart = 1 << 30

    def issuer(ctx):
        interval = 1.0 / x
        i = 0
        while True:
            disk.submit("read", (i % 2) * far_apart, _DISK_READ_BYTES)
            i += 1
            yield from ctx.sleep(interval)

    node.spawn("issuer", issuer)
    cluster.run(until=duration)
    return disk.reads / duration


def _measure_rx_frame_cpu(x, seed, smoke):
    """Goodput of a paced stream whose bottleneck is receive-side CPU.

    On a 10 Gbps fabric the wire never binds; each arriving MTU frame
    costs the receiver a fixed slice of kernel CPU (driver + IP + TCP +
    socket copy), so goodput plateaus at mtu*8 / per-frame-cost — the
    paper's §3.1 "CPU-limited near 930 Mbps on gigabit" observation,
    rediscovered from the outside.
    """
    cluster = Cluster(seed=seed, bandwidth_bps=10e9)
    tx = cluster.add_node("tx")
    rx = cluster.add_node("rx")
    duration = 0.06 if smoke else 0.12
    message = DEFAULT_COSTS.mtu * _RX_FRAMES_PER_MSG
    state = {"bytes": 0}

    def server(ctx):
        lsock = yield from ctx.listen(5001)
        sock = yield from ctx.accept(lsock)
        while True:
            received = yield from ctx.recv_message(sock)
            if received is None:
                return
            state["bytes"] += received.size

    def client(ctx):
        sock = yield from ctx.connect("rx", 5001)
        interval = message * 8.0 / x
        next_send = ctx.now
        while ctx.now < duration:
            yield from ctx.send_message(sock, message)
            next_send += interval
            delay = next_send - ctx.now
            if delay > 0:
                yield from ctx.sleep(delay)

    rx.spawn("sink", server)
    tx.spawn("pace", client)
    cluster.run(until=duration)
    return state["bytes"] * 8.0 / duration


# ----------------------------------------------------------------------
# resource registry
# ----------------------------------------------------------------------


@dataclass
class ResourceSpec:
    """One modeled resource: grid, workload, inference, and ground truth."""

    name: str
    title: str
    unit: str
    x_label: str
    y_label: str
    measure: callable
    grid: callable          # smoke -> [x, ...]
    infer: callable         # KneePoint -> inferred geometry value
    configured: callable    # () -> the value the model is configured with
    tolerance: float        # max |inferred - configured| / configured
    note: str


def _fractions(base, fracs):
    return [base * f for f in fracs]


def _grid_socket_buffer(smoke):
    cap = DEFAULT_COSTS.sock_buffer_bytes
    fracs = (
        [0.5, 0.8, 1.0, 1.4, 2.0, 3.0] if smoke
        else [0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0, 3.0]
    )
    return [float(round(cap * f)) for f in fracs]


def _grid_kprof_buffer(smoke):
    cap = SysProfConfig().buffer_capacity
    fracs = (
        [1.0, 1.5, 1.75, 1.9, 2.0, 2.5, 3.0] if smoke
        else [1.0, 1.25, 1.5, 1.625, 1.75, 1.875, 2.0, 2.125, 2.25, 2.5, 3.0, 4.0]
    )
    return [float(round(cap * f)) for f in fracs]


def _grid_daemon_drain(smoke):
    rate = _drain_modeled_rate()
    fracs = (
        [0.4, 0.8, 1.25, 1.8] if smoke
        else [0.3, 0.5, 0.7, 0.85, 1.0, 1.15, 1.35, 1.6, 2.0]
    )
    return _fractions(rate, fracs)


def _grid_link_serialization(smoke):
    fracs = (
        [0.5, 0.8, 1.0, 1.4, 2.0] if smoke
        else [0.4, 0.6, 0.75, 0.85, 0.92, 0.97, 1.02, 1.1, 1.3, 1.6, 2.0]
    )
    return _fractions(_LINK_BPS, fracs)


def _disk_nominal_iops():
    return 1.0 / DEFAULT_COSTS.disk_op_cost(_DISK_READ_BYTES)


def _grid_disk_seek(smoke):
    fracs = (
        [0.5, 0.8, 1.05, 1.5, 2.0] if smoke
        else [0.4, 0.6, 0.75, 0.9, 1.0, 1.1, 1.3, 1.6, 2.0]
    )
    return _fractions(_disk_nominal_iops(), fracs)


def _rx_frame_configured():
    costs = DEFAULT_COSTS
    return costs.rx_packet_cost(costs.mtu) + costs.sock_copy_per_byte * costs.mtu


def _grid_rx_frame_cpu(smoke):
    cap = DEFAULT_COSTS.mtu * 8.0 / _rx_frame_configured()
    fracs = (
        [0.55, 0.85, 1.05, 1.3, 1.5] if smoke
        else [0.5, 0.65, 0.8, 0.9, 0.95, 1.02, 1.08, 1.2, 1.35, 1.5]
    )
    return _fractions(cap, fracs)


RESOURCES = {
    spec.name: spec
    for spec in [
        ResourceSpec(
            name="socket_buffer",
            title="Socket receive buffer",
            unit="bytes",
            x_label="offered burst (bytes)",
            y_label="bytes accepted",
            measure=_measure_socket_buffer,
            grid=_grid_socket_buffer,
            infer=lambda knee: knee.y,
            configured=lambda: float(DEFAULT_COSTS.sock_buffer_bytes),
            tolerance=0.10,
            note=(
                "Knee height = bytes flow control parks in a never-read "
                "receive buffer; credit granularity costs up to one MTU."
            ),
        ),
        ResourceSpec(
            name="kprof_buffer",
            title="Kprof double-buffer capacity",
            unit="records",
            x_label="burst size (records)",
            y_label="records lost",
            measure=_measure_kprof_buffer,
            grid=_grid_kprof_buffer,
            infer=lambda knee: knee.x / 2.0,
            configured=lambda: float(SysProfConfig().buffer_capacity),
            tolerance=0.10,
            note=(
                "Loss starts at 2x capacity (two buffers absorb the burst "
                "before the first overwrite); the knee sits at the last "
                "loss-free grid point, so the estimate reads low by up to "
                "one grid step."
            ),
        ),
        ResourceSpec(
            name="daemon_drain",
            title="Daemon drain bandwidth",
            unit="records/s",
            x_label="offered records/s",
            y_label="published records/s",
            measure=_measure_daemon_drain,
            grid=_grid_daemon_drain,
            infer=lambda knee: knee.y,
            configured=_drain_modeled_rate,
            tolerance=0.25,
            note=(
                "Per-record CPU scaled by {:.0f}x to keep the sweep "
                "tractable (see DRAIN_COST_SCALE); the configured rate "
                "comes from the same scaled model.  Residual partial "
                "buffers and scheduler overheads bias the measure low."
            ).format(DRAIN_COST_SCALE),
        ),
        ResourceSpec(
            name="link_serialization",
            title="Link serialization rate",
            unit="bits/s",
            x_label="offered wire bits/s",
            y_label="delivered wire bits/s",
            measure=_measure_link_serialization,
            grid=_grid_link_serialization,
            infer=lambda knee: knee.y,
            configured=lambda: _LINK_BPS,
            tolerance=0.05,
            note=(
                "Raw store-and-forward wire offered full-MTU frames; the "
                "knee height is the configured bandwidth directly."
            ),
        ),
        ResourceSpec(
            name="disk_seek",
            title="Disk positioning time",
            unit="seconds",
            x_label="offered reads/s",
            y_label="completed reads/s",
            measure=_measure_disk_seek,
            grid=_grid_disk_seek,
            infer=lambda knee: 1.0 / knee.y
            - _DISK_READ_BYTES / DEFAULT_COSTS.disk_transfer_bps,
            configured=lambda: DEFAULT_COSTS.disk_seek
            + DEFAULT_COSTS.disk_rotation,
            tolerance=0.10,
            note=(
                "Far-apart 4K random reads defeat the sequential "
                "optimization; positioning = 1/saturated-IOPS minus the "
                "4K media transfer time."
            ),
        ),
        ResourceSpec(
            name="rx_frame_cpu",
            title="Per-frame receive CPU",
            unit="seconds",
            x_label="offered bits/s",
            y_label="goodput bits/s",
            measure=_measure_rx_frame_cpu,
            grid=_grid_rx_frame_cpu,
            infer=lambda knee: DEFAULT_COSTS.mtu * 8.0 / knee.y,
            configured=_rx_frame_configured,
            tolerance=0.10,
            note=(
                "Paced stream on a 10 Gbps fabric: the wire never binds, "
                "so goodput saturates at mtu*8 / per-frame kernel CPU "
                "(driver + IP + transport + enqueue + user copy)."
            ),
        ),
    ]
}


# ----------------------------------------------------------------------
# sweep execution
# ----------------------------------------------------------------------


def _run_point(point):
    """One sweep point: ``(resource, x, seed, smoke) -> y``.

    Module-level so :func:`~repro.experiments.runner.run_points` can
    pickle it to worker processes; the spec is looked up by name so the
    payload stays a plain tuple.
    """
    name, x, seed, smoke = point
    return RESOURCES[name].measure(x, seed, smoke)


@dataclass
class ResourceResult:
    """One resource's measured curve, knee, and geometry check."""

    name: str
    title: str
    unit: str
    x_label: str
    y_label: str
    xs: list
    ys: list
    knee: object            # KneePoint or None
    inferred: float         # None when no knee was found
    configured: float
    rel_error: float        # None when no knee was found
    tolerance: float
    passed: bool
    note: str

    def to_dict(self):
        return {
            "name": self.name,
            "title": self.title,
            "unit": self.unit,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "curve": [[x, y] for x, y in zip(self.xs, self.ys)],
            "knee": self.knee.to_dict() if self.knee is not None else None,
            "inferred": self.inferred,
            "configured": self.configured,
            "rel_error": self.rel_error,
            "tolerance": self.tolerance,
            "passed": self.passed,
            "note": self.note,
        }


@dataclass
class CalibrationReport:
    """Everything one ``calibrate`` invocation measured and concluded."""

    seed: int
    smoke: bool
    resources: list = field(default_factory=list)
    digest: str = ""

    @property
    def passes(self):
        return sum(1 for r in self.resources if r.passed)

    @property
    def total(self):
        return len(self.resources)

    def resource(self, name):
        for result in self.resources:
            if result.name == name:
                return result
        raise KeyError("no such calibration resource: {}".format(name))

    def payload(self):
        """The BENCH_calibration.json entry body (commit/date added by
        the trajectory writer)."""
        return {
            "seed": self.seed,
            "smoke": self.smoke,
            "digest": self.digest,
            "passes": self.passes,
            "total": self.total,
            "resources": {r.name: r.to_dict() for r in self.resources},
        }


def _curves_digest(curves):
    """sha256 over the canonical JSON of every measured curve.

    The serial-vs-``--jobs N`` determinism check compares exactly this:
    two runs agree iff every (x, y) of every resource is bit-identical.
    """
    payload = json.dumps(curves, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_calibration(seed=23, smoke=False, jobs=1, resources=None):
    """Run the sweep suite and return a :class:`CalibrationReport`.

    ``resources`` optionally restricts the suite to a subset of
    :data:`RESOURCES` names; ``jobs`` fans the flattened point list out
    through the deterministic multiprocessing runner.
    """
    names = list(resources) if resources else list(RESOURCES)
    for name in names:
        if name not in RESOURCES:
            raise KeyError("no such calibration resource: {}".format(name))
    points = []
    for name in names:
        for x in RESOURCES[name].grid(smoke):
            points.append((name, x, derive_seed(seed, (name, x)), smoke))
    ys = run_points(_run_point, points, jobs=jobs)

    report = CalibrationReport(seed=seed, smoke=smoke)
    curves = {}
    for name in names:
        spec = RESOURCES[name]
        xs = [p[1] for p in points if p[0] == name]
        curve_ys = [y for p, y in zip(points, ys) if p[0] == name]
        curves[name] = [[x, y] for x, y in zip(xs, curve_ys)]
        knee = find_knee(xs, curve_ys, smooth=1)
        configured = spec.configured()
        if knee is None:
            inferred = rel_error = None
            passed = False
        else:
            inferred = spec.infer(knee)
            rel_error = abs(inferred - configured) / configured
            passed = rel_error <= spec.tolerance
        report.resources.append(ResourceResult(
            name=name, title=spec.title, unit=spec.unit,
            x_label=spec.x_label, y_label=spec.y_label,
            xs=xs, ys=curve_ys, knee=knee,
            inferred=inferred, configured=configured,
            rel_error=rel_error, tolerance=spec.tolerance,
            passed=passed, note=spec.note,
        ))
    report.digest = _curves_digest(curves)
    return report


def _fmt_quantity(value, unit):
    if value is None:
        return "-"
    if unit == "seconds":
        return "{:.3g} ms".format(value * 1e3)
    if unit == "bits/s":
        return "{:.1f} Mbps".format(value / 1e6)
    if value >= 10000:
        return "{:.3g}".format(value)
    return "{:.4g}".format(value)


def format_report(report):
    """Render the per-resource geometry check as an ASCII table."""
    rows = []
    for r in report.resources:
        rows.append([
            r.name,
            _fmt_quantity(r.inferred, r.unit),
            _fmt_quantity(r.configured, r.unit),
            "-" if r.rel_error is None else "{:.1%}".format(r.rel_error),
            "{:.0%}".format(r.tolerance),
            "ok" if r.passed else "FAIL",
        ])
    title = "Resource geometry calibration ({} mode, seed {}): {}/{} within tolerance".format(
        "smoke" if report.smoke else "full", report.seed,
        report.passes, report.total,
    )
    table = format_table(
        ["resource", "inferred", "configured", "error", "tol", "status"],
        rows, title=title,
    )
    return table + "\ndigest: {}".format(report.digest[:16])
