"""§3.2: bottleneck detection in the shared NFS virtual storage service.

Reproduces Figures 4 and 5: two client nodes run Iozone write/re-write
with a varying thread count against a user-level proxy backed by NFS
servers.  SysProf's interaction LPA on the proxy and backend nodes
reports, per client thread count:

* Figure 4 — average user-level vs kernel-level time of client<->proxy
  interactions at the proxy (user flat, kernel grows with traffic);
* Figure 5 — average kernel time of interactions at the back-end server
  (an order of magnitude above the proxy; no user time — nfsd is a
  kernel daemon).
"""

from dataclasses import dataclass

from repro.apps.nfs.service import VirtualStorageService
from repro.cluster import Cluster, NodeClock, synchronize
from repro.core import SysProf, SysProfConfig
from repro.experiments.common import mean_field, trace_digest
from repro.experiments.runner import run_points
from repro.ossim.costs import CostModel
from repro.workloads.iozone import IozoneConfig, IozoneResults, spawn_iozone


@dataclass
class NfsRunResult:
    threads_per_client: int
    proxy_user_ms: float
    proxy_kernel_ms: float
    backend_kernel_ms: float
    backend_user_ms: float
    backend_to_proxy_ratio: float
    client_mean_latency_ms: float
    rpc_count: int
    network_rtt_ms: float
    causal_paths: int = 0
    trace_hash: str = ""


@dataclass
class NfsExperimentConfig:
    thread_counts: tuple = (1, 2, 4, 8, 16)
    clients: int = 2
    backends: int = 2
    ops_per_thread: int = 24
    rewrite: bool = True
    pipeline: int = 2
    commit_every: int = 8
    proxy_parse_cost: float = 30e-6
    proxy_reply_cost: float = 15e-6
    disk_transfer_bps: float = 30e6
    seed: int = 9
    sim_limit: float = 400.0
    clock_skew: bool = True
    frame_dissemination: bool = True  # batched frames vs per-record blobs
    eviction_interval: float = 0.2  # buffer flush / sampling period
    syscall_stats: bool = False  # per-syscall aggregation LPA (more probes)


def build_cluster(config):
    costs = CostModel().override(disk_transfer_bps=config.disk_transfer_bps)
    cluster = Cluster(seed=config.seed, costs=costs)
    for index in range(config.clients):
        cluster.add_node("client{}".format(index + 1))
    # Per-node clock skew keeps the GPA's NTP correction honest.
    skews = (0.120, -0.045, 0.090)
    cluster.add_node(
        "proxy",
        clock=NodeClock(offset=skews[0] if config.clock_skew else 0.0),
    )
    for index in range(config.backends):
        cluster.add_node(
            "backend{}".format(index + 1),
            with_disk=True,
            clock=NodeClock(
                offset=skews[1 + index % 2] if config.clock_skew else 0.0
            ),
        )
    cluster.add_node("mgmt")
    return cluster


def run_nfs_experiment(threads_per_client, config=None):
    """One point of Figures 4/5 at the given per-client thread count."""
    config = config or NfsExperimentConfig()
    cluster = build_cluster(config)
    backend_names = ["backend{}".format(i + 1) for i in range(config.backends)]

    clock_table = synchronize(cluster, "mgmt") if config.clock_skew else None

    service = VirtualStorageService(
        cluster, "proxy", backend_names,
        proxy_parse_cost=config.proxy_parse_cost,
        proxy_reply_cost=config.proxy_reply_cost,
    ).start()

    sysprof = SysProf(
        cluster,
        SysProfConfig(
            eviction_interval=config.eviction_interval,
            syscall_stats=config.syscall_stats,
            frame_dissemination=config.frame_dissemination,
        ),
        clock_table=clock_table,
    )
    sysprof.install(monitored=["proxy"] + backend_names, gpa_node="mgmt")
    sysprof.start()

    iozone_config = IozoneConfig(
        threads=threads_per_client,
        ops_per_thread=config.ops_per_thread,
        rewrite=config.rewrite,
        pipeline=config.pipeline,
        commit_every=config.commit_every,
    )
    results = IozoneResults()
    for index in range(config.clients):
        spawn_iozone(
            cluster.node("client{}".format(index + 1)), "proxy",
            iozone_config, results,
        )
    cluster.run(until=cluster.sim.now + config.sim_limit)
    if results.threads_done != config.clients * threads_per_client:
        raise RuntimeError(
            "iozone did not finish within the simulation limit "
            "({}/{} threads)".format(
                results.threads_done, config.clients * threads_per_client
            )
        )
    sysprof.flush()

    proxy_ip = cluster.node("proxy").ip
    proxy_records = [
        record
        for record in sysprof.gpa.query_interactions(node="proxy")
        if record["server_ip"] == proxy_ip
    ]
    backend_records = []
    for name in backend_names:
        backend_records.extend(sysprof.gpa.query_interactions(node=name))

    paths = sysprof.gpa.correlate_paths("proxy", backend_names)
    proxy_kernel = mean_field(proxy_records, "kernel_time")
    backend_kernel = mean_field(backend_records, "kernel_time")
    return NfsRunResult(
        threads_per_client=threads_per_client,
        proxy_user_ms=mean_field(proxy_records, "user_time") * 1e3,
        proxy_kernel_ms=proxy_kernel * 1e3,
        backend_kernel_ms=backend_kernel * 1e3,
        backend_user_ms=mean_field(backend_records, "user_time") * 1e3,
        backend_to_proxy_ratio=(backend_kernel / proxy_kernel) if proxy_kernel else 0.0,
        client_mean_latency_ms=results.mean_latency * 1e3,
        rpc_count=results.count,
        network_rtt_ms=2.0 * cluster.one_way_latency() * 1e3,
        causal_paths=sum(1 for path in paths if path.downstream),
        trace_hash=trace_digest(sysprof.gpa.query_interactions()),
    )


def _sweep_point(args):
    """Picklable worker for one Figure-4/5 sweep point."""
    threads, config = args
    return run_nfs_experiment(threads, config)


def run_thread_sweep(config=None, jobs=1):
    """Figures 4 and 5: one :class:`NfsRunResult` per thread count.

    ``jobs > 1`` fans the sweep points out over worker processes; every
    point builds its own cluster from ``config.seed``, so results (and
    GPA trace hashes) are identical to the serial run.
    """
    config = config or NfsExperimentConfig()
    return run_points(
        _sweep_point,
        [(threads, config) for threads in config.thread_counts],
        jobs=jobs,
    )
