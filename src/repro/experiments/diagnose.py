"""Online diagnosis experiment: detect, blame, and drill into a CPU hog.

The closed-loop counterpart of ``failures.py``: instead of killing the
monitoring plane and asking how fast its absence is noticed, this run
degrades the *workload* — a kernel-band CPU hog lands on one NFS backend
mid-run — and asks whether the :class:`~repro.observability.DiagnosisEngine`
notices **online**, from streaming sketch rows alone:

1. Iozone traffic flows through the virtual storage proxy while
   per-class latency sketches ship from every monitored node.
2. At ``hog_start`` the :class:`~repro.faults.FaultInjector` spawns a
   duty-cycle hog in the backend's kernel band; nfsd now shares the
   round-robin quantum and write latency degrades.
3. The engine's latency SLO fires, blame attribution names the hogged
   backend and its dominant stage, and the controller drills down —
   shrinking only that node's eviction interval.
4. The hog expires, the percentiles drain back under the clear
   threshold, the alert resolves, and the drill-down is restored.

The run reports detection latency (SLO fire time minus hog onset),
blame correctness, the drill-down's interval change and measured
monitoring-CPU delta (from the attribution ledger), plus a dashboard
snapshot captured mid-incident.  Everything is seeded; the trace digest
makes same-config runs byte-comparable.
"""

from dataclasses import dataclass, field

from repro.cluster import Cluster
from repro.core import SysProf, SysProfConfig
from repro.experiments.common import trace_digest
from repro.faults import FaultInjector, FaultSchedule
from repro.observability import DiagnosisEngine
from repro.observability import ledger as cpu_ledger
from repro.workloads.iozone import IozoneConfig, IozoneResults, spawn_iozone


@dataclass
class DiagnoseConfig:
    """Workload, fault, and SLO tunables for one diagnosis run."""

    clients: int = 1
    backends: int = 2
    gpa_node: str = "mgmt"
    threads_per_client: int = 2
    ops_per_thread: int = 900     # enough writes to outlast the incident
    # -- fault -----------------------------------------------------------
    hog_node: str = "backend1"
    hog_start: float = 1.5
    hog_duration: float = 2.0
    hog_utilization: float = 0.95
    # -- SLO / engine ----------------------------------------------------
    # Unhogged p95 sits at 2.5-4.6ms on this workload; the kernel-band
    # hog pushes it past 16ms, so 8ms splits the two regimes cleanly.
    rule: str = "p95(nfs-write) < 8ms"
    lookback: float = 1.0         # sketch merge window per evaluation
    eval_interval: float = 0.1
    drill_factor: int = 4
    # -- monitoring plane ------------------------------------------------
    eviction_interval: float = 0.2
    sketch_alpha: float = 0.01
    stale_threshold: float = 1.0
    # -- run -------------------------------------------------------------
    seed: int = 11
    sim_limit: float = 8.0


def smoke_config():
    """A seconds-not-minutes configuration for CI and --smoke runs."""
    return DiagnoseConfig(
        ops_per_thread=350,
        hog_start=1.0,
        hog_duration=1.5,
        sim_limit=6.0,
    )


@dataclass
class DiagnoseRunResult:
    """What one diagnosis run detected, blamed, and measured."""

    hog_at: float                 # actual hog onset (simulated seconds)
    hog_duration: float
    detected: bool
    detection_latency: float      # hog onset -> SLO fire (-1 if missed)
    resolved: bool
    resolution_latency: float     # hog end -> alert resolve (-1 if never)
    blamed_node: str
    blamed_stage: str
    blame_correct: bool           # blamed_node == the hogged node
    drilled: bool
    drill_restored: bool
    interval_before: float        # blamed node's eviction interval
    interval_during: float        # ... while drilled down
    monitoring_share_during: float  # blamed node, inside the drill window
    monitoring_share_overall: float  # blamed node, whole run
    alerts_fired: int
    evaluations: int
    sketch_rows: int              # sketch records the GPA merged
    dashboard: str                # text snapshot captured mid-incident
    alert_log: list = field(default_factory=list)
    trace_hash: str = ""


def run_diagnose_experiment(config=None):
    """One hog incident end to end; returns a :class:`DiagnoseRunResult`."""
    config = config or DiagnoseConfig()
    ledger = cpu_ledger.install()
    try:
        return _run(config, ledger)
    finally:
        cpu_ledger.uninstall()


def _run(config, ledger):
    cluster = Cluster(seed=config.seed)
    for index in range(config.clients):
        cluster.add_node("client{}".format(index + 1))
    cluster.add_node("proxy")
    backend_names = ["backend{}".format(i + 1) for i in range(config.backends)]
    for name in backend_names:
        cluster.add_node(name, with_disk=True)
    cluster.add_node(config.gpa_node)

    from repro.apps.nfs.service import VirtualStorageService

    VirtualStorageService(cluster, "proxy", backend_names).start()

    sysprof = SysProf(
        cluster,
        SysProfConfig(
            eviction_interval=config.eviction_interval,
            latency_sketches=True,
            sketch_alpha=config.sketch_alpha,
            stale_threshold=config.stale_threshold,
        ),
    )
    sysprof.install(monitored=["proxy"] + backend_names, gpa_node=config.gpa_node)
    sysprof.start()

    engine = DiagnosisEngine(
        sysprof,
        rules=[config.rule],
        ledger=ledger,
        lookback=config.lookback,
        eval_interval=config.eval_interval,
        drill_factor=config.drill_factor,
    )

    injector = FaultInjector(cluster, sysprof=sysprof)
    schedule = FaultSchedule().cpu_hog(
        config.hog_start, config.hog_node, config.hog_duration,
        utilization=config.hog_utilization,
    )
    injector.arm(schedule)

    results = IozoneResults()
    iozone_config = IozoneConfig(
        threads=config.threads_per_client, ops_per_thread=config.ops_per_thread
    )
    for index in range(config.clients):
        spawn_iozone(
            cluster.node("client{}".format(index + 1)), "proxy",
            iozone_config, results,
        )

    # Dashboard snapshot mid-incident (pure callback: reads engine state,
    # charges nothing, so it cannot perturb the run).
    snapshot = {"text": ""}
    snapshot_at = config.hog_start + 0.75 * config.hog_duration

    def capture():
        snapshot["text"] = engine.dashboard(cluster.sim.now)

    cluster.sim.schedule(snapshot_at, capture)

    cluster.run(until=config.sim_limit)
    sysprof.flush()

    hog_at = injector.log[0]["at"] if injector.log else config.hog_start
    hog_end = hog_at + config.hog_duration
    alert = next(
        (a for a in engine.alerts if a.rule.text == config.rule), None
    )
    blame = alert.blame if alert is not None else {}
    episode = next(
        (e for e in engine.drill_log if e["node"] == config.hog_node), None
    )
    if episode is None and engine.drill_log:
        episode = engine.drill_log[0]

    share_during = 0.0
    if episode is not None and episode.get("busy_during"):
        share_during = episode["monitoring_during"] / episode["busy_during"]
    blamed = blame.get("node") or ""
    return DiagnoseRunResult(
        hog_at=hog_at,
        hog_duration=config.hog_duration,
        detected=alert is not None,
        detection_latency=(alert.fired_at - hog_at) if alert else -1.0,
        resolved=alert is not None and alert.resolved_at is not None,
        resolution_latency=(
            alert.resolved_at - hog_end
            if alert is not None and alert.resolved_at is not None
            else -1.0
        ),
        blamed_node=blamed,
        blamed_stage=blame.get("stage") or "",
        blame_correct=blamed == config.hog_node,
        drilled=episode is not None,
        drill_restored=episode is not None and episode["restored_at"] is not None,
        interval_before=episode["interval_before"] if episode else 0.0,
        interval_during=episode["interval_during"] if episode else 0.0,
        monitoring_share_during=share_during,
        monitoring_share_overall=ledger.monitoring_share(config.hog_node),
        alerts_fired=engine.alerts_fired,
        evaluations=engine.evaluations,
        sketch_rows=sysprof.gpa.sketches.rows_ingested,
        dashboard=snapshot["text"],
        alert_log=[a.as_dict() for a in engine.alerts],
        trace_hash=trace_digest(sysprof.gpa.query_interactions()),
    )
