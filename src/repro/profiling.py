"""Self-profiling harness: run a scenario under cProfile, see where
simulated time is spent in *host* time.

SysProf profiles the systems it monitors; this module points the same
idea at the reproduction itself.  ``python -m repro profile <scenario>``
runs one of a small set of representative workloads under
:mod:`cProfile`, then reports three things:

* a **package breakdown** — exclusive (self) time aggregated by
  top-level ``repro`` package (``sim``, ``ossim``, ``core``,
  ``observability``, ...), so a regression in the event core or the
  encoding kernels shows up as a share shift without reading raw pstats;
* a **top-N hotspot table** — per-function calls, self and cumulative
  seconds, ordered by self time;
* a **Chrome-trace JSON** of the hotspots (one ``X`` slice per
  function, laid end to end, duration = profiled self time) that loads
  in ``ui.perfetto.dev`` and passes
  :func:`repro.observability.tracer.validate_chrome_trace`.

Each scenario also defines an *events* count (engine dispatches, sketch
updates, NFS operations...) so the report carries an events/s headline
comparable to the ``benchmarks/`` numbers.  Scenarios are deterministic;
only the timings vary between runs.
"""

import cProfile
import io
import json
import pstats
import random
import time

#: Top-level ``repro`` subpackages the breakdown buckets by; everything
#: else in the tree lands in ``repro (other)`` and non-repro frames
#: (stdlib, site-packages) in ``stdlib/other``.
PACKAGES = (
    "sim", "ossim", "core", "observability", "netsim", "cluster",
    "apps", "workloads", "experiments", "faults", "analysis",
)


# ---------------------------------------------------------------------------
# Scenarios


def _scenario_microbench(smoke):
    """Pure engine churn: the waitable callback chain from the engine
    benchmark plus standing timers — exercises lanes, pool, and the
    calendar store."""
    from repro.sim.engine import Simulator, Waitable

    n_events = 20_000 if smoke else 300_000
    sim = Simulator()
    for index in range(1000):
        sim.schedule(1e6 + index, lambda: None)
    fired = [0]

    def tick(_w):
        fired[0] += 1
        if fired[0] < n_events:
            waitable = Waitable(sim)
            waitable.add_callback(tick)
            waitable.succeed()
        else:
            sim.schedule(0.5, lambda: None)  # drain through the store once

    seed = Waitable(sim)
    seed.add_callback(tick)
    seed.succeed()
    sim.run(until=5e5)
    return sim.stats()["events_scheduled"]


def _scenario_sketch(smoke):
    """Quantile-sketch ingest: batched ``update_many`` plus scalar
    ``add`` over a lognormal latency population."""
    from repro.observability.sketches import QuantileSketch

    batches = 20 if smoke else 200
    batch_size = 5_000
    rng = random.Random(7)
    values = [rng.lognormvariate(-6.0, 1.5) for _ in range(batch_size)]
    sketch = QuantileSketch(alpha=0.01)
    for _ in range(batches):
        sketch.update_many(values)
    scalar = QuantileSketch(alpha=0.01)
    for value in values:
        scalar.add(value)
    for q in (0.5, 0.95, 0.99):
        sketch.quantile(q)
    return sketch.count + scalar.count


def _scenario_nfs(smoke):
    """One small storage-service run: the full stack — cluster, kernels,
    monitoring, dissemination, GPA decode."""
    from repro.experiments import NfsExperimentConfig, run_nfs_experiment

    config = NfsExperimentConfig(
        ops_per_thread=4 if smoke else 12, sim_limit=200.0
    )
    result = run_nfs_experiment(2, config=config)
    return result.rpc_count


def _scenario_rubis(smoke):
    """One short RUBiS/DWCS run: schedulers, servlet tier, QoS streams."""
    from repro.experiments import RubisExperimentConfig, run_rubis_experiment

    if smoke:
        config = RubisExperimentConfig(
            duration=2.0, rate_per_class=60.0, sessions_per_class=10
        )
    else:
        config = RubisExperimentConfig(duration=8.0)
    result = run_rubis_experiment(scheduler="dwcs", config=config)
    return int(round(result.pre_total + result.post_total))


SCENARIOS = {
    "microbench": (_scenario_microbench, "engine callback-delivery churn"),
    "sketch": (_scenario_sketch, "quantile sketch batch ingest"),
    "nfs": (_scenario_nfs, "storage-service end-to-end run"),
    "rubis": (_scenario_rubis, "RUBiS/DWCS end-to-end run"),
}


# ---------------------------------------------------------------------------
# Aggregation


def _package_of(filename):
    """Map a frame's filename onto a breakdown bucket."""
    path = filename.replace("\\", "/")
    marker = "/repro/"
    at = path.rfind(marker)
    if at < 0:
        if path.startswith(("~", "<")):  # builtins / C calls
            return "stdlib/other"
        return "stdlib/other"
    rest = path[at + len(marker):]
    head = rest.split("/", 1)[0]
    if head in PACKAGES:
        return head
    return "repro (other)"


class ProfileReport:
    """Everything one profiled run produced."""

    __slots__ = (
        "scenario", "description", "events", "wall_seconds",
        "events_per_sec", "packages", "hotspots", "total_calls",
    )

    def __init__(self, scenario, description, events, wall_seconds,
                 packages, hotspots, total_calls):
        self.scenario = scenario
        self.description = description
        self.events = events
        self.wall_seconds = wall_seconds
        self.events_per_sec = events / wall_seconds if wall_seconds > 0 else 0.0
        self.packages = packages    # [(name, self_seconds, calls)], sorted
        self.hotspots = hotspots    # [(name, calls, self_s, cum_s)], sorted
        self.total_calls = total_calls

    def chrome_trace(self):
        """Hotspots as a Chrome trace-event document: one ``X`` slice per
        function laid end to end on a single track, plus package tracks.

        Durations are profiled self time (µs); the layout is a ranking
        visualization, not a timeline — but the document is a valid
        trace (``validate_chrome_trace`` accepts it) and loads in
        Perfetto.
        """
        events = [
            {"ph": "M", "pid": 1, "tid": 0, "ts": 0,
             "name": "process_name",
             "args": {"name": "repro profile: {}".format(self.scenario)}},
            {"ph": "M", "pid": 1, "tid": 1, "ts": 0,
             "name": "thread_name", "args": {"name": "hotspots (self time)"}},
            {"ph": "M", "pid": 1, "tid": 2, "ts": 0,
             "name": "thread_name", "args": {"name": "packages (self time)"}},
        ]
        data = []
        ts = 0.0
        for name, calls, self_s, cum_s in self.hotspots:
            dur = max(0.0, self_s) * 1e6
            data.append({
                "ph": "X", "pid": 1, "tid": 1, "ts": ts, "dur": dur,
                "name": name, "cat": "hotspot",
                "args": {"calls": calls, "self_s": round(self_s, 6),
                         "cum_s": round(cum_s, 6)},
            })
            ts += dur
        ts = 0.0
        for name, self_s, calls in self.packages:
            dur = max(0.0, self_s) * 1e6
            data.append({
                "ph": "X", "pid": 1, "tid": 2, "ts": ts, "dur": dur,
                "name": name, "cat": "package",
                "args": {"calls": calls, "self_s": round(self_s, 6)},
            })
            ts += dur
        # validate_chrome_trace wants data events globally sorted by ts.
        data.sort(key=lambda event: event["ts"])
        events.extend(data)
        return {
            "traceEvents": events,
            "otherData": {
                "scenario": self.scenario,
                "events": self.events,
                "wall_seconds": round(self.wall_seconds, 6),
                "events_per_sec": round(self.events_per_sec),
            },
        }

    def to_dict(self):
        return {
            "scenario": self.scenario,
            "description": self.description,
            "events": self.events,
            "wall_seconds": round(self.wall_seconds, 6),
            "events_per_sec": round(self.events_per_sec),
            "total_calls": self.total_calls,
            "packages": [
                {"package": name, "self_seconds": round(self_s, 6),
                 "calls": calls}
                for name, self_s, calls in self.packages
            ],
            "hotspots": [
                {"function": name, "calls": calls,
                 "self_seconds": round(self_s, 6),
                 "cum_seconds": round(cum_s, 6)}
                for name, calls, self_s, cum_s in self.hotspots
            ],
        }


def run_profile(scenario, smoke=False, top=15):
    """Run ``scenario`` under cProfile and aggregate the results.

    Returns a :class:`ProfileReport`.  ``smoke`` shrinks the workload to
    CI size; ``top`` bounds the hotspot table (the package breakdown is
    always complete).
    """
    try:
        fn, description = SCENARIOS[scenario]
    except KeyError:
        raise ValueError(
            "unknown scenario {!r} (choose from {})".format(
                scenario, ", ".join(sorted(SCENARIOS))
            )
        ) from None
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    try:
        events = fn(smoke)
    finally:
        profiler.disable()
    wall = time.perf_counter() - started

    stats = pstats.Stats(profiler, stream=io.StringIO())
    by_package = {}
    hotspots = []
    total_calls = 0
    for (filename, lineno, funcname), row in stats.stats.items():
        cc, nc, tottime, cumtime, _callers = row
        total_calls += nc
        package = _package_of(filename)
        acc = by_package.get(package)
        if acc is None:
            by_package[package] = [tottime, nc]
        else:
            acc[0] += tottime
            acc[1] += nc
        short = filename.replace("\\", "/").rsplit("/", 1)[-1]
        label = ("{}:{}:{}".format(short, lineno, funcname)
                 if lineno else funcname)
        hotspots.append((label, nc, tottime, cumtime))
    hotspots.sort(key=lambda item: (-item[2], item[0]))
    packages = sorted(
        ((name, acc[0], acc[1]) for name, acc in by_package.items()),
        key=lambda item: -item[1],
    )
    return ProfileReport(
        scenario, description, events, wall, packages,
        hotspots[:top], total_calls,
    )


def format_report(report):
    """The two tables plus the events/s headline, as printable text."""
    from repro.experiments.common import format_table

    total_self = sum(self_s for _name, self_s, _calls in report.packages)
    package_rows = [
        (name, "{:.4f}".format(self_s),
         "{:.1f}%".format(100.0 * self_s / total_self if total_self else 0.0),
         str(calls))
        for name, self_s, calls in report.packages
    ]
    hotspot_rows = [
        (name, str(calls), "{:.4f}".format(self_s), "{:.4f}".format(cum_s))
        for name, calls, self_s, cum_s in report.hotspots
    ]
    lines = [
        format_table(
            ("package", "self s", "share", "calls"), package_rows,
            title="self time by package — {} ({})".format(
                report.scenario, report.description
            ),
        ),
        "",
        format_table(
            ("function", "calls", "self s", "cum s"), hotspot_rows,
            title="top {} hotspots".format(len(report.hotspots)),
        ),
        "",
        "{} events in {:.3f}s under cProfile -> {:,.0f} events/s "
        "({} calls profiled)".format(
            report.events, report.wall_seconds, report.events_per_sec,
            report.total_calls,
        ),
    ]
    return "\n".join(lines)


def write_chrome_trace(report, path):
    """Write (validated) hotspot slices as a Chrome trace JSON file."""
    from repro.observability.tracer import validate_chrome_trace

    doc = report.chrome_trace()
    count = validate_chrome_trace(doc)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return count
