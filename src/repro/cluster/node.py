"""Nodes and the cluster builder."""

from repro.netsim.fabric import Fabric
from repro.ossim.costs import DEFAULT_COSTS
from repro.ossim.kernel import Kernel
from repro.ossim.task import BAND_USER
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.cluster.clock import NodeClock


class Node:
    """One machine: kernel + CPU + NIC (+ optional disk) + local clock."""

    def __init__(self, cluster, name, costs=None, clock=None, with_disk=False,
                 cache_pages=8192, ip=None, cpus=1, switch=None):
        self.cluster = cluster
        self.name = name
        self.costs = costs or cluster.costs
        self.clock = clock or NodeClock()
        self.kernel = Kernel(
            cluster.sim, name, self.costs, clock=self.clock, cpus=cpus
        )
        self.kernel.cluster = cluster
        nic = cluster.fabric.create_nic(ip=ip, switch=switch)
        self.kernel.attach_nic(nic)
        if with_disk:
            self.kernel.attach_disk(cache_pages=cache_pages)

    @property
    def ip(self):
        return self.kernel.ip

    @property
    def sim(self):
        return self.cluster.sim

    def spawn(self, name, fn, *args, band=BAND_USER, labels=None, affinity=None):
        return self.kernel.spawn(
            name, fn, *args, band=band, labels=labels, affinity=affinity
        )

    def local_time(self):
        return self.clock.local_time(self.sim.now)

    def crash(self, reason="crash"):
        """Hard-stop the machine: every task dies and every connection
        resets, as a power failure would.  Restart is application-level —
        respawn whatever services the experiment needs back up."""
        self.kernel.crash(reason)

    def __repr__(self):
        return "<Node {} ip={}>".format(self.name, self.ip)


class Cluster:
    """A LAN of simulated machines sharing one switch.

    >>> cluster = Cluster(seed=1)
    >>> a = cluster.add_node("alpha")
    >>> b = cluster.add_node("beta", with_disk=True)
    """

    def __init__(self, sim=None, seed=7, bandwidth_bps=1_000_000_000,
                 latency=50e-6, costs=None, loss_rate=0.0):
        self.sim = sim or Simulator()
        self.streams = RandomStreams(seed)
        self.costs = costs or DEFAULT_COSTS
        self.fabric = Fabric(
            self.sim,
            bandwidth_bps=bandwidth_bps,
            latency=latency,
            loss_rate=loss_rate,
            rng=self.streams.stream("fabric.loss") if loss_rate else None,
        )
        self.nodes = {}
        self._by_ip = {}

    def add_node(self, name, **kwargs):
        if name in self.nodes:
            raise ValueError("duplicate node name: {}".format(name))
        node = Node(self, name, **kwargs)
        self.nodes[name] = node
        self._by_ip[node.ip] = node
        return node

    def add_nodes(self, names, **kwargs):
        """Batch-create many identical nodes (shared kwargs, one loop).

        Returns the new nodes in input order.  This is the many-node
        construction path: one shared costs/config object, no per-node
        keyword re-validation.
        """
        nodes = []
        add = self.add_node
        for name in names:
            nodes.append(add(name, **kwargs))
        return nodes

    def node(self, name):
        return self.nodes[name]

    def resolve(self, name_or_ip):
        """Kernel for a node name or IP address."""
        node = self.nodes.get(name_or_ip) or self._by_ip.get(name_or_ip)
        if node is None:
            raise KeyError("unknown node or IP: {}".format(name_or_ip))
        return node.kernel

    def node_for_ip(self, ip):
        return self._by_ip[ip]

    def one_way_latency(self, src_ip=None, dst_ip=None):
        """Uplink + switch forwarding + downlink.

        With endpoint IPs the fabric computes the hop-aware path latency
        (identical to the flat constant when both share a switch); without
        them, the flat-LAN constant is returned for back-compat.
        """
        if src_ip is not None and dst_ip is not None:
            return self.fabric.path_latency(src_ip, dst_ip)
        return 2.0 * self.fabric.latency + self.fabric.switch.forward_delay

    def run(self, until=None):
        self.sim.run(until=until)

    def __repr__(self):
        return "<Cluster {} nodes>".format(len(self.nodes))
