"""Spine/leaf topology builders for many-node clusters.

The paper's testbed is two machines on one LAN; the federation work
(ROADMAP item 1) needs hundreds.  :class:`RackBuilder` stamps out one
rack — a leaf switch, M monitored nodes, and optionally a rack-local
zone-GPA node — and :func:`build_spine_leaf` composes N racks behind the
fabric's root switch (playing the spine role) plus a management node for
the root GPA.  Construction is batched: one shared kwargs dict per rack,
no per-node keyword re-validation, so a 256-node cluster builds in
milliseconds.
"""

from dataclasses import dataclass, field


@dataclass
class RackSpec:
    """Names that make up one built rack."""

    name: str
    switch_name: str
    nodes: list = field(default_factory=list)
    gpa_node: str = ""


class RackTopology:
    """A built spine/leaf cluster: rack specs plus lookup helpers."""

    def __init__(self, cluster, racks, mgmt_node=""):
        self.cluster = cluster
        self.racks = racks  # list of RackSpec
        self.mgmt_node = mgmt_node
        cluster.topology = self

    @property
    def node_names(self):
        """All monitored (non-GPA) node names across racks, rack order."""
        return [name for rack in self.racks for name in rack.nodes]

    def rack_of(self, node_name):
        for rack in self.racks:
            if node_name in rack.nodes or node_name == rack.gpa_node:
                return rack
        raise KeyError("node {} not in any rack".format(node_name))

    def stats(self):
        return {
            "racks": len(self.racks),
            "nodes": sum(len(rack.nodes) for rack in self.racks),
            "rack_gpas": sum(1 for rack in self.racks if rack.gpa_node),
            "switches": len(self.cluster.fabric.switches),
        }


class RackBuilder:
    """Stamps one rack: leaf switch + M nodes (+ optional rack GPA node)."""

    def __init__(self, cluster, name, leaf_latency=None, trunk_latency=None,
                 leaf_bandwidth_bps=None):
        self.cluster = cluster
        self.name = name
        self.switch = cluster.fabric.add_switch(
            "{}-leaf".format(name),
            bandwidth_bps=leaf_bandwidth_bps,
            latency=leaf_latency,
            trunk_latency=trunk_latency,
        )

    def build(self, node_count, with_gpa=True, node_prefix=None, **node_kwargs):
        """Create ``node_count`` nodes behind this rack's leaf switch.

        ``node_kwargs`` are shared across the whole rack (batched
        construction).  Returns a :class:`RackSpec`.
        """
        prefix = node_prefix or self.name
        names = ["{}n{}".format(prefix, i) for i in range(node_count)]
        self.cluster.add_nodes(names, switch=self.switch, **node_kwargs)
        spec = RackSpec(name=self.name, switch_name=self.switch.name,
                        nodes=names)
        if with_gpa:
            spec.gpa_node = "{}gpa".format(prefix)
            self.cluster.add_node(spec.gpa_node, switch=self.switch)
        return spec


def build_spine_leaf(cluster, racks, nodes_per_rack, with_rack_gpa=True,
                     mgmt_node="mgmt", leaf_latency=None, trunk_latency=None,
                     **node_kwargs):
    """Build an N-rack × M-node spine/leaf cluster on ``cluster``.

    The fabric's root switch is the spine; each rack hangs a leaf switch
    off it.  ``mgmt_node`` (root GPA host) attaches directly to the
    spine.  Returns a :class:`RackTopology`.
    """
    specs = []
    for r in range(racks):
        builder = RackBuilder(
            cluster, "r{}".format(r),
            leaf_latency=leaf_latency, trunk_latency=trunk_latency,
        )
        specs.append(builder.build(nodes_per_rack, with_gpa=with_rack_gpa,
                                   **node_kwargs))
    mgmt = ""
    if mgmt_node:
        cluster.add_node(mgmt_node)
        mgmt = mgmt_node
    return RackTopology(cluster, specs, mgmt_node=mgmt)
