"""Multi-node cluster assembly — the simulated stand-in for the
paper's physical testbed (§3): ``Node`` machines built from an ossim
kernel plus a netsim NIC, per-node clocks with drift and offset, and
an NTP-style synchronization protocol bounding the skew the GPA must
tolerate when correlating cross-node timestamps."""

from repro.cluster.clock import ClockTable, NodeClock
from repro.cluster.node import Cluster, Node
from repro.cluster.ntp import NTP_PORT, NtpSync, synchronize
from repro.cluster.topology import (
    RackBuilder,
    RackSpec,
    RackTopology,
    build_spine_leaf,
)

__all__ = [
    "ClockTable",
    "Cluster",
    "NTP_PORT",
    "Node",
    "NodeClock",
    "NtpSync",
    "RackBuilder",
    "RackSpec",
    "RackTopology",
    "build_spine_leaf",
    "synchronize",
]
