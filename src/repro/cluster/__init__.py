"""Multi-node cluster assembly: nodes, clocks, and NTP synchronization."""

from repro.cluster.clock import ClockTable, NodeClock
from repro.cluster.node import Cluster, Node
from repro.cluster.ntp import NTP_PORT, NtpSync, synchronize

__all__ = [
    "ClockTable",
    "Cluster",
    "NTP_PORT",
    "Node",
    "NodeClock",
    "NtpSync",
    "synchronize",
]
