"""Per-node clocks with offset and drift.

SysProf timestamps events with the *node-local* clock; the Global
Performance Analyzer must correlate logs across nodes using NTP-style
corrections (paper §2, GPA: "it correlates ... NTP timestamps in the
logs from different nodes").  Simulating skewed clocks keeps that part
of the system honest.
"""


class NodeClock:
    """local_time = sim_time * (1 + drift) + offset."""

    __slots__ = ("offset", "drift")

    def __init__(self, offset=0.0, drift=0.0):
        if drift <= -1.0:
            raise ValueError("drift must be > -1")
        self.offset = offset
        self.drift = drift

    def local_time(self, sim_now):
        return sim_now * (1.0 + self.drift) + self.offset

    def sim_time(self, local):
        return (local - self.offset) / (1.0 + self.drift)

    def __repr__(self):
        return "<NodeClock offset={:.6g} drift={:.3g}>".format(self.offset, self.drift)


class ClockTable:
    """Estimated offsets of every node's clock relative to a reference node.

    Produced by :class:`repro.cluster.ntp.NtpSync`; consumed by the GPA to
    translate node-local event timestamps onto one common timescale.
    """

    def __init__(self, reference):
        self.reference = reference
        self._offsets = {reference: 0.0}
        # Set by ntp.synchronize when a deadline expired mid-pass.
        self.partial = False
        self.missing = ()

    def set_offset(self, node_name, offset):
        self._offsets[node_name] = offset

    def offset(self, node_name):
        return self._offsets[node_name]

    def known(self, node_name):
        return node_name in self._offsets

    def to_reference(self, node_name, local_ts):
        """Translate a node-local timestamp to the reference timescale."""
        return local_ts - self._offsets[node_name]

    def __repr__(self):
        return "<ClockTable ref={} nodes={}>".format(
            self.reference, sorted(self._offsets)
        )
