"""NTP-style clock synchronization over the simulated network.

Runs a real two-way exchange through the socket stack (so sync accuracy
degrades with network load, as in life).  The classic offset estimator is
used: for client send/receive local times ``t0``/``t3`` and server
receive/reply local times ``T1``/``T2``,

    theta = ((T1 - t0) + (T2 - t3)) / 2

estimates how far the server's clock runs ahead of the client's.
"""

import warnings

from repro.sim.errors import SimError

NTP_PORT = 123
_PROBE_BYTES = 90  # NTPv4 packet size


class NtpSyncTimeout(SimError):
    """A sync pass hit its deadline before measuring every target.

    The ``table`` attribute carries the partial :class:`ClockTable`
    (``table.missing`` lists the unmeasured nodes) so callers that can
    live with a partial view may catch and keep it.
    """

    def __init__(self, message, table):
        super().__init__(message)
        self.table = table


class NtpSync:
    """Measure clock offsets of all nodes relative to a reference node."""

    def __init__(self, cluster, reference_name, rounds=4):
        self.cluster = cluster
        self.reference_name = reference_name
        self.rounds = rounds
        self._servers = []

    def start_servers(self):
        """Start an ntpd responder task on every non-reference node."""
        for name, node in self.cluster.nodes.items():
            if name == self.reference_name:
                continue
            self._servers.append(node.spawn("ntpd", self._ntpd))

    def _ntpd(self, ctx):
        # Accept loop only; each connection gets its own handler task so
        # concurrent sync clients are served in parallel (the old nested
        # recv loop made a second client wait for the first to hang up).
        lsock = yield from ctx.listen(NTP_PORT)
        while True:
            sock = yield from ctx.accept(lsock)
            ctx.spawn("ntpd-conn", self._ntpd_conn, sock)

    def _ntpd_conn(self, ctx, sock):
        while True:
            request = yield from ctx.recv_message(sock)
            if request is None:
                break
            receive_ts = ctx.kernel.clock.local_time(ctx.now)
            # Trivial server-side processing before the reply is formed.
            yield from ctx.compute(2e-6)
            transmit_ts = ctx.kernel.clock.local_time(ctx.now)
            yield from ctx.send_message(
                sock,
                _PROBE_BYTES,
                kind="ntp-reply",
                meta={"t1": receive_ts, "t2": transmit_ts},
            )

    def measure(self, clock_table, on_done=None):
        """Spawn the measurement task on the reference node.

        Offsets land in ``clock_table`` as exchanges complete; run the
        simulator until the returned task finishes.
        """
        reference = self.cluster.node(self.reference_name)
        targets = [n for n in self.cluster.nodes if n != self.reference_name]
        return reference.spawn(
            "ntp-sync", self._client, targets, clock_table, on_done
        )

    def _client(self, ctx, targets, clock_table, on_done):
        clock = ctx.kernel.clock
        for target in targets:
            sock = yield from ctx.connect(target, NTP_PORT)
            thetas = []
            for _ in range(self.rounds):
                t0 = clock.local_time(ctx.now)
                yield from ctx.send_message(sock, _PROBE_BYTES, kind="ntp-request")
                reply = yield from ctx.recv_message(sock)
                t3 = clock.local_time(ctx.now)
                t1 = reply.meta["t1"]
                t2 = reply.meta["t2"]
                thetas.append(((t1 - t0) + (t2 - t3)) / 2.0)
            yield from ctx.close(sock)
            # Median is robust to one queue-delayed exchange.
            thetas.sort()
            mid = len(thetas) // 2
            if len(thetas) % 2:
                estimate = thetas[mid]
            else:
                estimate = 0.5 * (thetas[mid - 1] + thetas[mid])
            clock_table.set_offset(target, estimate)
        if on_done is not None:
            on_done(clock_table)
        return clock_table


def synchronize(cluster, reference_name, rounds=4, deadline=5.0, strict=True):
    """Convenience: run a full sync pass and return the :class:`ClockTable`.

    Must be called while the simulation is otherwise quiet (e.g. before
    the workload starts); advances simulated time.

    If the deadline expires (or the exchange wedges, e.g. a target behind
    a partition) before every target is measured, ``strict=True`` raises
    :class:`NtpSyncTimeout`; ``strict=False`` warns and returns the
    partial table with ``table.partial`` set and ``table.missing``
    naming the unmeasured nodes — previously the partial table came back
    silently, indistinguishable from a complete one.
    """
    from repro.cluster.clock import ClockTable

    table = ClockTable(reference_name)
    sync = NtpSync(cluster, reference_name, rounds=rounds)
    sync.start_servers()
    task = sync.measure(table)
    try:
        cluster.sim.run_until_triggered(task.proc, limit=cluster.sim.now + deadline)
    except SimError:
        task.kill("ntp-deadline")
        targets = [n for n in cluster.nodes if n != reference_name]
        missing = tuple(n for n in targets if not table.known(n))
        table.partial = bool(missing)
        table.missing = missing
        if missing:
            message = "ntp sync deadline ({}s) expired with {} unmeasured".format(
                deadline, ", ".join(missing)
            )
            if strict:
                raise NtpSyncTimeout(message, table) from None
            warnings.warn(message, stacklevel=2)
    return table
