"""Small time-series helpers for throughput/latency plots."""


def bin_events(timestamps, bin_width=1.0, t0=None, t1=None):
    """Count events per bin: returns sorted [(bin_start, count)]."""
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    bins = {}
    for ts in timestamps:
        if t0 is not None and ts < t0:
            continue
        if t1 is not None and ts >= t1:
            continue
        start = int(ts / bin_width) * bin_width
        bins[start] = bins.get(start, 0) + 1
    return sorted(bins.items())


def rate_series(timestamps, bin_width=1.0, t0=None, t1=None):
    """Events/second per bin: [(bin_start, rate)]."""
    return [
        (start, count / bin_width)
        for start, count in bin_events(timestamps, bin_width, t0, t1)
    ]


def moving_average(series, window=3):
    """Centered moving average over [(x, y)] points."""
    if window < 1:
        raise ValueError("window must be >= 1")
    ys = [y for _, y in series]
    smoothed = []
    half = window // 2
    for i, (x, _) in enumerate(series):
        lo = max(0, i - half)
        hi = min(len(ys), i + half + 1)
        smoothed.append((x, sum(ys[lo:hi]) / (hi - lo)))
    return smoothed


def ascii_plot(series_map, width=60, height=12, title=None):
    """Rough ASCII chart of {name: [(x, y)]} series (for reports/examples)."""
    points = [pt for series in series_map.values() for pt in series]
    if not points:
        return "(no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = 0.0, max(ys) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "o+x*#@"
    for index, (name, series) in enumerate(sorted(series_map.items())):
        mark = markers[index % len(markers)]
        for x, y in series:
            col = 0 if x_hi == x_lo else int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = 0 if y_hi == y_lo else int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = mark
    lines = []
    if title:
        lines.append(title)
    lines.append("y: 0 .. {:.1f}".format(y_hi))
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append("x: {:.1f} .. {:.1f}".format(x_lo, x_hi))
    legend = "  ".join(
        "{}={}".format(markers[i % len(markers)], name)
        for i, name in enumerate(sorted(series_map))
    )
    lines.append(legend)
    return "\n".join(lines)
