"""Automatic bottleneck diagnosis from GPA data.

The paper's §3.2 use case: "SysProf can be used to identify the
bottleneck resources.  It not only tells the delay incurred in request
processing on a particular node but also gives fine details like whether
the amount of time was spent in user-level or kernel-level, the number
of outstanding interactions and so on."
"""

from dataclasses import dataclass, field

from repro.experiments.common import mean_field


@dataclass
class NodeDiagnosis:
    node: str
    interaction_count: int
    mean_total_ms: float
    mean_kernel_wait_ms: float
    mean_kernel_cpu_ms: float
    mean_user_ms: float
    mean_io_blocked_ms: float
    dominant_component: str

    @property
    def mean_local_ms(self):
        """Time actually spent at this node (excludes waiting on other
        nodes, which interposers like the NFS proxy accumulate as
        io-blocked time)."""
        return (
            self.mean_kernel_wait_ms + self.mean_kernel_cpu_ms + self.mean_user_ms
        )

    def describe(self):
        return (
            "{node}: {count} interactions, mean {total:.2f} ms "
            "(kernel-wait {wait:.2f}, kernel-cpu {cpu:.2f}, user {user:.2f}, "
            "io-blocked {io:.2f}); dominated by {dom}".format(
                node=self.node,
                count=self.interaction_count,
                total=self.mean_total_ms,
                wait=self.mean_kernel_wait_ms,
                cpu=self.mean_kernel_cpu_ms,
                user=self.mean_user_ms,
                io=self.mean_io_blocked_ms,
                dom=self.dominant_component,
            )
        )


@dataclass
class BottleneckReport:
    nodes: list = field(default_factory=list)
    bottleneck: str = ""
    reason: str = ""

    def describe(self):
        lines = [node.describe() for node in self.nodes]
        lines.append("bottleneck: {} ({})".format(self.bottleneck, self.reason))
        return "\n".join(lines)


def _summary_diagnosis(gpa, node, since=None):
    """Class-summary fallback for tiers without raw interaction records.

    A federated root only sees condensed ``sysprof.class_summary`` rows
    for zone pseudo-nodes, so residency composition is reconstructed from
    count-weighted window means.  The summary format carries no io-blocked
    component; kernel CPU is recovered as kernel_time − kernel_wait.
    """
    rows = [
        record for record in gpa.class_summaries
        if record["node"] == node
        and (since is None or record["window_end"] >= since)
    ]
    total = sum(record["count"] for record in rows)
    if not total:
        return None

    def wmean(field_name):
        return sum(r[field_name] * r["count"] for r in rows) / total

    wait = wmean("mean_kernel_wait")
    components = {
        "kernel-wait": wait,
        "kernel-cpu": max(0.0, wmean("mean_kernel_time") - wait),
        "user": wmean("mean_user_time"),
        "io-blocked": 0.0,
    }
    dominant = max(components, key=lambda key: components[key])
    return NodeDiagnosis(
        node=node,
        interaction_count=total,
        mean_total_ms=wmean("mean_latency") * 1e3,
        mean_kernel_wait_ms=components["kernel-wait"] * 1e3,
        mean_kernel_cpu_ms=components["kernel-cpu"] * 1e3,
        mean_user_ms=components["user"] * 1e3,
        mean_io_blocked_ms=0.0,
        dominant_component=dominant,
    )


def diagnose_node(gpa, node, since=None):
    """Summarize interaction residency composition at one node.

    ``since`` restricts to interactions starting at or after that
    reference time — the online diagnosis engine's recent-window blame.
    Falls back to count-weighted class summaries when the tier holds no
    raw interaction records for the node (federated pseudo-nodes).
    """
    records = gpa.query_interactions(node=node, since=since)
    if not records:
        fallback = _summary_diagnosis(gpa, node, since=since)
        if fallback is not None:
            return fallback
        return NodeDiagnosis(node, 0, 0.0, 0.0, 0.0, 0.0, 0.0, "no-data")
    components = {
        "kernel-wait": mean_field(records, "kernel_wait"),
        "kernel-cpu": mean_field(records, "kernel_cpu"),
        "user": mean_field(records, "user_time"),
        "io-blocked": mean_field(records, "io_blocked"),
    }
    dominant = max(components, key=lambda key: components[key])
    return NodeDiagnosis(
        node=node,
        interaction_count=len(records),
        mean_total_ms=mean_field(records, "total_latency") * 1e3,
        mean_kernel_wait_ms=components["kernel-wait"] * 1e3,
        mean_kernel_cpu_ms=components["kernel-cpu"] * 1e3,
        mean_user_ms=components["user"] * 1e3,
        mean_io_blocked_ms=components["io-blocked"] * 1e3,
        dominant_component=dominant,
    )


def find_bottleneck(gpa, nodes, since=None):
    """Rank nodes by mean interaction residency; name the worst offender.

    Nodes with no observed interactions are reported but never win.
    ``since`` is forwarded to :func:`diagnose_node`.
    """
    diagnoses = [diagnose_node(gpa, node, since=since) for node in nodes]
    candidates = [d for d in diagnoses if d.interaction_count > 0]
    report = BottleneckReport(nodes=diagnoses)
    if not candidates:
        report.bottleneck = "unknown"
        report.reason = "no interaction records received"
        return report
    # Rank by time spent *at* the node: an interposer's total residency
    # includes waiting on its backends (io-blocked), which must not make
    # it the culprit.
    worst = max(candidates, key=lambda d: d.mean_local_ms)
    report.bottleneck = worst.node
    report.reason = (
        "highest mean local residency ({:.2f} ms of {:.2f} ms total), "
        "dominated by {}".format(
            worst.mean_local_ms, worst.mean_total_ms, worst.dominant_component
        )
    )
    return report
