"""Knee/cliff detection for calibration sweep curves.

A resource sweep offers increasing load ``x`` against one modeled
resource and measures a response ``y`` (delivered throughput, records
lost, completed IOPS).  Every modeled resource produces one of two
shapes:

* **plateau** — ``y`` tracks ``x`` until the resource saturates, then
  flattens (link serialization, daemon drain bandwidth, CPU-bound
  receive paths, socket buffers);
* **onset** — ``y`` stays at zero until a capacity is exceeded, then
  grows (double-buffer overwrite loss).

Both put the interesting point — the *knee* — where the curve bends
away from a straight line.  The primary detector here is the
chord-distance ("kneedle"-style) method: normalize the curve to the
unit square, draw the chord from the first to the last point, and take
the point of maximum vertical deviation from that chord.  Concave
plateau curves deviate above the chord, convex onset curves below it;
using the absolute deviation handles both without a direction hint.  A
maximum-second-difference detector is provided as a cross-check
(``method="secdiff"``).

A *linear* curve deviates nowhere, so its maximum deviation falls under
``min_strength`` and :func:`find_knee` returns ``None`` rather than a
spurious point — calibration treats "no knee" as "the sweep never
reached the resource's capacity", which is a test failure, not a fit.

:func:`find_knees` extends the same idea to multi-knee (staircase)
curves by taking every local maximum of the deviation curve, strongest
first, with non-maximum suppression in normalized ``x``.
"""

from dataclasses import dataclass

__all__ = ["KneePoint", "find_knee", "find_knees", "smooth_curve"]


@dataclass
class KneePoint:
    """One detected knee: curve coordinates plus detection metadata.

    ``strength`` is the normalized deviation from the first-to-last
    chord at the knee (0 = perfectly linear, 0.5 = a right-angle bend
    at mid-curve); comparable across curves regardless of units.
    """

    x: float
    y: float
    index: int
    strength: float
    method: str

    def to_dict(self):
        return {
            "x": self.x,
            "y": self.y,
            "index": self.index,
            "strength": self.strength,
            "method": self.method,
        }


def smooth_curve(ys, window=3):
    """Centered moving average with shrinking edge windows.

    Noise on a measured sweep (scheduling jitter, partial last windows)
    is small but can shift the argmax of the deviation curve by a grid
    point; a light smoothing pass stabilizes it.  ``window <= 1``
    returns the input unchanged.
    """
    ys = list(ys)
    if window <= 1 or len(ys) < 3:
        return ys
    half = window // 2
    out = []
    for i in range(len(ys)):
        lo = max(0, i - half)
        hi = min(len(ys), i + half + 1)
        out.append(sum(ys[lo:hi]) / (hi - lo))
    return out


def _normalize(values):
    lo = min(values)
    span = max(values) - lo
    if span <= 0:
        return None
    return [(value - lo) / span for value in values]


def _deviations(xs, ys, smooth):
    """Per-point |vertical deviation| from the first-to-last chord of the
    unit-square-normalized curve, or ``None`` for degenerate input."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 3:
        return None
    xn = _normalize(xs)
    yn = _normalize(smooth_curve(ys, window=smooth))
    if xn is None or yn is None:
        return None  # zero x-span or flat y: no knee to find
    return [abs(yn[i] - xn[i]) for i in range(len(xs))]


def find_knee(xs, ys, min_strength=0.05, smooth=1, method="chord"):
    """Locate the single strongest knee of a sweep curve.

    Returns a :class:`KneePoint` or ``None`` when the curve is too
    short, flat, or within ``min_strength`` of a straight line (the
    honest "no knee" answer for a sweep that never saturated its
    resource).
    """
    xs, ys = list(xs), list(ys)
    if method == "secdiff":
        return _find_knee_secdiff(xs, ys, min_strength, smooth)
    if method != "chord":
        raise ValueError("unknown knee method: {!r}".format(method))
    deviations = _deviations(xs, ys, smooth)
    if deviations is None:
        return None
    index = max(range(len(deviations)), key=lambda i: deviations[i])
    strength = deviations[index]
    if strength < min_strength:
        return None
    return KneePoint(xs[index], ys[index], index, strength, "chord")


def _find_knee_secdiff(xs, ys, min_strength, smooth):
    """Cross-check detector: maximum |second difference| of the
    normalized curve (interior points only).  Strength is scaled to be
    roughly comparable with the chord method's."""
    if len(xs) < 3:
        return None
    yn = _normalize(smooth_curve(ys, window=smooth))
    xn = _normalize(xs)
    if xn is None or yn is None:
        return None
    curvature = [0.0]
    for i in range(1, len(yn) - 1):
        curvature.append(abs(yn[i + 1] - 2.0 * yn[i] + yn[i - 1]))
    curvature.append(0.0)
    index = max(range(len(curvature)), key=lambda i: curvature[i])
    # A raw second difference shrinks with grid density; dividing by the
    # mean normalized step recovers the slope *change* at the bend.  A
    # right-angle bend changes slope by 2 in the unit square, so /4 maps
    # it onto the chord method's 0.5-for-a-right-angle strength scale.
    step = 1.0 / (len(yn) - 1)
    strength = curvature[index] / step / 4.0
    if strength < min_strength:
        return None
    return KneePoint(xs[index], ys[index], index, strength, "secdiff")


def find_knees(xs, ys, min_strength=0.05, min_separation=0.15, smooth=1):
    """Every local maximum of the chord deviation, strongest first.

    ``min_separation`` suppresses secondary detections within that
    fraction of the normalized x-range of an already-accepted knee, so
    a noisy shoulder does not double-report.  A staircase curve (two
    capacities in series) reports one knee per step.
    """
    xs, ys = list(xs), list(ys)
    deviations = _deviations(xs, ys, smooth)
    if deviations is None:
        return []
    xn = _normalize(xs)
    last = len(deviations) - 1
    candidates = [
        i for i in range(len(deviations))
        if deviations[i] >= min_strength
        and (i == 0 or deviations[i] >= deviations[i - 1])
        and (i == last or deviations[i] > deviations[i + 1])
    ]
    candidates.sort(key=lambda i: deviations[i], reverse=True)
    accepted = []
    for i in candidates:
        if any(abs(xn[i] - xn[j]) < min_separation for j in accepted):
            continue
        accepted.append(i)
    return [
        KneePoint(xs[i], ys[i], i, deviations[i], "chord") for i in accepted
    ]
