"""Plain-ASCII curve rendering shared by reports, docs, and the dashboard.

Two renderers, both pure functions of their inputs (no wall clock, no
randomness) so generated docs stay byte-stable across regenerations:

* :func:`sparkline` — one line of height-coded marks for a metric's
  recent history; the live dashboard's per-metric history column.
* :func:`ascii_curve` — a small multi-line x/y chart with axis labels
  and an optional knee marker; ``tools/gen_docs.py`` embeds one per
  calibration resource in ``docs/calibration.md``.

The older :func:`repro.analysis.timeseries.ascii_plot` draws multiple
named series on a shared grid; these two trade generality for a tight,
deterministic layout that reads well inside markdown code fences and
80-column terminal dashboards.
"""

#: Height ramp for :func:`sparkline`, lowest to highest.  Pure ASCII on
#: purpose: the dashboard and the generated docs must render anywhere.
SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values, lo=None, hi=None, width=None):
    """Render ``values`` as one string of height-coded ASCII marks.

    ``lo``/``hi`` pin the scale (defaults: the data's own min/max, so a
    flat series renders as a flat mid-level line rather than noise).
    ``width`` keeps only the trailing ``width`` values.  Returns ``""``
    for an empty series.
    """
    values = [float(v) for v in values]
    if width is not None and width >= 0:
        values = values[-width:] if width else []
    if not values:
        return ""
    lo = min(values) if lo is None else float(lo)
    hi = max(values) if hi is None else float(hi)
    span = hi - lo
    top = len(SPARK_LEVELS) - 1
    if span <= 0.0:
        # Flat (or degenerate bounds): draw mid-scale so "no change" is
        # visually distinct from both "empty" and "pinned at zero".
        return SPARK_LEVELS[len(SPARK_LEVELS) // 2] * len(values)
    marks = []
    for value in values:
        frac = (value - lo) / span
        frac = 0.0 if frac < 0.0 else (1.0 if frac > 1.0 else frac)
        marks.append(SPARK_LEVELS[int(round(frac * top))])
    return "".join(marks)


def ascii_curve(xs, ys, width=64, height=10, x_label="x", y_label="y",
                mark="*", knee_x=None):
    """Render one (xs, ys) curve as a bordered ASCII chart.

    The y-axis is annotated with its max/min, the x-axis with its
    bounds; ``knee_x`` (if given) draws a ``|`` column at the nearest
    plotted x so calibration docs can show the detected knee in-line
    with the curve.  Points are connected by vertical fill between
    adjacent samples to keep steep response cliffs visible at low
    resolutions.  Returns a newline-joined string.
    """
    points = [(float(x), float(y)) for x, y in zip(xs, ys)]
    if not points:
        return "(no data)"
    points.sort(key=lambda pt: pt[0])
    x_lo, x_hi = points[0][0], points[-1][0]
    y_values = [y for _, y in points]
    y_lo, y_hi = min(y_values), max(y_values)
    x_span = x_hi - x_lo
    y_span = y_hi - y_lo
    grid = [[" "] * width for _ in range(height)]

    def col_of(x):
        if x_span <= 0.0:
            return 0
        return int(round((x - x_lo) / x_span * (width - 1)))

    def row_of(y):
        if y_span <= 0.0:
            return height // 2
        return int(round((y - y_lo) / y_span * (height - 1)))

    if knee_x is not None:
        knee_col = col_of(min(max(float(knee_x), x_lo), x_hi))
        for row in range(height):
            grid[row][knee_col] = "|"
    prev_row = None
    for x, y in points:
        col = col_of(x)
        row = row_of(y)
        if prev_row is not None and abs(row - prev_row) > 1:
            step = 1 if row > prev_row else -1
            for fill in range(prev_row + step, row, step):
                if grid[height - 1 - fill][col] == " ":
                    grid[height - 1 - fill][col] = "."
        grid[height - 1 - row][col] = mark
        prev_row = row
    lines = ["{} max {:g}".format(y_label, y_hi)]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    footer = "{}: {:g} .. {:g}".format(x_label, x_lo, x_hi)
    if knee_x is not None:
        footer += "   | knee @ {:g}".format(float(knee_x))
    lines.append(footer)
    return "\n".join(lines)
