"""Offline workload modeling from GPA dumps.

The paper's GPA "periodically dumps its information onto local disk,
which can be used later for purposes of auditing, workload prediction,
and system modeling".  This module closes that loop: load a dump, fit
arrival and service models per request class, and answer capacity
questions with an M/G/1 approximation.
"""

import json
import math
from dataclasses import dataclass

from repro.sim.stats import percentile


def load_dump(path):
    """Parse a GPA JSON-lines dump into {type: [records]}."""
    records = {}
    with open(path, "r", encoding="utf-8") as dump:
        for line in dump:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            records.setdefault(record.get("type", "unknown"), []).append(record)
    return records


@dataclass
class ArrivalModel:
    """Fitted arrival process for one request class."""

    count: int
    span: float
    rate: float
    mean_interarrival: float
    cv: float  # coefficient of variation; ~1 for Poisson

    @classmethod
    def fit(cls, timestamps):
        timestamps = sorted(timestamps)
        if len(timestamps) < 2:
            raise ValueError("need at least two arrivals to fit a model")
        gaps = [b - a for a, b in zip(timestamps, timestamps[1:])]
        span = timestamps[-1] - timestamps[0]
        mean_gap = sum(gaps) / len(gaps)
        if mean_gap <= 0:
            raise ValueError("arrivals are not strictly ordered in time")
        variance = sum((gap - mean_gap) ** 2 for gap in gaps) / max(1, len(gaps) - 1)
        return cls(
            count=len(timestamps),
            span=span,
            rate=1.0 / mean_gap,
            mean_interarrival=mean_gap,
            cv=math.sqrt(variance) / mean_gap,
        )

    @property
    def looks_poisson(self):
        """Exponential interarrivals have cv == 1 (within sampling noise)."""
        return 0.7 <= self.cv <= 1.3


@dataclass
class ServiceModel:
    """Fitted per-request service demand (CPU actually consumed)."""

    count: int
    mean: float
    cv: float
    p50: float
    p95: float
    p99: float

    @classmethod
    def fit(cls, demands):
        demands = [d for d in demands if d >= 0]
        if not demands:
            raise ValueError("no service demands to fit")
        mean = sum(demands) / len(demands)
        if len(demands) > 1 and mean > 0:
            variance = sum((d - mean) ** 2 for d in demands) / (len(demands) - 1)
            cv = math.sqrt(variance) / mean
        else:
            cv = 0.0
        return cls(
            count=len(demands),
            mean=mean,
            cv=cv,
            p50=percentile(demands, 50),
            p95=percentile(demands, 95),
            p99=percentile(demands, 99),
        )


def fit_class_models(interactions, service_fields=("user_time", "kernel_cpu")):
    """Per-request-class (ArrivalModel, ServiceModel) from interaction records."""
    by_class = {}
    for record in interactions:
        by_class.setdefault(record["request_class"], []).append(record)
    models = {}
    for name, records in by_class.items():
        if len(records) < 2:
            continue
        arrivals = [record["start_ts"] for record in records]
        demands = [
            sum(record[field] for field in service_fields) for record in records
        ]
        models[name] = (ArrivalModel.fit(arrivals), ServiceModel.fit(demands))
    return models


def mg1_response_time(rate, service):
    """Pollaczek-Khinchine mean response time for an M/G/1 server.

    ``service`` is a :class:`ServiceModel`.  Returns ``math.inf`` at or
    past saturation.
    """
    rho = rate * service.mean
    if rho >= 1.0:
        return math.inf
    wait = rho * service.mean * (1.0 + service.cv ** 2) / (2.0 * (1.0 - rho))
    return service.mean + wait


def capacity_at_latency(service, target_latency, precision=1e-3):
    """Highest arrival rate keeping M/G/1 mean response <= target.

    Binary search over rate in (0, 1/mean)."""
    if target_latency <= service.mean:
        return 0.0
    low, high = 0.0, 1.0 / service.mean
    while (high - low) / high > precision:
        mid = (low + high) / 2.0
        if mg1_response_time(mid, service) <= target_latency:
            low = mid
        else:
            high = mid
    return low


def utilization_forecast(models, node_capacity=1.0):
    """Aggregate CPU demand rate across classes vs available capacity.

    Returns (demand, utilization fraction); >1 predicts overload."""
    demand = sum(
        arrival.rate * service.mean for arrival, service in models.values()
    )
    return demand, demand / node_capacity
