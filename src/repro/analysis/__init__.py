"""Higher-level analysis over SysProf output: per-node bottleneck
diagnosis (which resource — CPU, disk, or network — bounds a service,
as in the paper's §3.2 storage-service walk-through), knee detection
for calibration sweep curves, and time-series helpers for watching
metrics evolve across a run."""

from repro.analysis.bottleneck import (
    BottleneckReport,
    NodeDiagnosis,
    diagnose_node,
    find_bottleneck,
)
from repro.analysis.knees import (
    KneePoint,
    find_knee,
    find_knees,
    smooth_curve,
)
from repro.analysis.modeling import (
    ArrivalModel,
    ServiceModel,
    capacity_at_latency,
    fit_class_models,
    load_dump,
    mg1_response_time,
    utilization_forecast,
)
from repro.analysis.timeseries import (
    ascii_plot,
    bin_events,
    moving_average,
    rate_series,
)

__all__ = [
    "ArrivalModel",
    "BottleneckReport",
    "KneePoint",
    "NodeDiagnosis",
    "ServiceModel",
    "ascii_plot",
    "bin_events",
    "capacity_at_latency",
    "diagnose_node",
    "find_bottleneck",
    "find_knee",
    "find_knees",
    "fit_class_models",
    "load_dump",
    "mg1_response_time",
    "moving_average",
    "rate_series",
    "smooth_curve",
    "utilization_forecast",
]
