"""The streaming dashboard: the engine's text dashboard grown live.

:func:`render` composes one refresh frame from a running supervisor —
the diagnosis engine's percentile/alert/CPU view, anomaly flags, node
health, and a sparkline history column per watched metric (drawn with
:func:`repro.analysis.plot.sparkline`, the same renderer the generated
calibration docs use).  :func:`stream` pumps the supervisor and redraws
at a fixed simulated-time cadence — the interactive body of
``python -m repro serve``.

Everything here is host-side read-only: rendering a frame never touches
the simulator, so a streaming run stays byte-identical to a batch run.
"""

from repro.analysis.plot import sparkline

#: Recorder series shown as sparklines by default (fnmatch patterns,
#: matched in order; first ``max_series`` wins).
DEFAULT_SPARKS = (
    "sysprof.node.*.cpu_busy",
    "sysprof.gpa.*.records_received",
    "sysprof.diagnosis.active_alerts",
    "sysprof.daemon.*.send_errors",
)


def _fmt(value):
    if value is None:
        return "n/a"
    if isinstance(value, float):
        return "{:.4g}".format(value)
    return str(value)


def render(supervisor, width=60, spark_patterns=DEFAULT_SPARKS,
           max_series=12):
    """One dashboard frame as a newline-joined string."""
    now = supervisor.now
    lines = [
        "== repro serve :: {} @ t={:.2f}s  slice={:g}s  "
        "slices={}  controls={} ==".format(
            supervisor.scenario.name, now, supervisor.slice_width,
            supervisor.slices, supervisor.controls_applied,
        ),
        "",
        supervisor.engine.dashboard(now),
    ]
    # -- anomaly flags --------------------------------------------------
    anomaly = supervisor.anomaly
    if anomaly is not None:
        lines.append("")
        if anomaly.active:
            lines.append("anomaly flags:")
            for name in sorted(anomaly.active):
                lines.append(
                    "  !! {} (z={})".format(name, _fmt(anomaly.active[name]))
                )
        else:
            lines.append(
                "anomaly flags: none ({} detectors, {} checks)".format(
                    len(anomaly.detectors), anomaly.checks
                )
            )
    # -- node health ----------------------------------------------------
    lines.append("")
    lines.append("node health:")
    stale_threshold = supervisor.sysprof.gpa.stale_threshold
    for node in sorted(supervisor.sysprof.monitors):
        staleness = supervisor.engine._staleness(node, now)
        if staleness is None:
            state = "no data"
        elif staleness > stale_threshold:
            state = "STALE {:.2f}s".format(staleness)
        else:
            state = "ok ({:.2f}s)".format(staleness)
        drilled = node in supervisor.sysprof.controller.drilled_nodes()
        lines.append("  {:<12} {}{}".format(
            node, state, "  [drilled]" if drilled else ""
        ))
    # -- sparkline history ----------------------------------------------
    recorder = supervisor.recorder
    shown = []
    for pattern in spark_patterns:
        for name in recorder.names(pattern):
            if name not in shown:
                shown.append(name)
            if len(shown) >= max_series:
                break
        if len(shown) >= max_series:
            break
    if shown:
        lines.append("")
        lines.append("history (last {} samples):".format(width))
        label_width = max(len(name) for name in shown)
        for name in shown:
            values = recorder.values(name)
            lines.append("  {:<{}} |{}| {}".format(
                name, label_width,
                sparkline(values, width=width), _fmt(values[-1] if values else None),
            ))
    return "\n".join(lines)


def stream(supervisor, refresh=1.0, duration=None, out=None, clear=True,
           width=60):
    """Pump ``supervisor`` forever (or for ``duration`` simulated
    seconds), redrawing one frame per ``refresh`` simulated seconds.

    ``out`` is a ``print``-compatible callable (defaults to ``print``);
    ``clear`` emits an ANSI home+clear before each frame so the terminal
    behaves like ``watch``.  Returns the number of frames drawn.
    Stops early when the supervisor is shut down mid-stream (e.g. by a
    socket client's ``shutdown`` op draining at a slice boundary).
    """
    if out is None:
        out = print
    frames = 0
    end = None if duration is None else supervisor.now + duration
    while not supervisor.stopping and (end is None or supervisor.now < end):
        target = supervisor.now + refresh
        if end is not None:
            target = min(target, end)
        while supervisor.now < target and not supervisor.stopping:
            supervisor.pump(
                width=min(supervisor.slice_width, target - supervisor.now)
            )
        frame = render(supervisor, width=width)
        out(("\x1b[H\x1b[2J" + frame) if clear else frame)
        frames += 1
    return frames
