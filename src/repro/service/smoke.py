"""The ``repro serve --smoke`` self-check: boot, query, stream, control.

One scripted pass over the live-service acceptance surface, exercising
the real socket path (ephemeral TCP port, line-delimited JSON) against a
supervised NFS scenario:

1. queries — sketch percentiles, metrics snapshot, CPU-ledger breakdown;
2. streaming — subscribe, stage a CPU hog via ``inject_fault``, and
   watch at least one alert fire *and* clear arrive as pushed events
   (the anomaly detector's slope watch fires before the p95 SLO rule);
3. controls — a mid-flight SLO retune and a drill-down/restore pair;
4. clean shutdown through the ``shutdown`` op.

Each step prints ``ok``/``FAIL``; the exit code is the failure count.
CI runs this as the serve-smoke job.
"""

import threading
import time

from repro.service.server import ServiceServer, SocketClient
from repro.service.supervisor import Supervisor

#: Simulated-seconds budget for the whole smoke pass (the event wait
#: aborts when the supervisor's clock passes this).
SMOKE_HORIZON = 30.0


def run_smoke(scenario="nfs", out=None):
    """Run the scripted self-check; returns the number of failed steps."""
    if out is None:
        out = print
    failures = []

    def check(label, ok, detail=""):
        out("  {:<44} {}{}".format(
            label, "ok" if ok else "FAIL",
            " — {}".format(detail) if detail and not ok else "",
        ))
        if not ok:
            failures.append(label)

    supervisor = Supervisor(scenario)
    server = ServiceServer(supervisor).start()
    out("serve --smoke: {} scenario on {}".format(scenario, server.address))

    pump_errors = []

    def pump_loop():
        try:
            while not supervisor.stopping:
                supervisor.pump()
        except Exception as exc:  # surfaced as a failed step below
            pump_errors.append(exc)

    pump_thread = threading.Thread(
        target=pump_loop, name="repro-serve-pump", daemon=True
    )
    pump_thread.start()
    client = SocketClient(server.host, server.port)
    try:
        # -- queries ----------------------------------------------------
        ping = client.call("ping")
        check("ping answers with scenario + clock",
              ping.get("scenario") == scenario and ping.get("now", -1) >= 0)
        # Let a few eviction windows land before querying sketches.
        while supervisor.now < 1.0 and not pump_errors:
            time.sleep(0.02)
        sketch = client.call("sketch", **{"class": "nfs-write"})
        check("sketch query returns percentiles",
              sketch["count"] > 0 and sketch["percentiles"]["p95"] > 0.0,
              str(sketch))
        metrics = client.call("metrics", pattern="sysprof.node.*.cpu_busy")
        check("metrics query returns CPU gauges",
              len(metrics["metrics"]) >= 3, str(sorted(metrics["metrics"])))
        ledger = client.call("ledger")
        busy = {n: v["busy"] for n, v in ledger["nodes"].items()}
        check("ledger query returns per-node breakdowns",
              len(busy) >= 3 and any(v > 0.0 for v in busy.values()),
              str(busy))
        # -- streaming --------------------------------------------------
        client.call("subscribe", events=["alert"])
        client.call("inject_fault", events=[{
            "at": 0.5, "kind": "cpu_hog", "target": "backend1",
            "params": {"duration": 2.0, "utilization": 0.95},
        }])
        fired, cleared = [], []
        sources = set()
        while not cleared and not pump_errors:
            if supervisor.now > SMOKE_HORIZON:
                break
            try:
                event = client.read_event(timeout=60)
            except OSError:
                break  # wall-clock timeout: the checks below report FAIL
            alert = event["data"]["alert"]
            sources.add(alert.get("source"))
            if event["data"]["state"] == "fire":
                fired.append(alert["rule"])
            else:
                cleared.append(alert["rule"])
        check("subscriber streamed an alert fire", bool(fired), str(fired))
        check("subscriber streamed an alert clear", bool(cleared), str(cleared))
        check("anomaly detector flagged the hog",
              "anomaly" in sources, str(sources))
        # -- controls ---------------------------------------------------
        retune = client.call("set_rules", rules=["p95(nfs-write) < 50ms"])
        rules = client.call("rules")["rules"]
        check("mid-flight SLO retune applied",
              retune["rules"] == ["p95(nfs-write) < 50ms"]
              and [r["name"] for r in rules] == ["p95(nfs-write) < 50ms"],
              str(rules))
        drill = client.call("drill_down", node="backend2")
        restored = client.call("restore", node="backend2")
        check("drill-down + restore round-trip",
              drill["saved"]["eviction_interval"] > 0.0
              and restored["restored"] is True, str((drill, restored)))
        # -- shutdown ---------------------------------------------------
        down = client.call("shutdown")
        pump_thread.join(timeout=10.0)
        check("clean shutdown", down["stopping"] is True
              and not pump_thread.is_alive())
        check("pump loop raised no errors", not pump_errors,
              str(pump_errors))
    finally:
        client.close()
        server.stop()
        if not supervisor.stopping:
            supervisor.shutdown()
    out("serve --smoke: {} step(s) failed".format(len(failures))
        if failures else "serve --smoke: all steps passed")
    return len(failures)
