"""Live service mode: supervised scenarios with a queryable control
plane.  The paper's pitch (§1) is *online* diagnosis — monitoring you can query
and steer while the system serves traffic, not a trace you inspect
afterwards.  Batch experiments (``repro.experiments``) build a cluster,
run it to a horizon, and post-process; this package keeps the same
deterministic simulation *alive*: a :class:`Supervisor` pumps a long-running
:class:`Scenario` in bounded slices while a versioned request/response +
subscription API — served in-process (:class:`ServiceClient`) or over a
line-delimited JSON socket (:class:`ServiceServer`) — answers queries
and applies controls at slice boundaries.  ``python -m repro serve``
wraps it all in a streaming terminal dashboard.

See ``docs/service.md`` for the API reference and the determinism
contract (an uncontrolled supervised run is byte-identical to batch).
"""

from repro.service.dashboard import render, stream
from repro.service.scenarios import SCENARIOS, Scenario, build_scenario
from repro.service.server import (
    ServiceCallError,
    ServiceClient,
    ServiceServer,
    SocketClient,
)
from repro.service.supervisor import (
    EVENT_KINDS,
    OPS,
    PROTOCOL_VERSION,
    ServiceError,
    Supervisor,
)

__all__ = [
    "EVENT_KINDS",
    "OPS",
    "PROTOCOL_VERSION",
    "SCENARIOS",
    "Scenario",
    "ServiceCallError",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "SocketClient",
    "Supervisor",
    "build_scenario",
    "render",
    "stream",
]
