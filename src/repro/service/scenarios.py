"""Supervised scenarios: long-running monitored workloads for live mode.

A *scenario* is everything the :class:`~repro.service.supervisor.Supervisor`
needs to keep a monitored system alive for hours of simulated time: a
seeded cluster, an application under **continuous** traffic, a SysProf
installation with latency sketches, a :class:`DiagnosisEngine` with the
scenario's SLO rules, and an un-armed :class:`FaultInjector` ready for
mid-flight injections.

Traffic is driven by in-sim looping tasks, never by the host pump: a
client that replenishes itself at slice boundaries would entangle the
trace with the supervisor's slice width, breaking the service-vs-batch
determinism contract (``tests/service/test_determinism.py``).  Because
every generator lives inside the simulation, pumping ``run(until=...)``
in any sequence of slices replays the identical event stream.

Four scenarios ship (mirroring the paper's evaluation workloads):

``nfs``
    Iozone-style writers looping forever through the virtual storage
    proxy (§3.2's Figure 4/5 system).  The default, and what
    ``python -m repro serve --smoke`` boots.
``rubis``
    The RUBiS site with DWCS-dispatched httperf sessions (Figure 6/7).
``federation``
    A spine/leaf cluster with zone GPAs condensing synthetic telemetry
    upward — the scenario whose reparent events the service streams.
``synthetic``
    Flat install, synthetic sketch/class LPAs only: maximal telemetry
    rate per simulated second, no application layer.
"""

from repro.cluster import Cluster, build_spine_leaf
from repro.core import SysProf, SysProfConfig, ZoneSpec
from repro.faults import FaultInjector
from repro.observability import DiagnosisEngine
from repro.observability import ledger as cpu_ledger


class Scenario:
    """One built, started, supervised workload (see module docstring)."""

    def __init__(self, name, cluster, sysprof, engine, injector, ledger,
                 owns_ledger, description="", traffic=""):
        self.name = name
        self.cluster = cluster
        self.sysprof = sysprof
        self.engine = engine
        self.injector = injector
        self.ledger = ledger
        self._owns_ledger = owns_ledger
        self.description = description
        self.traffic = traffic

    @property
    def sim(self):
        return self.cluster.sim

    def parent_links(self):
        """Every live reparent state machine (member daemons + zones)."""
        links = []
        for monitor in self.sysprof.monitors.values():
            link = monitor.daemon.parent_link
            if link is not None:
                links.append(link)
        federation = self.sysprof.federation
        if federation is not None:
            for zone_gpa in federation.all_zones():
                if zone_gpa.parent_link is not None:
                    links.append(zone_gpa.parent_link)
        return links

    def close(self):
        """Release process-global state (the CPU ledger) we installed."""
        if self._owns_ledger:
            cpu_ledger.uninstall()
            self._owns_ledger = False

    def describe(self):
        return {
            "name": self.name,
            "description": self.description,
            "traffic": self.traffic,
            "nodes": sorted(self.cluster.nodes),
            "monitored": sorted(self.sysprof.monitors),
            "rules": [rule.name for rule in self.engine.rules],
            "federated": self.sysprof.federation is not None,
        }


def _install_ledger():
    """The scenario's CPU ledger: reuse an active one, else install."""
    ledger = cpu_ledger.active()
    if ledger is not None:
        return ledger, False
    return cpu_ledger.install(), True


# ---------------------------------------------------------------------------
# nfs
# ---------------------------------------------------------------------------


def _nfs_writer(ctx, server, path, record_bytes, burst, think):
    """One iozone-style thread that never finishes: write bursts with a
    COMMIT and a think pause, looping over a bounded file region."""
    from repro.apps.nfs.client import NfsMount

    mount = NfsMount(ctx, server, pipeline=4)
    yield from mount.connect()
    yield from mount.lookup(path)
    op = 0
    while True:
        for _ in range(burst):
            offset = (op % 512) * record_bytes
            yield from mount.write(path, offset, record_bytes, stable=False)
            op += 1
        yield from mount.commit(path)
        yield from ctx.sleep(think)


def build_nfs(seed=11, clients=1, backends=2, threads_per_client=2,
              record_bytes=16384, burst=8, think=0.01,
              eviction_interval=0.2, sketch_alpha=0.01,
              rules=("p95(nfs-write) < 8ms",), lookback=1.0,
              eval_interval=0.1):
    """The virtual storage service under endless iozone-style writes."""
    from repro.apps.nfs.service import VirtualStorageService

    ledger, owns = _install_ledger()
    cluster = Cluster(seed=seed)
    client_names = ["client{}".format(i + 1) for i in range(clients)]
    for name in client_names:
        cluster.add_node(name)
    cluster.add_node("proxy")
    backend_names = ["backend{}".format(i + 1) for i in range(backends)]
    for name in backend_names:
        cluster.add_node(name, with_disk=True)
    cluster.add_node("mgmt")
    VirtualStorageService(cluster, "proxy", backend_names).start()

    sysprof = SysProf(cluster, SysProfConfig(
        eviction_interval=eviction_interval, latency_sketches=True,
        sketch_alpha=sketch_alpha,
    ))
    sysprof.install(monitored=["proxy"] + backend_names, gpa_node="mgmt")
    sysprof.start()
    engine = DiagnosisEngine(
        sysprof, rules=list(rules), ledger=ledger,
        lookback=lookback, eval_interval=eval_interval,
    )
    injector = FaultInjector(cluster, sysprof=sysprof)
    for client in client_names:
        node = cluster.node(client)
        for thread_id in range(threads_per_client):
            path = "/data/{}/file{}".format(client, thread_id)
            node.spawn(
                "writer-{}-t{}".format(client, thread_id),
                _nfs_writer, "proxy", path, record_bytes, burst, think,
            )
    return Scenario(
        "nfs", cluster, sysprof, engine, injector, ledger, owns,
        description="virtual storage proxy + {} backends".format(backends),
        traffic="{} clients x {} looping iozone writers".format(
            clients, threads_per_client
        ),
    )


# ---------------------------------------------------------------------------
# rubis
# ---------------------------------------------------------------------------


def build_rubis(seed=29, sessions_per_class=30, rate_per_class=150.0,
                traffic_horizon=3600.0, eviction_interval=0.1,
                rules=("p95(bidding) < 100ms",), lookback=1.0,
                eval_interval=0.1):
    """The RUBiS site under DWCS-dispatched httperf sessions.

    ``traffic_horizon`` bounds how long the generators keep producing
    (simulated seconds) — effectively "forever" for a service session;
    raise it for longer supervised runs.
    """
    from repro.apps.rubis.requests import BIDDING, COMMENT
    from repro.apps.rubis.site import RubisSite
    from repro.apps.scheduling import (
        DwcsScheduler,
        DwcsStream,
        RequestDispatcher,
        RoundRobinRouter,
    )
    from repro.workloads.httperf import HttperfConfig, spawn_httperf

    servlets = ("servlet1", "servlet2")
    ledger, owns = _install_ledger()
    cluster = Cluster(seed=seed)
    cluster.add_node("client")
    cluster.add_node("apache")
    for name in servlets:
        cluster.add_node(name)
    cluster.add_node("db", with_disk=True)
    cluster.add_node("mgmt")
    site = RubisSite(cluster, "apache", list(servlets), "db").start()

    sysprof = SysProf(cluster, SysProfConfig(
        eviction_interval=eviction_interval, latency_sketches=True,
    ))
    sysprof.install(monitored=list(servlets), gpa_node="mgmt")
    sysprof.start()
    engine = DiagnosisEngine(
        sysprof, rules=list(rules), ledger=ledger,
        lookback=lookback, eval_interval=eval_interval,
    )
    injector = FaultInjector(cluster, sysprof=sysprof)

    dwcs = DwcsScheduler()
    for profile in (BIDDING, COMMENT):
        dwcs.add_stream(DwcsStream(
            profile.name, profile.period, profile.window_x, profile.window_y
        ))
    dispatcher = RequestDispatcher(
        cluster.node("client"), "apache", site.http_port, list(servlets),
        dwcs, router=RoundRobinRouter(list(servlets)),
    ).start()
    spawn_httperf(
        cluster.node("client"), dispatcher,
        HttperfConfig(
            sessions_per_class=sessions_per_class,
            rate_per_class=rate_per_class,
            duration=traffic_horizon,
        ),
        cluster.streams,
    )
    return Scenario(
        "rubis", cluster, sysprof, engine, injector, ledger, owns,
        description="RUBiS site: apache + {} servlets + db".format(
            len(servlets)
        ),
        traffic="httperf, {} sessions/class at {:.0f} req/s for {:.0f}s".format(
            sessions_per_class, rate_per_class, traffic_horizon
        ),
    )


# ---------------------------------------------------------------------------
# federation
# ---------------------------------------------------------------------------


def build_federation(seed=19, zones=2, nodes_per_zone=3,
                     eviction_interval=0.2, forward_interval=0.5,
                     request_classes=("rpc",), samples_per_window=16,
                     rules=("staleness(r0n0) < 2s",), lookback=1.0,
                     eval_interval=0.1):
    """Spine/leaf zones condensing synthetic telemetry to a root GPA."""
    from repro.workloads.synthetic import install_synthetic_load

    ledger, owns = _install_ledger()
    cluster = Cluster(seed=seed)
    topology = build_spine_leaf(
        cluster, racks=zones, nodes_per_rack=nodes_per_zone, mgmt_node="mgmt"
    )
    sysprof = SysProf(cluster, SysProfConfig(
        eviction_interval=eviction_interval,
        forward_interval=forward_interval,
        latency_sketches=False,  # the synthetic LPAs supply sketch rows
    ))
    specs = [
        ZoneSpec(name=rack.name, gpa_node=rack.gpa_node,
                 members=list(rack.nodes))
        for rack in topology.racks
    ]
    sysprof.install(zones=specs, gpa_node="mgmt")
    install_synthetic_load(
        sysprof, request_classes=request_classes,
        samples_per_window=samples_per_window,
    )
    sysprof.start()
    engine = DiagnosisEngine(
        sysprof, rules=list(rules), ledger=ledger,
        lookback=lookback, eval_interval=eval_interval,
    )
    injector = FaultInjector(cluster, sysprof=sysprof)
    return Scenario(
        "federation", cluster, sysprof, engine, injector, ledger, owns,
        description="{} zones x {} members, zone GPAs under a root".format(
            zones, nodes_per_zone
        ),
        traffic="synthetic sketch/class LPAs on every member",
    )


# ---------------------------------------------------------------------------
# synthetic
# ---------------------------------------------------------------------------


def build_synthetic(seed=17, nodes=4, eviction_interval=0.1,
                    request_classes=("rpc",), samples_per_window=32,
                    rules=("p95(rpc) < 50ms",), lookback=1.0,
                    eval_interval=0.1):
    """Flat install with synthetic LPAs: pure monitoring-plane traffic."""
    from repro.workloads.synthetic import install_synthetic_load

    ledger, owns = _install_ledger()
    cluster = Cluster(seed=seed)
    names = ["n{}".format(i) for i in range(nodes)]
    for name in names:
        cluster.add_node(name)
    cluster.add_node("mgmt")
    sysprof = SysProf(cluster, SysProfConfig(
        eviction_interval=eviction_interval, latency_sketches=False,
    ))
    sysprof.install(monitored=names, gpa_node="mgmt")
    install_synthetic_load(
        sysprof, request_classes=request_classes,
        samples_per_window=samples_per_window,
    )
    sysprof.start()
    engine = DiagnosisEngine(
        sysprof, rules=list(rules), ledger=ledger,
        lookback=lookback, eval_interval=eval_interval,
    )
    injector = FaultInjector(cluster, sysprof=sysprof)
    return Scenario(
        "synthetic", cluster, sysprof, engine, injector, ledger, owns,
        description="{} monitored nodes, no application layer".format(nodes),
        traffic="synthetic sketch/class LPAs",
    )


#: Registry the CLI and supervisor resolve scenario names through.
SCENARIOS = {
    "nfs": build_nfs,
    "rubis": build_rubis,
    "federation": build_federation,
    "synthetic": build_synthetic,
}


def build_scenario(name, **overrides):
    """Build a registered scenario by name."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            "unknown scenario {!r} (have: {})".format(
                name, ", ".join(sorted(SCENARIOS))
            )
        ) from None
    return builder(**overrides)
