"""Line-delimited JSON control-plane server and clients.

Wire format: one JSON object per ``\\n``-terminated line, UTF-8.
Requests carry ``{"v": 1, "id": N, "op": ..., "params": {...}}``;
responses echo the id with ``{"ok": true, "result": ...}`` or
``{"ok": false, "error": ...}``.  Subscription events arrive as
unsolicited ``{"v": 1, "event": ..., "seq": n, "data": ...}`` lines
interleaved between responses (match on the ``event`` key, or on the
absent ``id``).

Threading: every connection gets a reader thread that parses lines and
forwards them through :meth:`Supervisor.submit`, which queues the
request for the supervisor thread to execute at the next slice boundary.
The supervisor never touches sockets except through per-connection
``push`` callbacks (registered by ``subscribe``), which serialize writes
under the connection's lock so event lines never interleave with
response lines.
"""

import json
import socket
import threading

from repro.service.supervisor import PROTOCOL_VERSION


def encode(message):
    """One wire line for ``message`` (compact separators, no newline)."""
    return json.dumps(message, separators=(",", ":"), sort_keys=True)


class ServiceServer:
    """TCP front-end for a :class:`~repro.service.supervisor.Supervisor`.

    Binds ``host:port`` (port 0 picks a free one — read :attr:`port`
    after construction) and serves each connection on its own thread.
    The accept loop runs on a daemon thread started by :meth:`start`;
    the supervisor itself must be pumped elsewhere (usually the main
    thread) or no request will ever complete.
    """

    def __init__(self, supervisor, host="127.0.0.1", port=0):
        self.supervisor = supervisor
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self.connections = 0
        self.requests = 0
        self._conns = set()
        self._lock = threading.Lock()
        self._thread = None
        self.running = False

    @property
    def address(self):
        return "{}:{}".format(self.host, self.port)

    def start(self):
        if self.running:
            return self
        self.running = True
        self._thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._thread.start()
        return self

    def stop(self):
        self.running = False
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            conn.close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)

    def _accept_loop(self):
        while self.running:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            conn = _Connection(self, sock)
            with self._lock:
                self._conns.add(conn)
            self.connections += 1
            threading.Thread(
                target=conn.reader_loop, name="repro-serve-conn", daemon=True
            ).start()

    def _forget(self, conn):
        with self._lock:
            self._conns.discard(conn)


class _Connection:
    """One client socket: a reader thread plus a write lock shared with
    the supervisor's event pushes."""

    def __init__(self, server, sock):
        self.server = server
        self.sock = sock
        self._wlock = threading.Lock()
        self._closed = False

    def send(self, message):
        line = (encode(message) + "\n").encode("utf-8")
        with self._wlock:
            self.sock.sendall(line)

    def push(self, event):
        """Supervisor-side event delivery; raising unsubscribes us."""
        if self._closed:
            raise ConnectionError("connection closed")
        self.send(event)

    def reader_loop(self):
        try:
            buffer = self.sock.makefile("r", encoding="utf-8", newline="\n")
            for line in buffer:
                line = line.strip()
                if not line:
                    continue
                self._serve_line(line)
        except (OSError, ValueError):
            pass
        finally:
            self.close()

    def _serve_line(self, line):
        try:
            request = json.loads(line)
        except ValueError:
            self.send({
                "v": PROTOCOL_VERSION, "ok": False,
                "error": "invalid JSON: {!r}".format(line[:80]),
            })
            return
        if isinstance(request, dict) and request.get("op") == "subscribe":
            # Socket subscribers stream: wire this connection up as the
            # push callback so boundary flushes write straight to us.
            params = dict(request.get("params") or {})
            params["_push"] = self.push
            request = dict(request, params=params)
        self.server.requests += 1
        response = self.server.supervisor.submit(request)
        self.send(response)

    def close(self):
        if self._closed:
            return
        self._closed = True
        self.server._forget(self)
        try:
            self.sock.close()
        except OSError:
            pass


class ServiceClient:
    """In-process client: calls :meth:`Supervisor.handle` directly.

    Meant for the thread that owns the supervisor, *between* pumps —
    exactly the slice-boundary window where controls are legal.  Query
    and control helpers mirror the wire ops one-to-one, raise
    :class:`ServiceCallError` on ``ok: false``, and return the bare
    ``result``.
    """

    def __init__(self, supervisor):
        self.supervisor = supervisor
        self._next_id = 0

    def call(self, op, **params):
        self._next_id += 1
        response = self.supervisor.handle({
            "v": PROTOCOL_VERSION, "id": self._next_id,
            "op": op, "params": params,
        })
        if not response.get("ok"):
            raise ServiceCallError(response.get("error", "request failed"))
        return response["result"]

    # Conveniences for the common ops; anything else goes via call().
    def ping(self):
        return self.call("ping")

    def status(self):
        return self.call("status")

    def metrics(self, pattern=None):
        return self.call("metrics", pattern=pattern)

    def sketch(self, request_class, **kwargs):
        return self.call("sketch", **{"class": request_class, **kwargs})

    def ledger(self, node=None):
        return self.call("ledger", node=node)

    def alerts(self, limit=20):
        return self.call("alerts", limit=limit)

    def subscribe(self, events=None):
        return self.call("subscribe", events=events)["sub"]

    def poll(self, sub):
        return self.call("poll", sub=sub)["events"]

    def inject_fault(self, events, base=None):
        return self.call("inject_fault", events=events, base=base)

    def shutdown(self):
        return self.call("shutdown")


class ServiceCallError(Exception):
    """An ``ok: false`` response surfaced client-side."""


class SocketClient:
    """Blocking TCP client for tests and scripting.

    :meth:`call` sends one request and reads until the matching response
    id arrives; event lines read along the way are buffered in
    :attr:`events` (also extended by :meth:`read_event`).
    """

    def __init__(self, host, port, timeout=30.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self.sock.makefile("r", encoding="utf-8", newline="\n")
        self._next_id = 0
        self.events = []

    def _read_message(self):
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def call(self, op, **params):
        self._next_id += 1
        request = {
            "v": PROTOCOL_VERSION, "id": self._next_id,
            "op": op, "params": params,
        }
        self.sock.sendall((encode(request) + "\n").encode("utf-8"))
        while True:
            message = self._read_message()
            if message.get("id") == self._next_id:
                if not message.get("ok"):
                    raise ServiceCallError(message.get("error", "request failed"))
                return message["result"]
            if "event" in message:
                self.events.append(message)

    def read_event(self, timeout=None):
        """Block for the next unsolicited event line (or a buffered one)."""
        if self.events:
            return self.events.pop(0)
        if timeout is not None:
            self.sock.settimeout(timeout)
        message = self._read_message()
        if "event" not in message:
            raise ServiceCallError(
                "expected an event, got: {!r}".format(message)
            )
        return message

    def close(self):
        try:
            self._file.close()
        finally:
            try:
                self.sock.close()
            except OSError:
                pass
