"""The back-end NFS server: a kernel daemon (nfsd).

"Since the NFS server ran as kernel daemon, no time was spent by the
request at the user level" (§3.2) — nfsd tasks run in ``BAND_KERNEL``
and all their CPU is system time; their disk waits are kernel-level time
in SysProf's accounting.  Writes are *stable* (NFSv2 semantics / NFSv3
with ``stable=True``): the reply is not sent until the data is on the
platter, which is why the back-end dominates end-to-end latency
(Figure 5).
"""

from repro.apps.nfs import protocol
from repro.ossim.task import BAND_KERNEL

#: Kernel CPU to decode + dispatch one NFS call.
PARSE_COST = 25e-6


class NfsServer:
    """nfsd on one storage node (requires the node to have a disk)."""

    def __init__(self, node, port=protocol.NFS_PORT, nfsd_per_conn=1, name="nfsd"):
        self.node = node
        self.port = port
        self.nfsd_per_conn = nfsd_per_conn
        self.name = name
        self.ops = {op: 0 for op in protocol.ALL_OPS}
        self.bytes_written = 0
        self.bytes_read = 0
        self.task = None

    def start(self):
        self.task = self.node.spawn(
            self.name, self._acceptor, band=BAND_KERNEL
        )
        return self

    def _acceptor(self, ctx):
        lsock = yield from ctx.listen(self.port)
        conn_index = 0
        while True:
            sock = yield from ctx.accept(lsock)
            for i in range(self.nfsd_per_conn):
                ctx.spawn(
                    "{}-{}-{}".format(self.name, conn_index, i),
                    self._nfsd, sock, band=BAND_KERNEL,
                )
            conn_index += 1

    def _nfsd(self, ctx, sock):
        while True:
            request = yield from ctx.recv_message(sock)
            if request is None:
                break
            yield from ctx.kcompute(PARSE_COST)
            meta = request.meta or {}
            op = meta.get("op", protocol.OP_GETATTR)
            self.ops[op] = self.ops.get(op, 0) + 1
            reply_bytes = protocol.REPLY_OVERHEAD
            if op == protocol.OP_WRITE:
                handle = yield from ctx.open(meta["path"])
                yield from ctx.write(
                    handle, meta["len"], offset=meta["offset"],
                    sync=meta.get("stable", True),
                )
                yield from ctx.close_file(handle)
                self.bytes_written += meta["len"]
            elif op == protocol.OP_READ:
                handle = yield from ctx.open(meta["path"])
                yield from ctx.read(handle, meta["len"], offset=meta["offset"])
                yield from ctx.close_file(handle)
                self.bytes_read += meta["len"]
                reply_bytes = protocol.reply_size(op, meta["len"])
            elif op == protocol.OP_COMMIT:
                handle = yield from ctx.open(meta["path"])
                yield from ctx.fsync(handle)
                yield from ctx.close_file(handle)
            # LOOKUP/GETATTR: metadata ops, parse cost only.
            yield from ctx.send_message(sock, reply_bytes, kind=op, meta=meta)

    def stats(self):
        return {
            "ops": dict(self.ops),
            "bytes_written": self.bytes_written,
            "bytes_read": self.bytes_read,
            "disk": {
                "writes": self.node.kernel.disk.writes,
                "reads": self.node.kernel.disk.reads,
                "busy_time": self.node.kernel.disk.busy_time,
            },
        }
