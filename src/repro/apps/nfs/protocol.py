"""NFS-like message protocol: operation types and wire sizes."""

NFS_PORT = 2049

#: RPC header + NFS call overhead per request, bytes.
CALL_OVERHEAD = 200
#: Reply header bytes.
REPLY_OVERHEAD = 128

OP_WRITE = "nfs-write"
OP_READ = "nfs-read"
OP_COMMIT = "nfs-commit"
OP_LOOKUP = "nfs-lookup"
OP_GETATTR = "nfs-getattr"

ALL_OPS = (OP_WRITE, OP_READ, OP_COMMIT, OP_LOOKUP, OP_GETATTR)


def request_size(op, nbytes=0):
    """Wire size of a request message for ``op``."""
    if op == OP_WRITE:
        return CALL_OVERHEAD + nbytes
    return CALL_OVERHEAD


def reply_size(op, nbytes=0):
    """Wire size of the reply message for ``op``."""
    if op == OP_READ:
        return REPLY_OVERHEAD + nbytes
    return REPLY_OVERHEAD


def make_meta(op, path, offset=0, nbytes=0, stable=True):
    """Request metadata carried alongside the message."""
    return {
        "op": op,
        "path": path,
        "offset": offset,
        "len": nbytes,
        "stable": stable,
    }
