"""NFS client mount.

Models the kernel NFS client's RPC behaviour:

* ``pipeline=1`` — strictly synchronous RPCs on a single connection
  (NFSv2-style stable writes, one outstanding call).
* ``pipeline=N`` — write-behind: up to N outstanding calls, one per
  connection, each connection strictly request/response alternating.
  This reproduces the kernel client's multiple in-flight WRITEs while
  keeping every flow in the regime where the paper's black-box message
  extraction is exact.
"""

from repro.apps.nfs import protocol


class _Conn:
    __slots__ = ("sock", "pending_path", "pending_since", "pending_op")

    def __init__(self, sock):
        self.sock = sock
        self.pending_path = None
        self.pending_since = None
        self.pending_op = None


class NfsMount:
    """One client task's mount of the storage service (via the proxy).

    Use inside a task generator::

        mount = NfsMount(ctx, "proxy", pipeline=4)
        yield from mount.connect()
        yield from mount.write("/vol/f0", 0, 16384, stable=False)
        yield from mount.commit("/vol/f0")
        yield from mount.drain()
    """

    def __init__(self, ctx, server, port=protocol.NFS_PORT, pipeline=1,
                 on_complete=None):
        if pipeline < 1:
            raise ValueError("pipeline must be >= 1")
        self.ctx = ctx
        self.server = server
        self.port = port
        self.pipeline = pipeline
        self.on_complete = on_complete  # on_complete(ts, op, path, latency)
        self._conns = []
        self._rr = 0
        self.calls = 0
        self.completed = 0
        self.total_latency = 0.0

    def connect(self):
        for _ in range(self.pipeline):
            sock = yield from self.ctx.connect(self.server, self.port)
            self._conns.append(_Conn(sock))
        return self

    # ------------------------------------------------------------------

    def _reap(self, conn):
        """Collect the outstanding reply on ``conn`` (if any)."""
        if conn.pending_since is None:
            return
        reply = yield from self.ctx.recv_message(conn.sock)
        if reply is None:
            raise RuntimeError("NFS server closed the connection")
        latency = self.ctx.now - conn.pending_since
        self.completed += 1
        self.total_latency += latency
        if self.on_complete is not None:
            self.on_complete(self.ctx.now, conn.pending_op, conn.pending_path, latency)
        conn.pending_since = None
        conn.pending_path = None
        conn.pending_op = None

    def _call(self, op, path, offset=0, nbytes=0, stable=True):
        """Issue a call on the next connection; waits only if that
        connection still has an outstanding call (window full)."""
        conn = self._conns[self._rr % len(self._conns)]
        self._rr += 1
        yield from self._reap(conn)
        meta = protocol.make_meta(op, path, offset=offset, nbytes=nbytes, stable=stable)
        yield from self.ctx.send_message(
            conn.sock, protocol.request_size(op, nbytes), kind=op, meta=meta
        )
        conn.pending_since = self.ctx.now
        conn.pending_path = path
        conn.pending_op = op
        self.calls += 1

    def drain(self):
        """Wait for every outstanding call to complete."""
        for conn in self._conns:
            yield from self._reap(conn)

    # ------------------------------------------------------------------

    def write(self, path, offset, nbytes, stable=True):
        yield from self._call(
            protocol.OP_WRITE, path, offset=offset, nbytes=nbytes, stable=stable
        )

    def read(self, path, offset, nbytes):
        yield from self._call(protocol.OP_READ, path, offset=offset, nbytes=nbytes)

    def commit(self, path):
        """COMMIT: flush the server's unstable data for ``path``.  Waits for
        all outstanding calls first (the kernel client serializes commits)."""
        yield from self.drain()
        yield from self._call(protocol.OP_COMMIT, path)
        yield from self.drain()

    def lookup(self, path):
        yield from self._call(protocol.OP_LOOKUP, path)

    def close(self):
        yield from self.drain()
        for conn in self._conns:
            yield from self.ctx.close(conn.sock)
        self._conns = []

    @property
    def mean_latency(self):
        return self.total_latency / self.completed if self.completed else 0.0
