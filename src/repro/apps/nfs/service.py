"""Assembly of the full virtual storage service (paper Figure 3).

"The back-end storage servers are hidden from the client's view by a
user-level proxy that interposes every request from the client to the
server."  Clients mount the proxy; the proxy forwards each call to one
of the back-end NFS servers (stable hash on the file path, so one file's
traffic stays on one backend).
"""

from repro.apps.common.proxy import ForwardingProxy
from repro.apps.nfs import protocol
from repro.apps.nfs.server import NfsServer


class VirtualStorageService:
    """Builds the proxy + backends on an existing cluster.

    ``proxy_node`` is the interposer; ``backend_nodes`` must have disks.
    """

    def __init__(self, cluster, proxy_node, backend_nodes,
                 port=protocol.NFS_PORT, nfsd_per_conn=1, backend_conns=1,
                 proxy_parse_cost=40e-6, proxy_reply_cost=25e-6):
        self.cluster = cluster
        self.proxy_node_name = proxy_node
        self.backend_node_names = list(backend_nodes)
        self.port = port
        self.servers = {}
        for name in self.backend_node_names:
            node = cluster.node(name)
            if node.kernel.vfs is None:
                raise ValueError("backend node {} needs with_disk=True".format(name))
            self.servers[name] = NfsServer(
                node, port=port, nfsd_per_conn=nfsd_per_conn,
                name="nfsd-{}".format(name),
            )
        self.proxy = ForwardingProxy(
            cluster.node(proxy_node),
            listen_port=port,
            backends={name: (name, port) for name in self.backend_node_names},
            parse_cost=proxy_parse_cost,
            reply_cost=proxy_reply_cost,
            name="nfs-proxy",
            backend_conns=backend_conns,
        )

    def start(self):
        for server in self.servers.values():
            server.start()
        self.proxy.start()
        return self

    def stats(self):
        return {
            "proxy": self.proxy.stats(),
            "servers": {name: server.stats() for name, server in self.servers.items()},
        }
