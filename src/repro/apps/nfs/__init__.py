"""The virtual storage service: clients -> user-level proxy -> NFS backends."""

from repro.apps.nfs import protocol
from repro.apps.nfs.client import NfsMount
from repro.apps.nfs.server import NfsServer
from repro.apps.nfs.service import VirtualStorageService

__all__ = ["NfsMount", "NfsServer", "VirtualStorageService", "protocol"]
