"""The virtual storage service of paper §3.2: client mounts issue
NFS-style RPCs (LOOKUP/READ/WRITE/COMMIT) through a user-level
interposing proxy that fans out to kernel-context NFS backend
daemons.  SysProf's job in the case study is to locate which tier —
proxy CPU, backend disk, or network — bounds throughput."""

from repro.apps.nfs import protocol
from repro.apps.nfs.client import NfsMount
from repro.apps.nfs.server import NfsServer
from repro.apps.nfs.service import VirtualStorageService

__all__ = ["NfsMount", "NfsServer", "VirtualStorageService", "protocol"]
