"""Building blocks shared by the case-study applications: an
event-driven user-level forwarding proxy with pluggable routing
(hash- or field-based) — the interposition point both the §3.2
storage service and the §3.3 request dispatcher are built around."""

from repro.apps.common.proxy import ForwardingProxy, field_route, hash_route

__all__ = ["ForwardingProxy", "field_route", "hash_route"]
