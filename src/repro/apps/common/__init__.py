"""Shared application building blocks (event-driven proxy, helpers)."""

from repro.apps.common.proxy import ForwardingProxy, field_route, hash_route

__all__ = ["ForwardingProxy", "field_route", "hash_route"]
