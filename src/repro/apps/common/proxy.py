"""User-level forwarding proxies.

Models the interposers in the paper's case studies: the user-level NFS
proxy of the virtual storage service (§3.2) and the Apache front-end of
the RUBiS site (§3.3).

Two concurrency models are provided:

* ``worker`` (default) — one user-level worker task per accepted client
  connection, forwarding synchronously (recv -> parse -> forward ->
  wait -> reply).  This matches process-per-connection servers (Apache
  prefork, classic interposed request routers).  Each worker keeps its
  own backend connections, so every flow stays strictly
  request/response-alternating — the regime where the paper's black-box
  message extraction is exact.
* ``eventloop`` — a single task multiplexing every connection through a
  :class:`~repro.ossim.selector.Selector`, forwarding asynchronously.
  Demonstrates the interleaving limitation the paper acknowledges
  ("certain activities (like the interleaved request) cannot be
  monitored efficiently without domain-specific knowledge").

Either way the proxy does "very little processing" per request
(``parse_cost``/``reply_cost`` of user CPU), so bursts queue in the
kernel ahead of it — the effect Figure 4 measures.
"""

import zlib
from itertools import count

from repro.ossim.selector import Selector


class ForwardingProxy:
    """Listens on ``listen_port``; forwards by ``route`` to named backends.

    ``backends`` maps a backend key to ``(node_name, port)``.  ``route``
    is ``route(message, backend_keys) -> key``; the default hashes the
    request's path/session for stable balancing.
    """

    def __init__(self, node, listen_port, backends, route=None,
                 parse_cost=40e-6, reply_cost=25e-6, name="proxy",
                 mode="worker", backend_conns=1):
        if mode not in ("worker", "eventloop"):
            raise ValueError("mode must be 'worker' or 'eventloop'")
        self.node = node
        self.listen_port = listen_port
        self.backends = dict(backends)
        self.route = route or hash_route
        self.parse_cost = parse_cost
        self.reply_cost = reply_cost
        self.name = name
        self.mode = mode
        self.backend_conns = backend_conns
        self.task = None
        self.connections = 0
        self.forwarded = 0
        self.replied = 0
        self.dropped_replies = 0
        self.per_backend = {key: 0 for key in self.backends}
        self._req_ids = count(1)

    def start(self):
        runner = self._run_workers if self.mode == "worker" else self._run_eventloop
        self.task = self.node.spawn(self.name, runner)
        return self

    # ------------------------------------------------------------------
    # worker mode
    # ------------------------------------------------------------------

    def _run_workers(self, ctx):
        lsock = yield from ctx.listen(self.listen_port)
        while True:
            sock = yield from ctx.accept(lsock)
            self.connections += 1
            ctx.spawn(
                "{}-w{}".format(self.name, self.connections), self._worker, sock
            )

    def _worker(self, ctx, client_sock):
        backend_socks = {}
        while True:
            request = yield from ctx.recv_message(client_sock)
            if request is None:
                break
            yield from ctx.compute(self.parse_cost)
            key = self.route(request, sorted(self.backends))
            sock = backend_socks.get(key)
            if sock is None:
                node_name, port = self.backends[key]
                sock = yield from ctx.connect(node_name, port)
                backend_socks[key] = sock
            self.forwarded += 1
            self.per_backend[key] += 1
            yield from ctx.send_message(
                sock, request.size, kind=request.kind, meta=request.meta
            )
            reply = yield from ctx.recv_message(sock)
            if reply is None:
                self.dropped_replies += 1
                break
            yield from ctx.compute(self.reply_cost)
            self.replied += 1
            yield from ctx.send_message(
                client_sock, reply.size, kind=reply.kind, meta=reply.meta
            )
        for sock in backend_socks.values():
            yield from ctx.close(sock)

    # ------------------------------------------------------------------
    # event-loop mode
    # ------------------------------------------------------------------

    def _run_eventloop(self, ctx):
        lsock = yield from ctx.listen(self.listen_port)
        selector = Selector(ctx)
        selector.add_listener(("accept", None), lsock)

        backend_socks = {}
        rr = {}
        for key, (node_name, port) in self.backends.items():
            socks = []
            for i in range(self.backend_conns):
                sock = yield from ctx.connect(node_name, port)
                selector.add_socket(("backend", key, i), sock)
                socks.append(sock)
            backend_socks[key] = socks
            rr[key] = 0

        clients = {}
        pending = {}  # proxy req id -> client id
        client_ids = count(1)

        while True:
            source, item = yield from selector.select()
            kind = source[0]
            if kind == "accept":
                client_id = next(client_ids)
                clients[client_id] = item
                self.connections += 1
                selector.add_socket(("client", client_id), item)
            elif kind == "client":
                client_id = source[1]
                if item is None:
                    selector.remove(source)
                    clients.pop(client_id, None)
                    continue
                yield from ctx.compute(self.parse_cost)
                backend_key = self.route(item, sorted(self.backends))
                req_id = next(self._req_ids)
                pending[req_id] = client_id
                meta = dict(item.meta or {})
                meta["_proxy_req"] = req_id
                socks = backend_socks[backend_key]
                sock = socks[rr[backend_key] % len(socks)]
                rr[backend_key] += 1
                self.forwarded += 1
                self.per_backend[backend_key] += 1
                yield from ctx.send_message(sock, item.size, kind=item.kind, meta=meta)
            else:  # backend response
                if item is None:
                    selector.remove(source)
                    continue
                meta = dict(item.meta or {})
                req_id = meta.pop("_proxy_req", None)
                client_id = pending.pop(req_id, None)
                client_sock = clients.get(client_id)
                if client_sock is None or client_sock.state == "closed":
                    self.dropped_replies += 1
                    continue
                yield from ctx.compute(self.reply_cost)
                self.replied += 1
                yield from ctx.send_message(
                    client_sock, item.size, kind=item.kind, meta=meta
                )

    # ------------------------------------------------------------------

    def stats(self):
        return {
            "mode": self.mode,
            "connections": self.connections,
            "forwarded": self.forwarded,
            "replied": self.replied,
            "dropped_replies": self.dropped_replies,
            "per_backend": dict(self.per_backend),
        }


def hash_route(message, backend_keys):
    """Stable hash routing on the request's path/session token."""
    meta = message.meta or {}
    token = meta.get("path") or meta.get("session") or message.msg_id
    # crc32, not hash(): Python string hashing is per-process randomized
    # and would break run-to-run determinism.
    digest = zlib.crc32(str(token).encode("utf-8"))
    return backend_keys[digest % len(backend_keys)]


def field_route(field_name):
    """Route on an explicit metadata field (Apache's URL-prefix dispatch)."""

    def route(message, backend_keys):
        meta = message.meta or {}
        target = meta.get(field_name)
        if target in backend_keys:
            return target
        digest = zlib.crc32(str(target).encode("utf-8"))
        return backend_keys[digest % len(backend_keys)]

    return route
