"""Dynamic Window-Constrained Scheduling (DWCS).

Re-implementation of the algorithm of West/Schwan ("Window-Constrained
Process Scheduling for Linux Systems", RTLW 2001 — the paper's reference
[29]).  Each stream *i* has a request period ``T_i`` (every request's
deadline is its arrival plus ``T_i``) and an original window-constraint
``W_i = x_i / y_i``: at most ``x_i`` of any ``y_i`` consecutive requests
may miss their deadlines.

The scheduler keeps *current* constraints ``(x', y')`` per stream and
serves the eligible stream chosen by pairwise precedence rules:

1. earliest current deadline first;
2. equal deadlines → lowest current window-constraint ``W' = x'/y'``;
3. equal and zero ``W'`` → highest current window-denominator ``y'``;
4. equal and non-zero ``W'`` → lowest current ``x'``;
5. all equal → first-come-first-served.

Window adjustment on servicing stream *i* before its deadline::

    y_i' -= 1;  if y_i' == 0: (x_i', y_i') = (x_i, y_i)

and on a missed deadline::

    x_i' -= 1;  y_i' -= 1
    if x_i' == 0: stream is *critical* (W' == 0 beats any non-zero W')
    if x_i' <  0: window violation (counted; x' clamped to 0)
    if y_i' == 0: (x_i', y_i') = (x_i, y_i)
"""

from collections import deque


class DwcsStream:
    """One scheduled request class."""

    def __init__(self, name, period, x, y, priority_hint=0):
        if period <= 0:
            raise ValueError("period must be positive")
        if not (0 <= x <= y) or y <= 0:
            raise ValueError("window constraint needs 0 <= x <= y, y > 0")
        self.name = name
        self.period = period
        self.x = x
        self.y = y
        self.x_cur = x
        self.y_cur = y
        self.priority_hint = priority_hint
        self.queue = deque()
        self.arrivals = 0
        self.serviced = 0
        self.missed = 0
        self.dropped = 0
        self.violations = 0

    # ------------------------------------------------------------------

    @property
    def window_constraint(self):
        return self.x_cur / self.y_cur if self.y_cur else 0.0

    @property
    def head_deadline(self):
        return self.queue[0].deadline if self.queue else None

    def enqueue(self, request):
        request.deadline = request.arrival + self.period
        self.queue.append(request)
        self.arrivals += 1

    def pop(self):
        return self.queue.popleft()

    def _reset_window_if_done(self):
        if self.y_cur <= 0:
            self.x_cur = self.x
            self.y_cur = self.y

    def on_service(self, before_deadline):
        """Account one request leaving the queue for service."""
        if before_deadline:
            self.serviced += 1
            self.y_cur -= 1
            # Tolerable losses cannot exceed the packets left in the window.
            if self.x_cur > self.y_cur:
                self.x_cur = max(0, self.y_cur)
        else:
            self.missed += 1
            self.serviced += 1
            self._miss_adjust()
        self._reset_window_if_done()

    def on_drop(self):
        """Account one request shed without service (counts as a miss)."""
        self.dropped += 1
        self.missed += 1
        self._miss_adjust()
        self._reset_window_if_done()

    def _miss_adjust(self):
        self.x_cur -= 1
        self.y_cur -= 1
        if self.x_cur < 0:
            self.violations += 1
            self.x_cur = 0

    def stats(self):
        return {
            "name": self.name,
            "arrivals": self.arrivals,
            "serviced": self.serviced,
            "missed": self.missed,
            "dropped": self.dropped,
            "violations": self.violations,
            "queued": len(self.queue),
        }

    def __repr__(self):
        return "<DwcsStream {} W'={}/{} queued={}>".format(
            self.name, self.x_cur, self.y_cur, len(self.queue)
        )


class DwcsScheduler:
    """Pure scheduling core: holds streams, picks the next one to serve."""

    def __init__(self, drop_factor=None):
        """``drop_factor``: shed a request once it is more than
        ``drop_factor * period`` past its deadline (None = never shed)."""
        self.streams = {}
        self.drop_factor = drop_factor
        self._arrival_seq = 0

    def add_stream(self, stream):
        self.streams[stream.name] = stream
        return stream

    def stream(self, name):
        return self.streams[name]

    def submit(self, name, request):
        self._arrival_seq += 1
        request.seq = self._arrival_seq
        self.streams[name].enqueue(request)

    @property
    def backlog(self):
        return sum(len(stream.queue) for stream in self.streams.values())

    # ------------------------------------------------------------------

    def shed_late(self, now):
        """Drop requests hopelessly past their deadline; returns them."""
        if self.drop_factor is None:
            return []
        shed = []
        for stream in self.streams.values():
            horizon = self.drop_factor * stream.period
            while stream.queue and now > stream.queue[0].deadline + horizon:
                shed.append(stream.pop())
                stream.on_drop()
        return shed

    def pick(self, now):
        """Choose the next request: returns ``(stream, request)`` or ``None``.

        Applies the window adjustments for the serviced stream.
        """
        best = None
        for stream in self.streams.values():
            if not stream.queue:
                continue
            if best is None or self._precedes(stream, best):
                best = stream
        if best is None:
            return None
        request = best.pop()
        best.on_service(before_deadline=now <= request.deadline)
        return best, request

    @staticmethod
    def _precedes(a, b):
        """True when stream ``a`` takes precedence over stream ``b``."""
        da, db = a.head_deadline, b.head_deadline
        if da != db:
            return da < db
        wa, wb = a.window_constraint, b.window_constraint
        if wa != wb:
            return wa < wb
        if wa == 0.0:
            if a.y_cur != b.y_cur:
                return a.y_cur > b.y_cur
        elif a.x_cur != b.x_cur:
            return a.x_cur < b.x_cur
        return a.queue[0].seq < b.queue[0].seq

    def stats(self):
        return {name: stream.stats() for name, stream in self.streams.items()}
