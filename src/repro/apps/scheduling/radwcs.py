"""Resource-aware DWCS (RA-DWCS).

The paper's §3.3 extension: "a resource-aware DWCS can provide better QoS
guarantees as compared to the ordinary DWCS ... these requests were
routed by RA-DWCS to the server that was lightly loaded."  The DWCS
*scheduling* rules are unchanged; the *routing* decision consumes
SysProf's per-node load metrics, which reach the client through the same
kernel-level publish-subscribe channels the GPA uses (any node can
subscribe).
"""

from repro.core.gpa import GlobalPerformanceAnalyzer


class LoadMonitor:
    """A client-side subscriber to the ``nodestats`` channel.

    Reuses the GPA ingest/query machinery on the scheduler's node — the
    paper's hierarchical analysis: local analyzers feed any interested
    remote consumer, not only the central GPA.
    """

    def __init__(self, node, hub, port=9101):
        self.gpa = GlobalPerformanceAnalyzer(node, hub, port=port)
        hub.subscribe("sysprof/sysprof.nodestats", node.name, port)

    def start(self):
        self.gpa.start()
        return self

    def server_load(self, node_name):
        return self.gpa.server_load(node_name)


class ResourceAwareRouter:
    """Route each request to the least-loaded servlet with a free slot.

    Load score blends CPU utilization (dominant for bidding's CPU-bound
    work) with queue signals; servlets whose slots are exhausted are
    heavily penalized so dispatch never head-of-line blocks while a
    lighter server sits idle.
    """

    def __init__(self, servlet_names, load_monitor, utilization_weight=1.0,
                 runq_weight=0.02, pending_weight=0.01, slot_penalty=10.0):
        self.servlet_names = list(servlet_names)
        self.load_monitor = load_monitor
        self.utilization_weight = utilization_weight
        self.runq_weight = runq_weight
        self.pending_weight = pending_weight
        self.slot_penalty = slot_penalty
        self._rr = 0
        self.decisions = {name: 0 for name in self.servlet_names}

    def score(self, servlet, dispatcher):
        load = self.load_monitor.server_load(servlet)
        if load is None:
            # No telemetry yet: neutral score keeps routing balanced.
            value = 0.5
        else:
            value = (
                self.utilization_weight * min(2.0, load["cpu_utilization"])
                + self.runq_weight * load["run_queue"]
                + self.pending_weight * load["pending_interactions"]
            )
        if dispatcher.free_slots(servlet) == 0:
            value += self.slot_penalty
        return value

    def choose(self, request, dispatcher):
        best_name = None
        best_score = None
        offset = self._rr
        self._rr += 1
        count = len(self.servlet_names)
        for i in range(count):
            name = self.servlet_names[(offset + i) % count]
            value = self.score(name, dispatcher)
            if best_score is None or value < best_score:
                best_score = value
                best_name = name
        self.decisions[best_name] += 1
        return best_name
