"""Window-constrained request scheduling: DWCS and resource-aware DWCS."""

from repro.apps.scheduling.dwcs import DwcsScheduler, DwcsStream
from repro.apps.scheduling.dispatcher import (
    DispatchRecord,
    RequestDispatcher,
    RoundRobinRouter,
)
from repro.apps.scheduling.radwcs import LoadMonitor, ResourceAwareRouter

__all__ = [
    "DispatchRecord",
    "DwcsScheduler",
    "DwcsStream",
    "LoadMonitor",
    "RequestDispatcher",
    "ResourceAwareRouter",
    "RoundRobinRouter",
]
