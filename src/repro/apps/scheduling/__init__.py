"""Window-constrained request scheduling for the §3.3 RUBiS study:
the DWCS algorithm (West/Schwan) plus a resource-aware dispatcher
that consults SysProf's per-class service-time metrics when routing
requests, reproducing the paper's SLA-violation comparison."""

from repro.apps.scheduling.dwcs import DwcsScheduler, DwcsStream
from repro.apps.scheduling.dispatcher import (
    DispatchRecord,
    RequestDispatcher,
    RoundRobinRouter,
)
from repro.apps.scheduling.radwcs import LoadMonitor, ResourceAwareRouter

__all__ = [
    "DispatchRecord",
    "DwcsScheduler",
    "DwcsStream",
    "LoadMonitor",
    "RequestDispatcher",
    "ResourceAwareRouter",
    "RoundRobinRouter",
]
