"""Client-side request dispatcher driven by DWCS.

"The scheduler ran on the same node as the client and the request
dispatching was facilitated by prefixing the request's URL path with the
appropriate servlet server's name" (§3.3).  Sessions submit requests into
per-class DWCS streams; the dispatcher picks the next request by DWCS
precedence, stamps the target servlet (the router's decision — blind
round-robin for plain DWCS, load-aware for RA-DWCS), and sends it through
a per-servlet pool of connections to the front-end.  Each connection
carries one request at a time (a dispatch *slot*); when a servlet's slots
are all occupied the dispatcher head-of-line blocks, which is how a slow
server degrades every class under a blind router.
"""

from repro.sim.resources import Gate


class DispatchRecord:
    __slots__ = ("ts", "request_class", "latency", "servlet")

    def __init__(self, ts, request_class, latency, servlet):
        self.ts = ts
        self.request_class = request_class
        self.latency = latency
        self.servlet = servlet


class RoundRobinRouter:
    """Blind routing: alternate servlets regardless of their load."""

    def __init__(self, servlet_names):
        self.servlet_names = list(servlet_names)
        self._next = 0

    def choose(self, request, dispatcher):
        name = self.servlet_names[self._next % len(self.servlet_names)]
        self._next += 1
        return name


class RequestDispatcher:
    """DWCS-scheduled dispatcher with per-servlet connection slots."""

    def __init__(self, node, frontend, frontend_port, servlet_names, scheduler,
                 router=None, slots_per_servlet=12, name="dwcs-dispatcher",
                 shed_poll=20e-3):
        self.node = node
        self.frontend = frontend
        self.frontend_port = frontend_port
        self.servlet_names = list(servlet_names)
        self.scheduler = scheduler
        self.router = router or RoundRobinRouter(self.servlet_names)
        self.slots_per_servlet = slots_per_servlet
        self.name = name
        self.shed_poll = shed_poll
        self.completions = []
        self.drops = []
        self.dispatched = 0
        self._free = {name: [] for name in self.servlet_names}
        self._outstanding = {}
        self._work = Gate(node.sim)
        self._slot_free = Gate(node.sim)
        self.task = None
        self._stopped = False

    # ------------------------------------------------------------------

    def submit(self, request):
        """Session-side entry: queue a request into its DWCS stream."""
        self.scheduler.submit(request.name, request)
        self._work.fire()

    def stop(self):
        self._stopped = True
        self._work.fire()

    def free_slots(self, servlet):
        return len(self._free[servlet])

    def start(self):
        self.task = self.node.spawn(self.name, self._run)
        return self

    # ------------------------------------------------------------------

    def _run(self, ctx):
        # Open the connection pools (one slot = one connection).
        for servlet in self.servlet_names:
            for i in range(self.slots_per_servlet):
                sock = yield from ctx.connect(self.frontend, self.frontend_port)
                self._free[servlet].append(sock)
                ctx.spawn(
                    "{}-coll-{}-{}".format(self.name, servlet, i),
                    self._collector, sock, servlet,
                )
        while not self._stopped:
            now = ctx.now
            for request in self.scheduler.shed_late(now):
                self.drops.append(DispatchRecord(now, request.name, None, None))
            if self.scheduler.backlog == 0:
                yield from ctx.wait(self._work.wait(), reason="dwcs-idle")
                continue
            picked = self.scheduler.pick(ctx.now)
            if picked is None:
                continue
            _stream, request = picked
            servlet = self.router.choose(request, self)
            # Wait for a slot on the chosen servlet (head-of-line blocking:
            # the DWCS decision is already made).
            while not self._free[servlet] and not self._stopped:
                wakeup = ctx.sim.any_of(
                    [self._slot_free.wait(), ctx.sim.timeout(self.shed_poll)]
                )
                yield from ctx.wait(wakeup, reason="dwcs-slot")
                now = ctx.now
                for late in self.scheduler.shed_late(now):
                    self.drops.append(DispatchRecord(now, late.name, None, None))
            if self._stopped:
                break
            sock = self._free[servlet].pop()
            request.dispatched_at = ctx.now
            request.servlet = servlet
            meta = request.meta()
            meta["servlet"] = servlet
            self._outstanding[request.request_id] = request
            self.dispatched += 1
            yield from ctx.send_message(
                sock, request.profile.request_bytes, kind=request.name, meta=meta
            )
        return "dispatcher-stopped"

    def _collector(self, ctx, sock, servlet):
        while True:
            reply = yield from ctx.recv_message(sock)
            if reply is None:
                break
            meta = reply.meta or {}
            request = self._outstanding.pop(meta.get("req_id"), None)
            self._free[servlet].append(sock)
            self._slot_free.fire()
            if request is None:
                continue
            request.completed_at = ctx.now
            self.completions.append(
                DispatchRecord(
                    ctx.now, request.name, ctx.now - request.arrival, servlet
                )
            )

    # ------------------------------------------------------------------

    def throughput_series(self, bin_width=1.0, until=None):
        """Per-class responses/sec time series: {class: [(bin_start, rate)]}."""
        series = {}
        for record in self.completions:
            if until is not None and record.ts > until:
                continue
            bin_start = int(record.ts / bin_width) * bin_width
            series.setdefault(record.request_class, {}).setdefault(bin_start, 0)
            series[record.request_class][bin_start] += 1
        return {
            name: sorted(
                (start, count / bin_width) for start, count in bins.items()
            )
            for name, bins in series.items()
        }

    def mean_throughput(self, request_class, t0, t1):
        count = sum(
            1 for record in self.completions
            if record.request_class == request_class and t0 <= record.ts < t1
        )
        return count / (t1 - t0) if t1 > t0 else 0.0

    def stats(self):
        return {
            "dispatched": self.dispatched,
            "completed": len(self.completions),
            "dropped": len(self.drops),
            "streams": self.scheduler.stats(),
        }
