"""Case-study applications exercised by the paper's evaluation: the
proxied virtual storage service of §3.2, the RUBiS auction site and
window-constrained scheduling of §3.3, plus the shared event-driven
building blocks they are assembled from.  Each app runs unmodified on
the simulated cluster and is monitored externally by SysProf."""
