"""Case-study applications built on the simulated cluster."""
