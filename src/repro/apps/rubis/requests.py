"""RUBiS request classes and their resource profiles.

§3.3: "The bidding request is cpu intensive and consumes lot of cpu at
the servlet server which processes it.  The comment request on the other
hand generates significant network traffic."  Bidding carries real-time
SLAs (tight DWCS window); comments are best-effort-ish (loose window).
"""

from dataclasses import dataclass
from itertools import count

_request_ids = count(1)


@dataclass(frozen=True)
class RequestProfile:
    """Static description of one request class."""

    name: str
    request_bytes: int       # client -> front-end payload
    response_bytes: int      # servlet -> client payload
    servlet_cpu: float       # user CPU at the servlet
    db_op: str               # "read" | "write"
    db_bytes: int            # DB payload touched
    db_cpu: float            # CPU at the DB server
    period: float            # DWCS deadline period
    window_x: int            # DWCS loss numerator
    window_y: int            # DWCS loss denominator


BIDDING = RequestProfile(
    name="bidding",
    request_bytes=700,
    response_bytes=2200,
    servlet_cpu=5.0e-3,
    db_op="read",
    db_bytes=2048,
    db_cpu=120e-6,
    period=20e-3,
    window_x=1,
    window_y=10,
)

COMMENT = RequestProfile(
    name="comment",
    request_bytes=1600,
    response_bytes=40960,
    servlet_cpu=1.2e-3,
    db_op="write",
    db_bytes=4096,
    db_cpu=180e-6,
    period=80e-3,
    window_x=4,
    window_y=10,
)

PROFILES = {profile.name: profile for profile in (BIDDING, COMMENT)}


class Request:
    """One client request instance moving through the scheduler."""

    __slots__ = ("request_id", "profile", "session", "arrival", "deadline",
                 "seq", "dispatched_at", "servlet", "completed_at")

    def __init__(self, profile, session, arrival):
        self.request_id = next(_request_ids)
        self.profile = profile
        self.session = session
        self.arrival = arrival
        self.deadline = None
        self.seq = 0
        self.dispatched_at = None
        self.servlet = None
        self.completed_at = None

    @property
    def name(self):
        return self.profile.name

    def meta(self):
        return {
            "class": self.profile.name,
            "req_id": self.request_id,
            "session": self.session,
            "db_op": self.profile.db_op,
            "db_bytes": self.profile.db_bytes,
            "db_cpu": self.profile.db_cpu,
            "servlet_cpu": self.profile.servlet_cpu,
            "response_bytes": self.profile.response_bytes,
        }

    def __repr__(self):
        return "<Request #{} {} s{}>".format(
            self.request_id, self.profile.name, self.session
        )
