"""Assembly of the RUBiS multi-tier site.

client node  ->  apache (front-end router)  ->  servlet1/servlet2  ->  db

"Apache server was configured to multiplex the requests to the different
backend server depending on these prefixes" — the front-end routes on the
``servlet`` metadata field the client-side scheduler stamps on each
request (the paper's URL-prefix trick).
"""

from repro.apps.common.proxy import ForwardingProxy, field_route
from repro.apps.rubis.db import DbServer
from repro.apps.rubis.servlet import SERVLET_PORT, ServletServer

HTTP_PORT = 80


class RubisSite:
    """Builds apache + servlet tier + db on an existing cluster."""

    def __init__(self, cluster, apache_node, servlet_nodes, db_node,
                 http_port=HTTP_PORT):
        self.cluster = cluster
        self.apache_node_name = apache_node
        self.servlet_node_names = list(servlet_nodes)
        self.db_node_name = db_node
        self.http_port = http_port
        self.db = DbServer(cluster.node(db_node))
        self.servlets = {
            name: ServletServer(cluster.node(name), db_node)
            for name in self.servlet_node_names
        }
        self.apache = ForwardingProxy(
            cluster.node(apache_node),
            listen_port=http_port,
            backends={name: (name, SERVLET_PORT) for name in self.servlet_node_names},
            route=field_route("servlet"),
            parse_cost=35e-6,
            reply_cost=20e-6,
            name="apache",
            mode="worker",
        )
        self._load_tasks = []

    def start(self):
        self.db.start()
        for servlet in self.servlets.values():
            servlet.start()
        self.apache.start()
        return self

    # ------------------------------------------------------------------

    def inject_cpu_load(self, servlet_node, start, duration, duty=0.75,
                        chunk=5e-3, band=None):
        """Schedule a CPU hog on one servlet node (the mid-run perturbation).

        The hog alternates ``chunk`` seconds of CPU with idle time to hold
        average utilization at ``duty``.  It runs in the kernel band by
        default — higher-priority background load that genuinely steals
        capacity from the servlet's user-level handlers (a user-band hog
        would simply be round-robin fair-shared away).
        """
        from repro.ossim.task import BAND_KERNEL

        node = self.cluster.node(servlet_node)
        band = BAND_KERNEL if band is None else band
        mode = "kernel" if band == BAND_KERNEL else "user"

        def hog(ctx):
            yield from ctx.sleep(max(0.0, start - ctx.now))
            end = ctx.now + duration
            idle = chunk * (1.0 - duty) / duty
            while ctx.now < end:
                if mode == "kernel":
                    yield from ctx.kcompute(chunk)
                else:
                    yield from ctx.compute(chunk)
                yield from ctx.sleep(idle)
            return "hog-done"

        task = node.spawn("batch-load", hog, band=band)
        self._load_tasks.append(task)
        return task

    def stats(self):
        return {
            "apache": self.apache.stats(),
            "servlets": {name: servlet.stats() for name, servlet in self.servlets.items()},
            "db": self.db.stats(),
        }
