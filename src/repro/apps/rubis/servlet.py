"""RUBiS servlet servers (the Java HTTP servlets tier)."""

from repro.apps.rubis.db import DB_PORT

SERVLET_PORT = 8009

#: CPU to decode the HTTP request and set up the servlet call.
DISPATCH_COST = 80e-6


class ServletServer:
    """One servlet container; a handler task per front-end connection.

    Per request: class-specific user CPU (bidding is CPU-heavy), one DB
    query over a per-handler connection, and a class-sized response
    (comments return large pages — "significant network traffic").
    """

    def __init__(self, node, db_node, port=SERVLET_PORT, name=None):
        self.node = node
        self.db_node = db_node
        self.port = port
        self.name = name or "servlet-{}".format(node.name)
        self.requests = 0
        self.by_class = {}
        self.task = None

    def start(self):
        self.task = self.node.spawn(self.name, self._acceptor)
        return self

    def _acceptor(self, ctx):
        lsock = yield from ctx.listen(self.port)
        index = 0
        while True:
            sock = yield from ctx.accept(lsock)
            ctx.spawn("{}-h{}".format(self.name, index), self._handler, sock)
            index += 1

    def _handler(self, ctx, sock):
        db_sock = yield from ctx.connect(self.db_node, DB_PORT)
        while True:
            request = yield from ctx.recv_message(sock)
            if request is None:
                break
            meta = dict(request.meta or {})
            self.requests += 1
            name = meta.get("class", "unknown")
            self.by_class[name] = self.by_class.get(name, 0) + 1
            yield from ctx.compute(DISPATCH_COST)
            # Class-specific servlet computation (bidding is CPU-intensive).
            yield from ctx.compute(meta.get("servlet_cpu", 1e-3))
            # One database round trip.
            yield from ctx.send_message(db_sock, 300, kind="db-query", meta=meta)
            reply = yield from ctx.recv_message(db_sock)
            if reply is None:
                break
            response_bytes = meta.get("response_bytes", 2048)
            yield from ctx.send_message(
                sock, response_bytes, kind=meta.get("class", "reply"), meta=meta
            )
        yield from ctx.close(db_sock)

    def stats(self):
        return {"requests": self.requests, "by_class": dict(self.by_class)}
