"""The RUBiS auction site: front-end, servlet tier, database."""

from repro.apps.rubis.db import DB_PORT, DbServer
from repro.apps.rubis.requests import BIDDING, COMMENT, PROFILES, Request, RequestProfile
from repro.apps.rubis.servlet import SERVLET_PORT, ServletServer
from repro.apps.rubis.site import HTTP_PORT, RubisSite

__all__ = [
    "BIDDING",
    "COMMENT",
    "DB_PORT",
    "DbServer",
    "HTTP_PORT",
    "PROFILES",
    "Request",
    "RequestProfile",
    "RubisSite",
    "SERVLET_PORT",
    "ServletServer",
]
