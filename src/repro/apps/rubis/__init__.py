"""The RUBiS auction site of paper §3.3: an HTTP front-end router, a
tier of servlet servers, and a database tier.  Request classes carry
distinct resource profiles (bidding is CPU-heavy, comment browsing is
network-heavy), which is what makes per-class SysProf metrics useful
to the resource-aware dispatcher."""

from repro.apps.rubis.db import DB_PORT, DbServer
from repro.apps.rubis.requests import BIDDING, COMMENT, PROFILES, Request, RequestProfile
from repro.apps.rubis.servlet import SERVLET_PORT, ServletServer
from repro.apps.rubis.site import HTTP_PORT, RubisSite

__all__ = [
    "BIDDING",
    "COMMENT",
    "DB_PORT",
    "DbServer",
    "HTTP_PORT",
    "PROFILES",
    "Request",
    "RequestProfile",
    "RubisSite",
    "SERVLET_PORT",
    "ServletServer",
]
