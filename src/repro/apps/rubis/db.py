"""The RUBiS database tier: a simple query server over the VFS."""

DB_PORT = 3306

#: CPU to parse one query and plan it.
QUERY_PARSE_COST = 60e-6


class DbServer:
    """Accepts connections from servlets; one handler task per connection."""

    def __init__(self, node, port=DB_PORT, name="mysqld", working_set_bytes=4 << 20):
        if node.kernel.vfs is None:
            raise ValueError("DB node {} needs with_disk=True".format(node.name))
        self.node = node
        self.port = port
        self.name = name
        self.working_set_bytes = working_set_bytes
        self.queries = 0
        self.reads = 0
        self.writes = 0
        self.task = None

    def start(self):
        self.task = self.node.spawn(self.name, self._acceptor)
        return self

    def _acceptor(self, ctx):
        # Listen before the warm-up scan so early connections queue in the
        # backlog instead of being refused.
        lsock = yield from ctx.listen(self.port)
        # Pre-existing tables: size the file and warm the page cache with
        # one sequential scan (a single coalesced disk read).
        handle = yield from ctx.open("/var/lib/rubis/tables.db")
        handle.inode.size = self.working_set_bytes
        yield from ctx.read(handle, self.working_set_bytes, offset=0)
        yield from ctx.close_file(handle)
        index = 0
        while True:
            sock = yield from ctx.accept(lsock)
            ctx.spawn("{}-h{}".format(self.name, index), self._handler, sock)
            index += 1

    def _handler(self, ctx, sock):
        handle = yield from ctx.open("/var/lib/rubis/tables.db")
        while True:
            query = yield from ctx.recv_message(sock)
            if query is None:
                break
            meta = query.meta or {}
            self.queries += 1
            yield from ctx.compute(QUERY_PARSE_COST + meta.get("db_cpu", 100e-6))
            nbytes = meta.get("db_bytes", 2048)
            offset = (self.queries * 7919 * 4096) % self.working_set_bytes
            if meta.get("db_op") == "write":
                self.writes += 1
                yield from ctx.write(handle, nbytes, offset=offset, sync=False)
                reply_bytes = 96
            else:
                self.reads += 1
                yield from ctx.read(handle, nbytes, offset=offset)
                reply_bytes = 96 + nbytes
            yield from ctx.send_message(sock, reply_bytes, kind="db-reply", meta=meta)

    def stats(self):
        return {"queries": self.queries, "reads": self.reads, "writes": self.writes}
