"""Iperf-like bulk TCP throughput benchmark.

Reproduces the paper's §3.1 bandwidth microbenchmark: a sender streams
as fast as flow control allows; the receiver measures goodput.  On the
1 Gbps testbed the baseline is CPU-limited near 930 Mbps and enabling
SysProf costs ≈13%; on a 100 Mbps LAN the link is the limit and overhead
is small.

``frame_batch`` aggregates several MTU frames into one simulated packet
(costs scaled accordingly) to keep event counts manageable at gigabit
rates; it is a simulation-speed knob, not a model change.
"""

IPERF_PORT = 5001


class IperfResult:
    def __init__(self, bytes_received, duration, messages):
        self.bytes_received = bytes_received
        self.duration = duration
        self.messages = messages

    @property
    def mbps(self):
        if self.duration <= 0:
            return 0.0
        return self.bytes_received * 8.0 / self.duration / 1e6

    def __repr__(self):
        return "<IperfResult {:.1f} Mbps over {:.3f}s>".format(self.mbps, self.duration)


class IperfRun:
    """Wires up a sender/receiver pair; read :attr:`result` after running."""

    def __init__(self, sender_node, receiver_node, duration=0.5,
                 message_bytes=65536, frame_batch=4, port=IPERF_PORT):
        self.sender_node = sender_node
        self.receiver_node = receiver_node
        self.duration = duration
        self.message_bytes = message_bytes
        self.frame_batch = frame_batch
        self.port = port
        self.result = None
        self._rx_bytes = 0
        self._rx_messages = 0
        self._started_at = None

    def start(self):
        self.receiver_node.spawn("iperf-server", self._receiver)
        self.sender_node.spawn("iperf-client", self._sender)
        return self

    def _receiver(self, ctx):
        lsock = yield from ctx.listen(self.port)
        sock = yield from ctx.accept(lsock)
        start = ctx.now
        while True:
            message = yield from ctx.recv_message(sock)
            if message is None:
                break
            self._rx_bytes += message.size
            self._rx_messages += 1
        elapsed = ctx.now - start
        self.result = IperfResult(self._rx_bytes, elapsed, self._rx_messages)
        return self.result

    def _sender(self, ctx):
        sock = yield from ctx.connect(self.receiver_node.name, self.port)
        self._started_at = ctx.now
        end = ctx.now + self.duration
        while ctx.now < end:
            yield from ctx.send_message(
                sock, self.message_bytes, kind="iperf", frame_batch=self.frame_batch
            )
        yield from ctx.close(sock)

    def snapshot_mbps(self, now):
        """Current goodput estimate while the run is still in flight."""
        if self._started_at is None or now <= self._started_at:
            return 0.0
        return self._rx_bytes * 8.0 / (now - self._started_at) / 1e6


def run_iperf(cluster, sender, receiver, duration=0.5, message_bytes=65536,
              frame_batch=4, settle=0.2):
    """Convenience: run an iperf pair to completion and return the result."""
    run = IperfRun(
        cluster.node(sender), cluster.node(receiver),
        duration=duration, message_bytes=message_bytes, frame_batch=frame_batch,
    ).start()
    cluster.sim.run(until=cluster.sim.now + duration + settle)
    if run.result is None:
        # Receiver still waiting on a final partial message; use counters.
        run.result = IperfResult(run._rx_bytes, duration, run._rx_messages)
    return run.result
