"""Iozone-like filesystem workload generator.

§3.2: "We configured Iozone to generate write/re-write tests and varied
the number of threads it forks to see the effect on resource usage."
Each thread owns one file and performs sequential records of
``record_bytes`` over its own NFS mount, then optionally a re-write pass
over the same range.

``stable=False`` with ``commit_every`` models iozone over the kernel
NFSv3 client (write-behind + periodic COMMIT); ``stable=True`` models
NFSv2-era synchronous writes.
"""

from dataclasses import dataclass, field

from repro.apps.nfs.client import NfsMount


@dataclass
class IozoneConfig:
    threads: int = 4
    ops_per_thread: int = 50
    record_bytes: int = 16384
    rewrite: bool = True
    lookup_first: bool = True
    pipeline: int = 4
    stable: bool = False
    commit_every: int = 8


@dataclass
class IozoneResults:
    """Per-RPC completion log: (timestamp, thread, op, latency)."""

    operations: list = field(default_factory=list)
    threads_done: int = 0

    def record(self, ts, thread, op, latency):
        self.operations.append((ts, thread, op, latency))

    @property
    def count(self):
        return len(self.operations)

    def latencies(self, op=None):
        return [
            latency
            for _, _, record_op, latency in self.operations
            if op is None or record_op == op
        ]

    @property
    def mean_latency(self):
        values = self.latencies()
        return sum(values) / len(values) if values else 0.0


def spawn_iozone(node, server, config, results, name_prefix=None):
    """Start ``config.threads`` iozone threads on ``node`` against ``server``.

    Returns the spawned tasks; each logs per-RPC latencies into
    ``results`` and bumps ``threads_done`` on completion.
    """
    prefix = name_prefix or "iozone-{}".format(node.name)
    tasks = []
    for thread_id in range(config.threads):
        path = "/data/{}/file{}".format(node.name, thread_id)
        tasks.append(
            node.spawn(
                "{}-t{}".format(prefix, thread_id),
                _iozone_thread, server, config, results, thread_id, path,
            )
        )
    return tasks


def _iozone_thread(ctx, server, config, results, thread_id, path):
    mount = NfsMount(
        ctx, server, pipeline=config.pipeline,
        on_complete=lambda ts, op, _path, latency: results.record(
            ts, thread_id, op, latency
        ),
    )
    yield from mount.connect()
    if config.lookup_first:
        yield from mount.lookup(path)
    passes = 2 if config.rewrite else 1
    for _pass in range(passes):
        since_commit = 0
        for op in range(config.ops_per_thread):
            offset = op * config.record_bytes
            yield from mount.write(
                path, offset, config.record_bytes, stable=config.stable
            )
            since_commit += 1
            if not config.stable and since_commit >= config.commit_every:
                yield from mount.commit(path)
                since_commit = 0
        if config.stable:
            yield from mount.drain()
        elif since_commit:
            yield from mount.commit(path)
    yield from mount.close()
    results.threads_done += 1
    return mount.mean_latency
