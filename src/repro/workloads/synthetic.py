"""Synthetic telemetry load for many-node federation runs.

Driving a 256–1000 node cluster with real RPC workloads would spend
most of the simulation budget on the workload itself; the federation
benchmark only needs each monitored node to *emit* realistic telemetry
volume.  These LPAs skip Kprof entirely: on every daemon eviction tick
they synthesize one window of per-class quantile-sketch rows and class
summaries from the node's seeded RNG substream, then flow through the
real buffer → daemon → frame → channel pipeline, so encode costs,
daemon CPU, and wire bytes stay faithful while the request path is
elided.

Determinism: each node draws from its own named substream
(``synthetic.<node>``), so adding or removing other nodes never shifts
a node's sample sequence.
"""

import math

from repro.core.lpa import (
    CLASS_SUMMARY_FORMAT,
    SKETCH_FORMAT,
    LocalPerformanceAnalyzer,
)
from repro.observability.sketches import QuantileSketch


class SyntheticSketchLPA(LocalPerformanceAnalyzer):
    """Emits one ``sysprof.sketch`` latency row per request class per
    eviction window, populated from seeded lognormal draws."""

    record_format = SKETCH_FORMAT

    def __init__(self, kernel, kprof, rng, request_classes=("rpc",),
                 samples_per_window=32, median_latency=0.002, sigma=0.5,
                 load_factor=1.0, alpha=0.01, max_buckets=256,
                 name="synthetic-sketch", buffer_capacity=64,
                 on_buffer_full=None):
        super().__init__(
            kernel, kprof, name,
            buffer_capacity=buffer_capacity, on_buffer_full=on_buffer_full,
        )
        self.rng = rng
        self.request_classes = tuple(request_classes)
        self.samples_per_window = samples_per_window
        self.mu = math.log(median_latency * load_factor)
        self.sigma = sigma
        self.alpha = alpha
        self.max_buckets = max_buckets
        self.rows_emitted = 0
        self._window_start = kernel.sim.now

    def _subscribe(self):
        """Synthetic: no Kprof events."""

    def sample(self):
        """Daemon timer hook: synthesize this window's latency sketches."""
        now = self.kernel.clock.local_time(self.kernel.sim.now)
        for request_class in self.request_classes:
            sketch = QuantileSketch(alpha=self.alpha, max_buckets=self.max_buckets)
            for _ in range(self.samples_per_window):
                sketch.add(self.rng.lognormvariate(self.mu, self.sigma))
            self.buffer.append(
                sketch.to_row(
                    self.kernel.name, request_class, "latency",
                    self._window_start, now,
                )
            )
            self.rows_emitted += 1
        self._window_start = now


class SyntheticClassLPA(LocalPerformanceAnalyzer):
    """Emits one ``sysprof.class_summary`` row per request class per
    eviction window with internally consistent residency components
    (kernel_time ≥ kernel_wait; latency ≥ kernel + user), so federated
    blame reconstruction from summaries stays meaningful.

    ``load_factor`` scales the node's mean latency — mark one node hot
    to give blame descent an unambiguous culprit.
    """

    record_format = CLASS_SUMMARY_FORMAT

    def __init__(self, kernel, kprof, rng, request_classes=("rpc",),
                 count_per_window=32, mean_latency=0.002, load_factor=1.0,
                 bytes_per_request=1024, name="synthetic-class",
                 buffer_capacity=64, on_buffer_full=None):
        super().__init__(
            kernel, kprof, name,
            buffer_capacity=buffer_capacity, on_buffer_full=on_buffer_full,
        )
        self.rng = rng
        self.request_classes = tuple(request_classes)
        self.count_per_window = count_per_window
        self.mean_latency = mean_latency * load_factor
        self.bytes_per_request = bytes_per_request
        self.rows_emitted = 0
        self._window_start = kernel.sim.now

    def _subscribe(self):
        """Synthetic: no Kprof events."""

    def sample(self):
        """Daemon timer hook: synthesize this window's class summaries."""
        now = self.kernel.clock.local_time(self.kernel.sim.now)
        for request_class in self.request_classes:
            # ±20% seeded jitter around the configured mean; residency
            # split 60% kernel (half of it wait) / 25% user / 15% other.
            latency = self.mean_latency * (0.8 + 0.4 * self.rng.random())
            kernel_time = 0.6 * latency
            kernel_wait = 0.5 * kernel_time
            user_time = 0.25 * latency
            count = self.count_per_window
            self.buffer.append((
                self.kernel.name, request_class, self._window_start, now,
                count, latency, kernel_time, user_time, kernel_wait,
                count * self.bytes_per_request,
            ))
            self.rows_emitted += 1
        self._window_start = now


def install_synthetic_load(sysprof, request_classes=("rpc",),
                           samples_per_window=32, count_per_window=32,
                           mean_latency=0.002, hot_nodes=None,
                           hot_factor=4.0, sketches=True, summaries=True):
    """Attach synthetic LPAs to every monitored node of ``sysprof``.

    Returns ``{node: [lpas]}``.  ``hot_nodes`` get their latencies
    scaled by ``hot_factor`` so diagnosis has a real offender to find.
    Call after :meth:`SysProf.install` and before :meth:`SysProf.start`;
    the daemon's eviction timer drives emission, no start needed here.
    """
    hot = set(hot_nodes or ())
    streams = sysprof.cluster.streams
    installed = {}
    for node_name, monitor in sysprof.monitors.items():
        rng = streams.stream("synthetic.{}".format(node_name))
        factor = hot_factor if node_name in hot else 1.0
        lpas = []
        if sketches:
            lpa = SyntheticSketchLPA(
                monitor.kernel, monitor.kprof, rng,
                request_classes=request_classes,
                samples_per_window=samples_per_window,
                median_latency=mean_latency, load_factor=factor,
            )
            monitor.daemon.add_lpa(lpa)
            lpas.append(lpa)
        if summaries:
            lpa = SyntheticClassLPA(
                monitor.kernel, monitor.kprof, rng,
                request_classes=request_classes,
                count_per_window=count_per_window,
                mean_latency=mean_latency, load_factor=factor,
            )
            monitor.daemon.add_lpa(lpa)
            lpas.append(lpa)
        installed[node_name] = lpas
    return installed
