"""Linpack-like pure-CPU benchmark.

Used for the paper's §3.1 microbenchmark: "There was no change in the
mflops measured by linpack due to SysProf ... SysProf generates more
activities when there are network interactions, so linpack was probably
not a very good benchmark" — i.e. a CPU-bound, network-silent workload
must see (almost) no perturbation.  Each iteration models a fixed number
of floating-point operations executed at the node's calibrated rate.
"""

#: Simulated floating-point throughput of the testbed CPU (2.8 GHz, one
#: FLOP per cycle sustained on linpack's DGEFA inner loops).
FLOPS_PER_SECOND = 2.8e9

#: FLOPs per benchmark iteration (one smallish DGEFA/DGESL solve).
FLOPS_PER_ITERATION = 2.0e6


class LinpackResult:
    def __init__(self, iterations, flops, elapsed):
        self.iterations = iterations
        self.flops = flops
        self.elapsed = elapsed

    @property
    def mflops(self):
        return self.flops / self.elapsed / 1e6 if self.elapsed > 0 else 0.0

    def __repr__(self):
        return "<LinpackResult {:.1f} MFLOPS over {:.3f}s>".format(
            self.mflops, self.elapsed
        )


def spawn_linpack(node, duration, done=None):
    """Run linpack on ``node`` for ``duration`` simulated seconds.

    Returns the task; its ``exit_value`` is a :class:`LinpackResult`.
    """

    def linpack(ctx):
        start = ctx.now
        end = start + duration
        iterations = 0
        per_iteration = FLOPS_PER_ITERATION / FLOPS_PER_SECOND
        while ctx.now < end:
            yield from ctx.compute(per_iteration)
            iterations += 1
        result = LinpackResult(
            iterations, iterations * FLOPS_PER_ITERATION, ctx.now - start
        )
        if done is not None:
            done(result)
        return result

    return node.spawn("linpack", linpack)
