"""Workload generators mirroring the paper's load drivers: iperf
streaming and linpack compute for the §3.1 microbenchmarks, iozone
multi-thread writes for the §3.2 storage study, and httperf-style
Poisson HTTP sessions for the §3.3 RUBiS study — all seeded from the
cluster RNG so the offered load is deterministic."""

from repro.workloads.httperf import HttperfConfig, HttperfStats, spawn_httperf
from repro.workloads.iozone import IozoneConfig, IozoneResults, spawn_iozone
from repro.workloads.iperf import IperfResult, IperfRun, run_iperf
from repro.workloads.linpack import LinpackResult, spawn_linpack
from repro.workloads.synthetic import (
    SyntheticClassLPA,
    SyntheticSketchLPA,
    install_synthetic_load,
)

__all__ = [
    "HttperfConfig",
    "HttperfStats",
    "IozoneConfig",
    "IozoneResults",
    "IperfResult",
    "IperfRun",
    "LinpackResult",
    "SyntheticClassLPA",
    "SyntheticSketchLPA",
    "install_synthetic_load",
    "run_iperf",
    "spawn_httperf",
    "spawn_iozone",
    "spawn_linpack",
]
