"""Workload generators: iperf, linpack, iozone, httperf analogs."""

from repro.workloads.httperf import HttperfConfig, HttperfStats, spawn_httperf
from repro.workloads.iozone import IozoneConfig, IozoneResults, spawn_iozone
from repro.workloads.iperf import IperfResult, IperfRun, run_iperf
from repro.workloads.linpack import LinpackResult, spawn_linpack

__all__ = [
    "HttperfConfig",
    "HttperfStats",
    "IozoneConfig",
    "IozoneResults",
    "IperfResult",
    "IperfRun",
    "LinpackResult",
    "run_iperf",
    "spawn_httperf",
    "spawn_iozone",
    "spawn_linpack",
]
