"""httperf-like open-loop request generation.

§3.3: "These requests were generated using httperf on a separate client
machine.  60 client sessions were created and half of them generated high
priority bidding requests and the other half generated low priority
comment requests.  Each request class has a Poisson arrival distribution
with mean rate equal to 150 requests/sec."
"""

from dataclasses import dataclass, field

from repro.apps.rubis.requests import BIDDING, COMMENT, Request


@dataclass
class HttperfConfig:
    profiles: tuple = (BIDDING, COMMENT)
    sessions_per_class: int = 30
    rate_per_class: float = 150.0
    duration: float = 60.0
    start: float = 0.0


@dataclass
class HttperfStats:
    generated: dict = field(default_factory=dict)
    sessions_done: int = 0

    def note(self, class_name):
        self.generated[class_name] = self.generated.get(class_name, 0) + 1


def spawn_httperf(node, dispatcher, config, streams, stats=None):
    """Start all sessions on ``node``; requests go to ``dispatcher``.

    ``streams`` is the cluster's :class:`~repro.sim.rng.RandomStreams`;
    each session gets an independent substream so monitor-on/off runs see
    identical arrival processes.
    """
    stats = stats if stats is not None else HttperfStats()
    tasks = []
    for profile in config.profiles:
        session_rate = config.rate_per_class / config.sessions_per_class
        for session in range(config.sessions_per_class):
            rng = streams.stream(
                "httperf/{}/{}".format(profile.name, session)
            )
            tasks.append(
                node.spawn(
                    "httperf-{}-{}".format(profile.name, session),
                    _session, dispatcher, profile, session, session_rate,
                    config, rng, stats,
                )
            )
    return tasks, stats


def _session(ctx, dispatcher, profile, session, rate, config, rng, stats):
    if config.start > ctx.now:
        yield from ctx.sleep(config.start - ctx.now)
    end = config.start + config.duration
    while True:
        gap = rng.expovariate(rate)
        if ctx.now + gap >= end:
            break
        yield from ctx.sleep(gap)
        # Building the request costs a hair of user CPU (httperf itself).
        yield from ctx.compute(5e-6)
        stats.note(profile.name)
        dispatcher.submit(Request(profile, session, ctx.now))
    stats.sessions_done += 1
    return stats.generated.get(profile.name, 0)
