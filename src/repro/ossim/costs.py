"""Calibrated CPU/IO cost constants for the simulated kernel.

All durations are **seconds of simulated CPU time**.  The defaults are
calibrated against the paper's testbed — a 2.8 GHz uniprocessor with
1 Gbps Ethernet running Linux 2.4.19 — such that the baseline
(monitoring off) reproduces the paper's first-order numbers:

* receive-side network processing ≈ 12.9 µs per 1500-byte frame, making
  an iperf stream CPU-limited at roughly 930 Mbps on a 1 Gbps link
  (paper §3.1);
* context switch ≈ 5 µs, syscall entry/exit ≈ 1 µs (era-typical
  lmbench-style numbers for that hardware);
* one NFS-sized disk operation ≈ 7–9 ms (seek + rotation + transfer).

Experiments may override any field; every consumer takes the model as a
constructor argument rather than reading globals.
"""

from dataclasses import dataclass, field, replace


@dataclass
class CostModel:
    """Per-operation simulated CPU/IO costs (seconds unless noted)."""

    # -- CPU scheduling ------------------------------------------------
    context_switch: float = 5e-6
    quantum: float = 10e-3
    wakeup: float = 1e-6

    # -- syscall layer -------------------------------------------------
    syscall_entry: float = 0.5e-6
    syscall_exit: float = 0.5e-6

    # -- network transmit path (per packet unless noted) ----------------
    net_tx_sock: float = 2.0e-6        # socket + TCP send processing
    net_tx_ip: float = 1.5e-6
    net_tx_driver: float = 1.5e-6
    net_tx_per_byte: float = 0.6e-9    # user->kernel copy + checksum

    # -- network receive path (per packet unless noted) -----------------
    net_rx_driver: float = 3.0e-6      # interrupt + driver
    net_rx_ip: float = 3.0e-6
    net_rx_transport: float = 4.0e-6   # TCP + socket demux
    net_rx_per_byte: float = 0.8e-9    # DMA-adjacent copies + checksum
    sock_enqueue: float = 1.0e-6
    sock_copy_per_byte: float = 0.5e-9  # kernel->user copy at recv

    # -- filesystem / block layer ---------------------------------------
    fs_op: float = 2.0e-6              # VFS dispatch per call
    page_copy: float = 2.0e-6          # copy one 4 KB page cache<->user
    blk_issue: float = 3.0e-6          # request queue handling per request

    # -- wire parameters -------------------------------------------------
    mtu: int = 1448                    # TCP payload per frame
    sock_buffer_bytes: int = 262144    # default receive window

    # -- disk geometry ----------------------------------------------------
    disk_seek: float = 4.0e-3
    disk_rotation: float = 3.0e-3      # average rotational latency
    disk_transfer_bps: float = 60e6    # bytes/second media rate

    # -- monitoring (SysProf) costs ---------------------------------------
    probe_fire: float = 0.20e-6        # Kprof event emission, subscriber present
    probe_disabled: float = 0.0        # compiled-out cost when off
    lpa_callback: float = 0.25e-6      # default per-event LPA callback cost
    record_encode: float = 0.5e-6      # PBIO-encode one record
    record_copy: float = 0.2e-6        # daemon copying one record out of a buffer
    buffer_switch: float = 2.0e-6      # per-CPU buffer swap w/ interrupts off
    # Fixed per-frame cost of the batched dissemination path (header pack
    # + channel dispatch).  A frame header is a handful of machine ops on
    # the calibrated 2.8 GHz testbed — negligible next to the per-record
    # marshal charged via ``record_encode`` — so the default is zero and
    # the frame/per-record paths charge identical simulated CPU.  Raise
    # it for framing-overhead ablations.
    frame_encode_base: float = 0.0
    # The text-encoding ablation ships repr() lines instead of PBIO
    # binary; producing them costs this many extra multiples of
    # ``record_encode`` per record (daemon._publish charges
    # ``record_encode * (1 + text_encode_multiplier)`` in total).
    # Referenced from docs/performance.md ("Dissemination path").
    text_encode_multiplier: float = 9.0
    # Re-dial bookkeeping on the dissemination daemon's failure path:
    # tearing down + re-arming an endpoint after a failed publish, and
    # the cheap clock check deciding whether an endpoint is still inside
    # its backoff window.  Charged so recovery overhead stays emergent
    # in the CPU accounting rather than free.
    daemon_reconnect: float = 5e-6
    daemon_backoff_probe: float = 0.1e-6
    # Streaming diagnosis sketches: one log-bucket increment per observed
    # interaction metric (a log, a ceil, a hash update) and one GPA-side
    # merge of a whole serialized sketch row into the store.  Charged via
    # the ledger's "analyzer" category so drill-down overhead is emergent.
    sketch_update: float = 0.3e-6
    sketch_merge: float = 2.0e-6

    extra: dict = field(default_factory=dict)

    def override(self, **changes):
        """A copy of the model with the given fields replaced."""
        return replace(self, **changes)

    def rx_packet_cost(self, size, frames=1):
        """Total receive-side kernel CPU for one (possibly aggregated) packet."""
        per_frame = self.net_rx_driver + self.net_rx_ip + self.net_rx_transport
        return per_frame * frames + self.net_rx_per_byte * size + self.sock_enqueue

    def tx_packet_cost(self, size, frames=1):
        """Total transmit-side kernel CPU for one (possibly aggregated) packet."""
        per_frame = self.net_tx_sock + self.net_tx_ip + self.net_tx_driver
        return per_frame * frames + self.net_tx_per_byte * size

    def disk_op_cost(self, nbytes, sequential=False):
        """Service time for one disk request."""
        positioning = 0.0 if sequential else self.disk_seek + self.disk_rotation
        return positioning + nbytes / self.disk_transfer_bps


DEFAULT_COSTS = CostModel()
