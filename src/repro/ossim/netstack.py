"""The kernel network stack: segmentation, TX/RX protocol processing.

Transmit runs in the sending task's kernel context (as in Linux, where
``send()`` does protocol processing on the caller's time).  Receive runs
in interrupt context (``BAND_IRQ``), which preempts whatever task is
running — the "system-level asynchrony" the paper identifies as the
reason user-level monitors mis-attribute resource usage.

Every packet crossing a layer fires the corresponding static tracepoint;
per-layer timestamps are backfilled from the contiguous CPU segment the
processing ran in, so per-layer latencies (Figure 1's L values) are exact.
"""

import math

from repro.netsim.packet import Packet
from repro.ossim.task import BAND_IRQ
from repro.ossim import tracepoints as tp

_TX_EVENTS = (tp.NET_TX_SOCK, tp.NET_TX_IP, tp.NET_TX_DRIVER)
_RX_EVENTS = (tp.NET_RX_DRIVER, tp.NET_RX_IP, tp.NET_RX_TRANSPORT, tp.SOCK_ENQUEUE)


class NetStack:
    def __init__(self, kernel, nic, costs):
        self.kernel = kernel
        self.nic = nic
        self.costs = costs
        nic.rx_handler = self._rx_interrupt
        self.tx_packets = 0
        self.rx_packets = 0
        self.rx_no_socket = 0

    # ------------------------------------------------------------------
    # transmit path (generator; runs inside the sender's syscall)
    # ------------------------------------------------------------------

    def tx_message(self, task, sock, message, frame_batch=1):
        """Segment ``message`` and push it through flow control + NIC.

        ``frame_batch`` > 1 aggregates that many MTU frames into one
        simulated packet (costs scaled by frame count) — a documented
        simulation speed knob for high-rate streams.
        """
        costs = self.costs
        tracepoints = self.kernel.tracepoints
        chunk_limit = costs.mtu * frame_batch
        remaining = message.size
        seq = 0
        message.src = sock.local
        message.dst = sock.remote
        if message.created_at is None:
            message.created_at = self.kernel.sim.now
        while True:
            size = min(chunk_limit, remaining)
            remaining -= size
            last = remaining == 0
            frames = max(1, math.ceil(size / costs.mtu))
            packet = Packet(
                sock.local,
                sock.remote,
                size,
                kind=message.kind,
                message=message if last else None,
                seq=seq,
                is_last=last,
                frames=frames,
                meta=message.meta,
            )
            grant = sock.tx_credits.acquire(max(size, 1))
            if grant.triggered:
                yield grant
            else:
                # Flow-control stall: the receiver's kernel buffer is full.
                yield from self.kernel.block_wait(task, grant, reason="sndbuf")
            # Probes fire per wire frame in the real system; an aggregated
            # packet charges the per-frame monitoring cost `frames` times.
            base = costs.tx_packet_cost(size, frames)
            cost = base + tracepoints.cost_many(_TX_EVENTS) * frames
            attribution = None
            if self.kernel.ledger is not None:
                probe, analyzer = tracepoints.cost_split_many(_TX_EVENTS)
                attribution = (
                    ("netstack", base),
                    ("probe", probe * frames),
                    ("analyzer", analyzer * frames),
                )
            start, end = yield self.kernel.cpu.submit(
                task, cost, "kernel", attribution=attribution
            )
            self._fire_tx_events(packet, start, end, sock)
            self.tx_packets += 1
            sock.bytes_sent += size
            ring = self.nic.enqueue(packet)
            if ring.triggered:
                yield ring
            else:
                yield from self.kernel.block_wait(task, ring, reason="txring")
            seq += 1
            if last:
                break
        sock.messages_sent += 1

    def _fire_tx_events(self, packet, start, end, sock):
        tracepoints = self.kernel.tracepoints
        if not any(tracepoints.enabled(etype) for etype in _TX_EVENTS):
            return
        costs = self.costs
        base = costs.net_tx_sock + costs.net_tx_ip + costs.net_tx_driver
        span = end - start
        fields = self._packet_fields(packet)
        fields["sock_pid"] = sock.owner_pid or 0
        # Backfill layer boundaries proportionally across the segment.
        t_sock = start + span * (costs.net_tx_sock / base) if base else end
        t_ip = start + span * ((costs.net_tx_sock + costs.net_tx_ip) / base) if base else end
        tracepoints.fire(tp.NET_TX_SOCK, sim_ts=t_sock, **fields)
        tracepoints.fire(tp.NET_TX_IP, sim_ts=t_ip, **fields)
        tracepoints.fire(tp.NET_TX_DRIVER, sim_ts=end, **fields)

    # ------------------------------------------------------------------
    # receive path (interrupt context)
    # ------------------------------------------------------------------

    def _rx_interrupt(self, packet):
        costs = self.costs
        tracepoints = self.kernel.tracepoints
        base = costs.rx_packet_cost(packet.size, packet.frames)
        cost = base + tracepoints.cost_many(_RX_EVENTS) * packet.frames
        attribution = None
        if self.kernel.ledger is not None:
            probe, analyzer = tracepoints.cost_split_many(_RX_EVENTS)
            attribution = (
                ("netstack", base),
                ("probe", probe * packet.frames),
                ("analyzer", analyzer * packet.frames),
            )
        done = self.kernel.cpu.submit(
            None, cost, "kernel", band=BAND_IRQ, attribution=attribution
        )
        done.add_callback(lambda grant: self._rx_complete(packet, grant.value))

    def _rx_complete(self, packet, span):
        start, end = span
        self.rx_packets += 1
        kernel = self.kernel
        sock = kernel.demux(packet.dst.port, packet.src)
        self._fire_rx_events(packet, start, end, sock)
        if sock is None:
            self.rx_no_socket += 1
            return
        if packet.is_last and packet.message is not None and packet.message.kind == "_fin":
            # Connection teardown: EOF ordered behind all in-flight data.
            sock.state = "closed"
            sock.rx_queue.put(None)
            return
        sock.buffer_bytes(packet.size)
        if packet.is_last and packet.message is not None:
            sock.complete_message(packet.message, kernel.sim.now)

    def _fire_rx_events(self, packet, start, end, sock):
        tracepoints = self.kernel.tracepoints
        if not any(tracepoints.enabled(etype) for etype in _RX_EVENTS):
            return
        costs = self.costs
        base = costs.net_rx_driver + costs.net_rx_ip + costs.net_rx_transport
        span = end - start
        fields = self._packet_fields(packet)
        if sock is not None:
            fields["sock_pid"] = sock.owner_pid or 0
            fields["rx_buffered"] = sock.rx_buffered + packet.size
            fields["rx_queue_depth"] = sock.rx_queue_depth
        t_driver = start + span * (costs.net_rx_driver / base) if base else end
        t_ip = start + span * ((costs.net_rx_driver + costs.net_rx_ip) / base) if base else end
        tracepoints.fire(tp.NET_RX_DRIVER, sim_ts=t_driver, **fields)
        tracepoints.fire(tp.NET_RX_IP, sim_ts=t_ip, **fields)
        tracepoints.fire(tp.NET_RX_TRANSPORT, sim_ts=end, **fields)
        tracepoints.fire(tp.SOCK_ENQUEUE, sim_ts=end, **fields)

    @staticmethod
    def _packet_fields(packet):
        fields = {
            "src_ip": packet.src.ip,
            "src_port": packet.src.port,
            "dst_ip": packet.dst.ip,
            "dst_port": packet.dst.port,
            "size": packet.size,
            "frames": packet.frames,
            "seq": packet.seq,
            "is_last": packet.is_last,
            "msg_kind": packet.kind,
            "packet_id": packet.packet_id,
        }
        # ARM-style in-band correlation token (Application Response
        # Measurement, the paper's reference [5]): applications that opt
        # in stamp their messages; the monitor can then pair interleaved
        # requests exactly.
        meta = packet.meta
        if meta is not None:
            arm = meta.get("arm_id")
            if arm is not None:
                fields["arm_id"] = arm
        return fields
