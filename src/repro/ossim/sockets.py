"""Socket layer: connections, receive buffering, and flow control.

The model is a reliable, in-order, flow-controlled message stream: the
application hands the socket an :class:`AppMessage`, the network stack
segments it into MTU-sized packets, and the receiver's socket reassembles
it.  Flow control is credit-based — the sender holds byte credits equal
to the receiver's kernel buffer and blocks when they run out, which is
exactly the queueing the paper's Figure 4 measures ("kernel buffers get
filled up and the requests get queued at the kernel-level waiting for
their turn to get processed by the user-level proxy").

Pure TCP acknowledgement packets are not simulated individually; credit
returns propagate after a one-way-latency delay.  The paper's interaction
extraction considers only data-bearing packets, so this omission does not
change what the monitor sees.
"""

from collections import deque
from itertools import count

from repro.sim.engine import Waitable
from repro.sim.errors import ConnectionReset, SimError
from repro.sim.resources import Resource, Store

_message_ids = count(1)

SOCK_LISTENING = "listening"
SOCK_ESTABLISHED = "established"
SOCK_CLOSED = "closed"


class AppMessage:
    """An application-level message (request or response payload)."""

    __slots__ = (
        "msg_id",
        "size",
        "kind",
        "meta",
        "created_at",
        "delivered_at",
        "src",
        "dst",
    )

    def __init__(self, size, kind="data", meta=None):
        if size < 0:
            raise ValueError("negative message size")
        self.msg_id = next(_message_ids)
        self.size = int(size)
        self.kind = kind
        self.meta = meta
        self.created_at = None
        self.delivered_at = None
        self.src = None
        self.dst = None

    def __repr__(self):
        return "<AppMessage #{} {} {}B>".format(self.msg_id, self.kind, self.size)


class ByteCredits:
    """Counting byte credits with FIFO granting (the sender's send window)."""

    def __init__(self, sim, capacity):
        if capacity <= 0:
            raise SimError("credit capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.available = capacity
        self._waiters = deque()  # (needed, waitable)

    def acquire(self, amount):
        """Waitable that succeeds once ``amount`` credits are granted."""
        if amount > self.capacity:
            raise SimError(
                "cannot acquire {} credits from a window of {}".format(
                    amount, self.capacity
                )
            )
        grant = Waitable(self.sim)
        if not self._waiters and self.available >= amount:
            self.available -= amount
            grant.succeed(amount)
        else:
            self._waiters.append((amount, grant))
        return grant

    def release(self, amount):
        self.available += amount
        if self.available > self.capacity:
            raise SimError("credit release overflow")
        while self._waiters and self._waiters[0][0] <= self.available:
            needed, grant = self._waiters.popleft()
            if grant.triggered:
                continue
            self.available -= needed
            grant.succeed(needed)

    def fail_waiters(self, exc):
        """Fail every pending acquire (connection torn down under a sender)."""
        waiters, self._waiters = self._waiters, deque()
        for _needed, grant in waiters:
            if not grant.triggered:
                grant.fail(exc)

    @property
    def in_flight(self):
        return self.capacity - self.available


class Socket:
    """One endpoint of an established connection."""

    def __init__(self, kernel, local, rx_capacity):
        self.kernel = kernel
        self.local = local
        self.remote = None
        self.peer = None  # the Socket at the other end (simulator shortcut)
        self.state = SOCK_ESTABLISHED
        self.rx_capacity = rx_capacity
        self.rx_queue = Store(kernel.sim)  # completed AppMessages (None = EOF)
        self.rx_buffered = 0  # bytes in the kernel receive buffer
        self.rx_partial = 0  # bytes of the message currently being reassembled
        self.tx_credits = None  # set during connection setup
        self.tx_lock = Resource(kernel.sim, capacity=1)
        self.ack_delay = 0.0
        self.owner_pid = None
        self.reset_by_peer = False
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0

    def __repr__(self):
        return "<Socket {}->{} {}>".format(self.local, self.remote, self.state)

    @property
    def rx_queue_depth(self):
        """Completed messages waiting for the application to read them."""
        return len(self.rx_queue)

    def buffer_bytes(self, packet_size):
        """Netstack RX: account packet payload arriving into the buffer."""
        self.rx_buffered += packet_size
        self.rx_partial += packet_size

    def complete_message(self, message, now):
        """Netstack RX: the last segment landed; queue the whole message."""
        message.delivered_at = now
        self.rx_partial = 0
        self.messages_received += 1
        self.bytes_received += message.size
        self.rx_queue.put(message)

    def consume(self, message):
        """Application read: drain the buffer and return credits to the peer."""
        self.rx_buffered -= message.size
        if self.rx_buffered < 0:
            raise SimError("socket buffer accounting went negative")
        peer = self.peer
        if peer is not None and peer.tx_credits is not None:
            self.kernel.sim.schedule(
                self.ack_delay, peer.tx_credits.release, message.size
            )

    def close(self):
        if self.state == SOCK_CLOSED:
            return
        self.state = SOCK_CLOSED
        peer = self.peer
        if peer is not None and peer.state != SOCK_CLOSED:
            # FIN reaches the peer after one-way latency.
            self.kernel.sim.schedule(self.ack_delay, peer.rx_queue.put, None)

    def reset(self):
        """Abort the connection (owner crashed or was killed).

        Unlike :meth:`close`, no orderly FIN is sent: the peer observes a
        reset after one-way latency — readers wake with EOF, writers (both
        blocked and future ones) fail with
        :class:`~repro.sim.errors.ConnectionReset`.
        """
        if self.state == SOCK_CLOSED:
            return
        self.state = SOCK_CLOSED
        self.kernel.release_socket(self)
        peer = self.peer
        if peer is not None:
            self.kernel.sim.schedule(self.ack_delay, peer.abort)

    def abort(self):
        """Peer-side arrival of a reset: RST semantics on this endpoint."""
        if self.reset_by_peer:
            return
        self.reset_by_peer = True
        self.state = SOCK_CLOSED
        self.kernel.release_socket(self)
        self.rx_queue.put(None)
        if self.tx_credits is not None:
            self.tx_credits.fail_waiters(
                ConnectionReset("connection reset by peer: {}".format(self))
            )


class ListeningSocket:
    """A passive socket accepting connections on a port."""

    def __init__(self, kernel, local):
        self.kernel = kernel
        self.local = local
        self.state = SOCK_LISTENING
        self.backlog = Store(kernel.sim)
        self.accepted = 0

    def __repr__(self):
        return "<ListeningSocket {}>".format(self.local)
