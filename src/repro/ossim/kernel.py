"""The per-node kernel: CPU, tasks, sockets, network stack, VFS, /proc."""

from repro.netsim.packet import Address
from repro.ossim.blockio import Disk
from repro.ossim.cpu import Cpu, CpuSet
from repro.ossim.netstack import NetStack
from repro.ossim.procfs import ProcFs
from repro.ossim.sockets import (
    SOCK_CLOSED,
    ByteCredits,
    ListeningSocket,
    Socket,
)
from repro.ossim.task import BAND_USER, TASK_EXITED, Task
from repro.ossim.tracepoints import NULL_TRACEPOINTS
from repro.ossim import tracepoints as tp
from repro.ossim.vfs import Vfs
from repro.observability import ledger as cpu_ledger
from repro.sim.errors import ConnectionReset, Interrupt, SimError


class IdentityClock:
    """Clock for nodes without configured skew (local time == sim time)."""

    offset = 0.0
    drift = 0.0

    @staticmethod
    def local_time(sim_now):
        return sim_now

    @staticmethod
    def sim_time(local):
        return local


class Kernel:
    """One node's operating system instance."""

    def __init__(self, sim, name, costs, clock=None, tracepoints=None, cpus=1):
        self.sim = sim
        self.name = name
        self.costs = costs
        self.clock = clock or IdentityClock()
        self.tracepoints = tracepoints or NULL_TRACEPOINTS
        # Observability: the process-wide attribution ledger, if one is
        # installed (see repro.observability.ledger).  Read once here so
        # the CPU hot path pays a single attribute load per slice.
        self.ledger = cpu_ledger.active()
        if self.ledger is not None:
            self.ledger.attach_kernel(self)
        # A single core keeps the uniprocessor fast path; CpuSet adds SMP.
        self.cpu = Cpu(sim, self, costs) if cpus == 1 else CpuSet(sim, self, costs, cpus)
        self.cpu_count = cpus
        self.nic = None
        self.netstack = None
        self.disk = None
        self.vfs = None
        self.procfs = ProcFs()
        self.cluster = None
        self.tasks = {}
        self._next_pid = 100
        self._next_port = 40000
        self._listeners = {}  # port -> ListeningSocket
        self._sockets = {}  # (local_port, remote Address tuple) -> Socket
        self.procfs.register("/proc/stat", self._proc_stat)

    def __repr__(self):
        return "<Kernel {}>".format(self.name)

    # ------------------------------------------------------------------
    # hardware attachment
    # ------------------------------------------------------------------

    def attach_nic(self, nic):
        self.nic = nic
        self.netstack = NetStack(self, nic, self.costs)
        return nic

    def attach_disk(self, name="sda", cache_pages=8192):
        self.disk = Disk(self.sim, self, self.costs, name=name)
        self.vfs = Vfs(self, self.disk, self.costs, cache_pages=cache_pages)
        return self.disk

    def set_tracepoints(self, tracepoints):
        """Install a monitoring implementation (SysProf's Kprof)."""
        self.tracepoints = tracepoints

    @property
    def ip(self):
        if self.nic is None:
            raise SimError("kernel {} has no NIC".format(self.name))
        return self.nic.ip

    # ------------------------------------------------------------------
    # tasks
    # ------------------------------------------------------------------

    def spawn(self, name, fn, *args, band=BAND_USER, labels=None, affinity=None):
        """Start ``fn(ctx, *args)`` as a task; returns the :class:`Task`.

        ``fn`` must be a generator function taking a
        :class:`~repro.ossim.taskctx.TaskContext` first.  ``affinity``
        pins the task to one CPU core (SMP nodes only).
        """
        from repro.ossim.taskctx import TaskContext

        pid = self._next_pid
        self._next_pid += 1
        task = Task(pid, name, self, band=band)
        if affinity is not None:
            if not 0 <= affinity < self.cpu_count:
                raise SimError(
                    "affinity {} out of range for {} CPUs".format(
                        affinity, self.cpu_count
                    )
                )
            task.affinity = affinity
        if labels:
            task.labels.update(labels)
        self.tasks[pid] = task
        ctx = TaskContext(self, task)
        task.proc = self.sim.process(
            self._task_body(task, fn(ctx, *args)), name="{}@{}".format(name, self.name)
        )
        self.tracepoints.fire(tp.TASK_CREATE, pid=pid, name=name)
        return task

    def _task_body(self, task, gen):
        try:
            result = yield from gen
            task.exit_value = result
        except Interrupt as interrupt:
            # Killed (crash injection, signal): the task dies quietly.
            task.exit_value = ("killed", interrupt.cause)
        except ConnectionReset as error:
            # Unhandled ECONNRESET kills the task, not the simulation —
            # the real process would die on the uncaught error too.
            task.exit_value = ("connection-reset", str(error))
        finally:
            task.state = TASK_EXITED
            task.exited_at = self.sim.now
            if task.blocked_since is not None:
                task.blocked_time += self.sim.now - task.blocked_since
                task.blocked_since = None
            self.tracepoints.fire(tp.TASK_EXIT, pid=task.pid, name=task.name)
        return task.exit_value

    def block_wait(self, task, waitable, reason="io"):
        """Generator: wait on ``waitable`` while accounting blocked time."""
        if waitable.triggered:
            value = yield waitable
            return value
        self.tracepoints.fire(tp.SCHED_BLOCK, pid=task.pid, reason=reason)
        task.mark_blocked(self.sim.now, reason)
        try:
            value = yield waitable
        finally:
            task.mark_ready(self.sim.now)
            self.tracepoints.fire(tp.SCHED_WAKEUP, pid=task.pid, reason=reason)
        return value

    # ------------------------------------------------------------------
    # socket management (called from TaskContext syscalls)
    # ------------------------------------------------------------------

    def allocate_port(self):
        port = self._next_port
        self._next_port += 1
        return port

    def listen(self, port):
        if port in self._listeners:
            raise SimError("port {} already listening on {}".format(port, self.name))
        lsock = ListeningSocket(self, Address(self.ip, port))
        self._listeners[port] = lsock
        return lsock

    def open_connection(self, local_port, remote_kernel, remote_port):
        """Create the two connected sockets (client side of the handshake)."""
        listener = remote_kernel._listeners.get(remote_port)
        if listener is None:
            raise SimError(
                "connection refused: {}:{}".format(remote_kernel.name, remote_port)
            )
        local = Address(self.ip, local_port)
        remote = Address(remote_kernel.ip, remote_port)
        client = Socket(self, local, self.costs.sock_buffer_bytes)
        server = Socket(remote_kernel, remote, remote_kernel.costs.sock_buffer_bytes)
        client.remote, server.remote = remote, local
        client.peer, server.peer = server, client
        one_way = self.one_way_latency(remote_kernel)
        client.ack_delay = server.ack_delay = one_way
        client.tx_credits = ByteCredits(self.sim, server.rx_capacity)
        server.tx_credits = ByteCredits(self.sim, client.rx_capacity)
        self._sockets[(local_port, tuple(remote))] = client
        remote_kernel._sockets[(remote_port, tuple(local))] = server
        listener.backlog.put(server)
        listener.accepted += 1
        return client

    def demux(self, local_port, remote_addr):
        """Find the established socket a packet belongs to."""
        sock = self._sockets.get((local_port, tuple(remote_addr)))
        if sock is not None and sock.state != SOCK_CLOSED:
            return sock
        return None

    def release_socket(self, sock):
        self._sockets.pop((sock.local.port, tuple(sock.remote)), None)

    def close_listener(self, port):
        """Tear down a listening socket (owner died); resets its backlog."""
        lsock = self._listeners.pop(port, None)
        if lsock is None:
            return
        lsock.state = SOCK_CLOSED
        while True:
            ok, sock = lsock.backlog.try_get()
            if not ok:
                break
            if sock is not None:
                sock.reset()

    def crash(self, reason="crash"):
        """Hard-stop the node: every task dies, every connection resets.

        Models a power failure — nothing gets to run a cleanup path, and
        peers observe resets (after one-way latency) rather than FINs.
        """
        for task in list(self.tasks.values()):
            if task.state != TASK_EXITED:
                task.kill(reason)
        for sock in list(self._sockets.values()):
            sock.reset()
        for port in list(self._listeners):
            self.close_listener(port)
        self._sockets.clear()

    def one_way_latency(self, remote_kernel):
        if self.cluster is not None:
            return self.cluster.one_way_latency(self.ip, remote_kernel.ip)
        return 50e-6

    # ------------------------------------------------------------------

    def _proc_stat(self):
        lines = [
            "cpu busy={:.6f} user={:.6f} kernel={:.6f} ctx={:.6f} switches={}".format(
                self.cpu.busy_time,
                self.cpu.mode_time["user"],
                self.cpu.mode_time["kernel"],
                self.cpu.mode_time["ctx"],
                self.cpu.ctx_switch_count,
            )
        ]
        now = self.sim.now
        for pid in sorted(self.tasks):
            lines.append(self.tasks[pid].stat_line(now))
        return "\n".join(lines) + "\n"

    def task_snapshot(self):
        """Machine-readable task accounting snapshot (pid -> counters)."""
        now = self.sim.now
        snapshot = {}
        for pid, task in self.tasks.items():
            blocked = task.blocked_time
            if task.blocked_since is not None:
                blocked += now - task.blocked_since
            snapshot[pid] = {
                "name": task.name,
                "state": task.state,
                "utime": task.utime,
                "stime": task.stime,
                "blocked": blocked,
                "ctx_switches": task.ctx_switches,
            }
        return snapshot
