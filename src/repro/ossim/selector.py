"""Select-style multiplexing for single-threaded server tasks.

The paper's NFS proxy (and Apache front-end) are single user-level
processes multiplexing many connections — the very reason requests queue
at kernel level when the process falls behind (Figure 4).  The
:class:`Selector` lets one task wait on many sources (socket receive
queues, listener backlogs) with persistent getters, so no item is ever
consumed by an abandoned waiter.
"""

from repro.ossim import tracepoints as tp


class Selector:
    """Round-robin multiplexer over message/connection sources."""

    def __init__(self, ctx):
        self.ctx = ctx
        self._sources = {}  # key -> (store, pending_waitable, is_socket)
        self._order = []
        self._rr = 0

    def add_socket(self, key, sock):
        """Watch a connected socket's receive queue."""
        self._sources[key] = [sock.rx_queue, sock.rx_queue.get(), sock]
        self._order.append(key)

    def add_listener(self, key, lsock):
        """Watch a listening socket's accept backlog."""
        self._sources[key] = [lsock.backlog, lsock.backlog.get(), None]
        self._order.append(key)

    def remove(self, key):
        if key in self._sources:
            del self._sources[key]
            self._order.remove(key)

    def __len__(self):
        return len(self._sources)

    def select(self):
        """Generator: block until a source is ready; returns ``(key, item)``.

        For socket sources the item is a completed message (``None`` on
        peer close) and full receive accounting (copy cost, SOCK_DELIVER
        event, flow-control credit return) is applied.  For listener
        sources the item is the newly accepted socket.
        """
        ctx = self.ctx
        if not self._sources:
            raise ValueError("select() on an empty selector")
        while True:
            # Round-robin scan for an already-ready source.
            n = len(self._order)
            for step in range(n):
                key = self._order[(self._rr + step) % n]
                store, pending, sock = self._sources[key]
                if pending.triggered:
                    self._rr = (self._rr + step + 1) % n
                    item = pending.value
                    self._sources[key][1] = store.get()
                    if sock is not None:
                        item = yield from self._finish_recv(sock, item)
                    else:
                        item.owner_pid = ctx.task.pid
                        yield from ctx._sys_enter("accept")
                        yield from ctx._sys_exit("accept")
                    return key, item
            waitables = [entry[1] for entry in self._sources.values()]
            yield from ctx.wait(ctx.sim.any_of(waitables), reason="select")

    def _finish_recv(self, sock, message):
        ctx = self.ctx
        yield from ctx._sys_enter("recv")
        if message is None:
            yield from ctx._sys_exit("recv")
            return None
        kernel = ctx.kernel
        tracepoints = kernel.tracepoints
        copy_cost = (
            kernel.costs.sock_copy_per_byte * message.size
            + tracepoints.cost(tp.SOCK_DELIVER)
        )
        attribution = None
        if kernel.ledger is not None:
            probe, analyzer = tracepoints.cost_split(tp.SOCK_DELIVER)
            attribution = (
                ("netstack", copy_cost - probe - analyzer),
                ("probe", probe),
                ("analyzer", analyzer),
            )
        yield kernel.cpu.submit(
            ctx.task, copy_cost, "kernel", attribution=attribution
        )
        sock.consume(message)
        deliver_fields = {
            "pid": ctx.task.pid,
            "src_ip": message.src.ip,
            "src_port": message.src.port,
            "dst_ip": message.dst.ip,
            "dst_port": message.dst.port,
            "size": message.size,
            "msg_kind": message.kind,
            "queued": message.delivered_at is not None
            and ctx.sim.now - message.delivered_at,
        }
        if message.meta is not None and message.meta.get("arm_id") is not None:
            deliver_fields["arm_id"] = message.meta["arm_id"]
        tracepoints.fire(tp.SOCK_DELIVER, **deliver_fields)
        yield from ctx._sys_exit("recv")
        return message
