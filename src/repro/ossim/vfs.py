"""Virtual filesystem with an LRU page cache over the block layer."""

from collections import OrderedDict

from repro.sim.errors import SimError
from repro.ossim import tracepoints as tp


class Inode:
    __slots__ = ("path", "size", "created_at")

    def __init__(self, path, now):
        self.path = path
        self.size = 0
        self.created_at = now


class FileHandle:
    __slots__ = ("inode", "fd", "position", "task_pid", "closed")

    def __init__(self, inode, fd, task_pid):
        self.inode = inode
        self.fd = fd
        self.position = 0
        self.task_pid = task_pid
        self.closed = False


class Vfs:
    """Files, the page cache, and read/write/fsync semantics.

    Writes are write-back by default: pages are dirtied in the cache and
    flushed on ``fsync`` or eviction.  ``sync=True`` writes (the NFS
    server's stable writes) block on the media.  All generator methods
    run inside a task's syscall and charge CPU to that task.
    """

    PAGE = 4096

    def __init__(self, kernel, disk, costs, cache_pages=8192):
        self.kernel = kernel
        self.disk = disk
        self.costs = costs
        self.cache_pages = cache_pages
        self.inodes = {}
        self._handles = {}
        self._next_fd = 3
        # (path, page_index) -> dirty flag; OrderedDict gives LRU order.
        self._cache = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        self.writeback_pages = 0

    # ------------------------------------------------------------------

    def _submit(self, task, base, etype):
        """Charge ``base`` plus the probe cost for one firing of ``etype``,
        attributing the base work to the block-I/O ledger category."""
        kernel = self.kernel
        cost = base + kernel.tracepoints.cost(etype)
        attribution = None
        if kernel.ledger is not None:
            probe, analyzer = kernel.tracepoints.cost_split(etype)
            attribution = (
                ("blockio", base),
                ("probe", probe),
                ("analyzer", analyzer),
            )
        return kernel.cpu.submit(task, cost, "kernel", attribution=attribution)

    def open(self, task, path, create=True):
        inode = self.inodes.get(path)
        if inode is None:
            if not create:
                raise SimError("no such file: {}".format(path))
            inode = Inode(path, self.kernel.sim.now)
            self.inodes[path] = inode
        handle = FileHandle(inode, self._next_fd, task.pid)
        self._next_fd += 1
        self._handles[handle.fd] = handle
        yield self._submit(task, self.costs.fs_op, tp.FS_OPEN)
        self.kernel.tracepoints.fire(tp.FS_OPEN, pid=task.pid, path=path, fd=handle.fd)
        return handle

    def read(self, task, handle, nbytes, offset=None):
        if handle.closed:
            raise SimError("read on closed fd {}".format(handle.fd))
        inode = handle.inode
        position = handle.position if offset is None else offset
        nbytes = max(0, min(nbytes, inode.size - position))
        pages = self._page_range(position, nbytes)
        missing = [p for p in pages if (inode.path, p) not in self._cache]
        self.cache_hits += len(pages) - len(missing)
        self.cache_misses += len(missing)
        for first, last in _contiguous_runs(missing):
            count = last - first + 1
            yield self._submit(task, self.costs.blk_issue, tp.BLK_ISSUE)
            task.disk_ops += 1
            yield from self.kernel.block_wait(task, self.disk.submit(
                "read", first * self.PAGE, count * self.PAGE))
            for page in range(first, last + 1):
                self._insert_page(inode.path, page, dirty=False)
        copy = self.costs.fs_op + self.costs.page_copy * max(1, len(pages))
        yield self._submit(task, copy, tp.FS_READ)
        for page in pages:
            self._touch(inode.path, page)
        if offset is None:
            handle.position += nbytes
        self.kernel.tracepoints.fire(
            tp.FS_READ, pid=task.pid, path=inode.path, nbytes=nbytes, offset=position
        )
        return nbytes

    def write(self, task, handle, nbytes, offset=None, sync=False):
        if handle.closed:
            raise SimError("write on closed fd {}".format(handle.fd))
        inode = handle.inode
        position = handle.position if offset is None else offset
        pages = self._page_range(position, nbytes)
        copy = self.costs.fs_op + self.costs.page_copy * max(1, len(pages))
        yield self._submit(task, copy, tp.FS_WRITE)
        for page in pages:
            self._insert_page(inode.path, page, dirty=not sync)
        inode.size = max(inode.size, position + nbytes)
        if offset is None:
            handle.position += nbytes
        self.kernel.tracepoints.fire(
            tp.FS_WRITE, pid=task.pid, path=inode.path, nbytes=nbytes,
            offset=position, sync=sync,
        )
        if sync and pages:
            yield self._submit(task, self.costs.blk_issue, tp.BLK_ISSUE)
            task.disk_ops += 1
            yield from self.kernel.block_wait(task, self.disk.submit(
                "write", pages[0] * self.PAGE, len(pages) * self.PAGE))
        return nbytes

    def fsync(self, task, handle):
        inode = handle.inode
        dirty = sorted(
            page for (path, page), is_dirty in self._cache.items()
            if path == inode.path and is_dirty
        )
        yield self._submit(task, self.costs.fs_op, tp.FS_FSYNC)
        for first, last in _contiguous_runs(dirty):
            count = last - first + 1
            yield self._submit(task, self.costs.blk_issue, tp.BLK_ISSUE)
            task.disk_ops += 1
            yield from self.kernel.block_wait(task, self.disk.submit(
                "write", first * self.PAGE, count * self.PAGE))
            for page in range(first, last + 1):
                self._cache[(inode.path, page)] = False
        self.writeback_pages += len(dirty)
        self.kernel.tracepoints.fire(
            tp.FS_FSYNC, pid=task.pid, path=inode.path, pages=len(dirty)
        )
        return len(dirty)

    def close(self, task, handle):
        handle.closed = True
        self._handles.pop(handle.fd, None)
        yield self._submit(task, self.costs.fs_op, tp.FS_CLOSE)
        self.kernel.tracepoints.fire(tp.FS_CLOSE, pid=task.pid, path=handle.inode.path)

    # ------------------------------------------------------------------

    def _page_range(self, offset, nbytes):
        if nbytes <= 0:
            return []
        first = offset // self.PAGE
        last = (offset + nbytes - 1) // self.PAGE
        return list(range(first, last + 1))

    def _insert_page(self, path, page, dirty):
        key = (path, page)
        if key in self._cache:
            self._cache[key] = self._cache[key] or dirty
            self._cache.move_to_end(key)
            return
        self._cache[key] = dirty
        if len(self._cache) > self.cache_pages:
            old_key, was_dirty = self._cache.popitem(last=False)
            if was_dirty:
                # Asynchronous writeback; nobody waits on eviction flushes.
                self.writeback_pages += 1
                self.disk.submit("write", old_key[1] * self.PAGE, self.PAGE).defuse()

    def _touch(self, path, page):
        key = (path, page)
        if key in self._cache:
            self._cache.move_to_end(key)

    def cache_stats(self):
        dirty = sum(1 for is_dirty in self._cache.values() if is_dirty)
        return {
            "pages": len(self._cache),
            "dirty": dirty,
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "writeback": self.writeback_pages,
        }


def _contiguous_runs(sorted_values):
    """Group a sorted integer list into (first, last) inclusive runs."""
    runs = []
    for value in sorted_values:
        if runs and value == runs[-1][1] + 1:
            runs[-1][1] = value
        else:
            runs.append([value, value])
    return [(first, last) for first, last in runs]
