"""Block layer: a request queue in front of a seek-accurate disk."""

from repro.sim.engine import Waitable
from repro.sim.resources import Store
from repro.sim.stats import RunningStat, TimeWeightedStat
from repro.ossim import tracepoints as tp


class DiskRequest:
    __slots__ = ("kind", "offset", "nbytes", "done", "submitted_at")

    def __init__(self, kind, offset, nbytes, done, submitted_at):
        self.kind = kind
        self.offset = offset
        self.nbytes = nbytes
        self.done = done
        self.submitted_at = submitted_at


class Disk:
    """FIFO-served disk with sequential-access optimization.

    A request contiguous with the previous one skips the seek and
    rotational penalties — so a single streaming writer sees near media
    rate while interleaved writers (the Iozone multithread case) pay a
    positioning cost per request.  This is the mechanism behind the
    backend NFS server dominating end-to-end latency in Figure 5.
    """

    def __init__(self, sim, kernel, costs, name="sda"):
        self.sim = sim
        self.kernel = kernel
        self.costs = costs
        self.name = name
        self._queue = Store(sim)
        self._next_contiguous = None
        self.reads = 0
        self.writes = 0
        self.busy_time = 0.0
        self.service_stat = RunningStat()
        self.queue_stat = TimeWeightedStat(sim.now)
        self._depth = 0
        sim.process(self._serve(), name="{}@{}".format(name, kernel.name))

    def submit(self, kind, offset, nbytes):
        """Queue a request; the waitable triggers when the media finishes."""
        if kind not in ("read", "write"):
            raise ValueError("disk request kind must be read or write")
        done = Waitable(self.sim)
        request = DiskRequest(kind, offset, nbytes, done, self.sim.now)
        self._set_depth(self._depth + 1)
        tracepoints = self.kernel.tracepoints
        tracepoints.fire(
            tp.BLK_ISSUE, kind=kind, offset=offset, nbytes=nbytes, queue_depth=self._depth
        )
        self._queue.put(request)
        return done

    @property
    def queue_depth(self):
        return self._depth

    def utilization(self, now):
        return self.busy_time / now if now > 0 else 0.0

    def _set_depth(self, depth):
        self._depth = depth
        self.queue_stat.update(self.sim.now, depth)

    def _serve(self):
        while True:
            request = yield self._queue.get()
            sequential = request.offset == self._next_contiguous
            service = self.costs.disk_op_cost(request.nbytes, sequential=sequential)
            yield self.sim.timeout(service)
            self._next_contiguous = request.offset + request.nbytes
            self.busy_time += service
            self.service_stat.add(service)
            if request.kind == "read":
                self.reads += 1
            else:
                self.writes += 1
            self._set_depth(self._depth - 1)
            self.kernel.tracepoints.fire(
                tp.BLK_COMPLETE,
                kind=request.kind,
                offset=request.offset,
                nbytes=request.nbytes,
                wait=self.sim.now - request.submitted_at,
                service=service,
            )
            request.done.succeed((request.submitted_at, self.sim.now))
