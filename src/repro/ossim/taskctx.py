"""The syscall interface tasks program against.

Application code is written as generator functions receiving a
:class:`TaskContext`; every OS interaction is a ``yield from`` on one of
these methods.  Each syscall charges entry/exit CPU in kernel mode, fires
the corresponding Kprof tracepoints, and accounts blocked time — exactly
the observables the paper's monitoring extracts without modifying the
application.
"""

from repro.ossim.sockets import AppMessage
from repro.ossim.task import BAND_USER
from repro.ossim import tracepoints as tp
from repro.sim.errors import ConnectionReset, SimError


class TaskContext:
    """Handle through which a task computes, sleeps, and performs syscalls."""

    def __init__(self, kernel, task):
        self.kernel = kernel
        self.task = task
        self.sim = kernel.sim

    @property
    def now(self):
        return self.sim.now

    @property
    def pid(self):
        return self.task.pid

    def __repr__(self):
        return "<TaskContext {} on {}>".format(self.task.name, self.kernel.name)

    # ------------------------------------------------------------------
    # CPU and time
    # ------------------------------------------------------------------

    def compute(self, seconds):
        """Burn CPU in user mode (application work)."""
        yield self.kernel.cpu.submit(self.task, seconds, "user")

    def kcompute(self, seconds):
        """Burn CPU in kernel mode (kernel daemons, in-kernel services)."""
        yield self.kernel.cpu.submit(self.task, seconds, "kernel")

    def sleep(self, seconds):
        """Sleep off-CPU for ``seconds``."""
        yield from self.kernel.block_wait(
            self.task, self.sim.timeout(seconds), reason="sleep"
        )

    def wait(self, waitable, reason="wait"):
        """Block on an arbitrary waitable with blocked-time accounting."""
        value = yield from self.kernel.block_wait(self.task, waitable, reason=reason)
        return value

    def spawn(self, name, fn, *args, band=BAND_USER, labels=None, affinity=None):
        """Spawn a sibling task on this node."""
        return self.kernel.spawn(
            name, fn, *args, band=band, labels=labels, affinity=affinity
        )

    # ------------------------------------------------------------------
    # syscall plumbing
    # ------------------------------------------------------------------

    def _sys_enter(self, name):
        kernel = self.kernel
        tracepoints = kernel.tracepoints
        cost = kernel.costs.syscall_entry + tracepoints.cost(tp.SYSCALL_ENTRY)
        attribution = None
        if kernel.ledger is not None:
            probe, analyzer = tracepoints.cost_split(tp.SYSCALL_ENTRY)
            attribution = (
                ("syscall", cost - probe - analyzer),
                ("probe", probe),
                ("analyzer", analyzer),
            )
        yield kernel.cpu.submit(self.task, cost, "kernel", attribution=attribution)
        tracepoints.fire(tp.SYSCALL_ENTRY, pid=self.task.pid, call=name)

    def _sys_exit(self, name):
        kernel = self.kernel
        tracepoints = kernel.tracepoints
        cost = kernel.costs.syscall_exit + tracepoints.cost(tp.SYSCALL_EXIT)
        attribution = None
        if kernel.ledger is not None:
            probe, analyzer = tracepoints.cost_split(tp.SYSCALL_EXIT)
            attribution = (
                ("syscall", cost - probe - analyzer),
                ("probe", probe),
                ("analyzer", analyzer),
            )
        yield kernel.cpu.submit(self.task, cost, "kernel", attribution=attribution)
        tracepoints.fire(tp.SYSCALL_EXIT, pid=self.task.pid, call=name)

    # ------------------------------------------------------------------
    # sockets
    # ------------------------------------------------------------------

    def listen(self, port):
        """Open a listening socket on ``port``."""
        yield from self._sys_enter("listen")
        lsock = self.kernel.listen(port)
        yield from self._sys_exit("listen")
        return lsock

    def accept(self, lsock):
        """Block until a connection arrives; returns the server-side socket."""
        yield from self._sys_enter("accept")
        sock = yield from self.kernel.block_wait(
            self.task, lsock.backlog.get(), reason="accept"
        )
        sock.owner_pid = self.task.pid
        yield from self._sys_exit("accept")
        return sock

    def connect(self, remote, port):
        """Connect to ``remote`` (a node name or IP) on ``port``."""
        yield from self._sys_enter("connect")
        remote_kernel = self.kernel.cluster.resolve(remote)
        # Simplified three-way handshake: one RTT, no data packets on the
        # wire (the monitor's message extraction uses data packets only).
        rtt = 2.0 * self.kernel.one_way_latency(remote_kernel)
        yield from self.kernel.block_wait(
            self.task, self.sim.timeout(rtt), reason="connect"
        )
        fabric = getattr(self.kernel.cluster, "fabric", None)
        if fabric is not None and not fabric.reachable(
            self.kernel.ip, remote_kernel.ip
        ):
            # SYN lost to an admin-down port or a partition: the caller
            # pays the handshake round-trip before the failure surfaces.
            yield from self._sys_exit("connect")
            raise SimError(
                "no route to host: {} -> {}".format(self.kernel.name, remote)
            )
        sock = self.kernel.open_connection(
            self.kernel.allocate_port(), remote_kernel, port
        )
        sock.owner_pid = self.task.pid
        yield from self._sys_exit("connect")
        return sock

    def send_message(self, sock, size, kind="data", meta=None, frame_batch=1):
        """Send an application message of ``size`` bytes; returns it."""
        if sock.remote is None:
            raise SimError("send on unconnected socket")
        if sock.reset_by_peer:
            raise ConnectionReset(
                "connection reset by peer: {}".format(sock)
            )
        message = AppMessage(size, kind=kind, meta=meta)
        sock.owner_pid = self.task.pid
        yield from self._sys_enter("send")
        yield sock.tx_lock.acquire()
        try:
            yield from self.kernel.netstack.tx_message(
                self.task, sock, message, frame_batch=frame_batch
            )
        finally:
            sock.tx_lock.release()
        yield from self._sys_exit("send")
        return message

    def recv_message(self, sock):
        """Block for the next complete message; ``None`` means peer closed."""
        sock.owner_pid = self.task.pid
        yield from self._sys_enter("recv")
        message = yield from self.kernel.block_wait(
            self.task, sock.rx_queue.get(), reason="recv"
        )
        if message is None:
            yield from self._sys_exit("recv")
            return None
        tracepoints = self.kernel.tracepoints
        copy_cost = (
            self.kernel.costs.sock_copy_per_byte * message.size
            + tracepoints.cost(tp.SOCK_DELIVER)
        )
        attribution = None
        if self.kernel.ledger is not None:
            probe, analyzer = tracepoints.cost_split(tp.SOCK_DELIVER)
            attribution = (
                ("netstack", copy_cost - probe - analyzer),
                ("probe", probe),
                ("analyzer", analyzer),
            )
        yield self.kernel.cpu.submit(
            self.task, copy_cost, "kernel", attribution=attribution
        )
        sock.consume(message)
        deliver_fields = {
            "pid": self.task.pid,
            "src_ip": message.src.ip,
            "src_port": message.src.port,
            "dst_ip": message.dst.ip,
            "dst_port": message.dst.port,
            "size": message.size,
            "msg_kind": message.kind,
            "queued": message.delivered_at is not None
            and self.sim.now - message.delivered_at,
        }
        if message.meta is not None and message.meta.get("arm_id") is not None:
            deliver_fields["arm_id"] = message.meta["arm_id"]
        tracepoints.fire(tp.SOCK_DELIVER, **deliver_fields)
        yield from self._sys_exit("recv")
        return message

    def close(self, sock):
        """Close a connected socket (peer's next recv returns ``None``).

        The FIN travels through the normal transmit path so EOF is ordered
        behind all in-flight data.
        """
        yield from self._sys_enter("close")
        if sock.state != "closed" and sock.remote is not None:
            fin = AppMessage(0, kind="_fin")
            yield from self.kernel.netstack.tx_message(self.task, sock, fin)
            sock.state = "closed"
        self.kernel.release_socket(sock)
        yield from self._sys_exit("close")

    # ------------------------------------------------------------------
    # files
    # ------------------------------------------------------------------

    def _vfs(self):
        if self.kernel.vfs is None:
            raise SimError("node {} has no disk/vfs".format(self.kernel.name))
        return self.kernel.vfs

    def open(self, path, create=True):
        yield from self._sys_enter("open")
        handle = yield from self._vfs().open(self.task, path, create=create)
        yield from self._sys_exit("open")
        return handle

    def read(self, handle, nbytes, offset=None):
        yield from self._sys_enter("read")
        count = yield from self._vfs().read(self.task, handle, nbytes, offset=offset)
        yield from self._sys_exit("read")
        return count

    def write(self, handle, nbytes, offset=None, sync=False):
        yield from self._sys_enter("write")
        count = yield from self._vfs().write(
            self.task, handle, nbytes, offset=offset, sync=sync
        )
        yield from self._sys_exit("write")
        return count

    def fsync(self, handle):
        yield from self._sys_enter("fsync")
        pages = yield from self._vfs().fsync(self.task, handle)
        yield from self._sys_exit("fsync")
        return pages

    def close_file(self, handle):
        yield from self._sys_enter("close")
        yield from self._vfs().close(self.task, handle)
        yield from self._sys_exit("close")

    # ------------------------------------------------------------------

    def proc_read(self, path):
        """Read a /proc entry on this node (no CPU charge; test/diag use)."""
        return self.kernel.procfs.read(path)
